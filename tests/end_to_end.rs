//! Cross-crate integration tests: full workloads through the full
//! simulator, checking the paper's headline claims hold qualitatively.

use imp::prelude::*;

fn run_cfg(app: &str, cores: u32, cfg: SystemConfig) -> SystemStats {
    let params = WorkloadParams::new(cores as usize, Scale::Tiny);
    let built = by_name(app).unwrap().build(&params);
    System::new(cfg, built.program, built.mem).run()
}

#[test]
fn imp_speeds_up_every_indirect_workload_at_16_cores() {
    // Tiny inputs keep this fast; the shape (IMP >= Base) must hold for
    // every paper workload.
    for app in ["pagerank", "graph500", "lsh", "spmv"] {
        let base = run_cfg(app, 16, SystemConfig::paper_default(16));
        let imp = run_cfg(
            app,
            16,
            SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp),
        );
        assert!(
            (imp.runtime as f64) < base.runtime as f64 * 1.02,
            "{app}: IMP {} vs Base {}",
            imp.runtime,
            base.runtime
        );
        assert!(imp.coverage() >= base.coverage() - 0.02, "{app} coverage");
    }
}

#[test]
fn imp_is_harmless_on_dense_code() {
    let base = run_cfg("dense", 16, SystemConfig::paper_default(16));
    let imp = run_cfg(
        "dense",
        16,
        SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp),
    );
    let ratio = imp.runtime as f64 / base.runtime as f64;
    assert!(
        (0.95..1.05).contains(&ratio),
        "IMP must not disturb regular code: ratio {ratio}"
    );
    assert_eq!(
        imp.prefetch_total().issued_indirect,
        0,
        "no indirection to find"
    );
}

#[test]
fn ordering_ideal_fastest_then_perfpref() {
    for app in ["spmv", "pagerank"] {
        let ideal = run_cfg(
            app,
            16,
            SystemConfig::paper_default(16).with_mem_mode(MemMode::Ideal),
        );
        let perf = run_cfg(
            app,
            16,
            SystemConfig::paper_default(16).with_mem_mode(MemMode::PerfectPrefetch),
        );
        let imp = run_cfg(
            app,
            16,
            SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp),
        );
        let base = run_cfg(app, 16, SystemConfig::paper_default(16));
        assert!(ideal.runtime <= perf.runtime, "{app}: ideal <= perfpref");
        assert!(
            perf.runtime <= imp.runtime + imp.runtime / 10,
            "{app}: perfpref bounds imp"
        );
        assert!(imp.runtime <= base.runtime, "{app}: imp <= base");
    }
}

#[test]
fn partial_accessing_reduces_noc_traffic() {
    // Needs the Small scale: with Tiny inputs the LSH dataset is
    // cache-resident, every sector eventually gets touched, and partial
    // fetching loses — exactly the dynamic the Granularity Predictor's
    // Algorithm 1 is designed around.
    let run_small = |cfg: SystemConfig| {
        let params = WorkloadParams::new(16, Scale::Small);
        let built = by_name("lsh").unwrap().build(&params);
        System::new(cfg, built.program, built.mem).run()
    };
    let full = run_small(SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp));
    let partial = run_small(
        SystemConfig::paper_default(16)
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram),
    );
    assert!(
        partial.traffic.noc_flit_hops < full.traffic.noc_flit_hops,
        "partial {} vs full {}",
        partial.traffic.noc_flit_hops,
        full.traffic.noc_flit_hops
    );
    assert!(partial.prefetch_total().partial_prefetches > 0);
}

#[test]
fn whole_stack_is_deterministic() {
    let a = run_cfg(
        "graph500",
        16,
        SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp),
    );
    let b = run_cfg(
        "graph500",
        16,
        SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp),
    );
    assert_eq!(a.runtime, b.runtime);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.misses_by_class(), b.misses_by_class());
}

#[test]
fn workload_results_are_functionally_correct() {
    // The generators run the real algorithms; their results must be
    // non-trivial and deterministic (detailed correctness checks live in
    // each workload's unit tests).
    for w in paper_workloads() {
        let built = w.build(&WorkloadParams::new(8, Scale::Tiny));
        assert!(built.result.is_finite(), "{}", w.name());
        let again = w.build(&WorkloadParams::new(8, Scale::Tiny));
        assert_eq!(built.result, again.result, "{}", w.name());
    }
}

#[test]
fn misses_are_dominated_by_indirect_accesses() {
    // Figure 1's claim on the baseline system.
    for app in ["pagerank", "lsh", "sgd"] {
        let s = run_cfg(app, 16, SystemConfig::paper_default(16));
        let m = s.misses_by_class();
        let total: u64 = m.iter().sum();
        assert!(
            m[AccessClass::Indirect.index()] * 2 > total,
            "{app}: indirect misses should dominate: {m:?}"
        );
    }
}

#[test]
fn out_of_order_core_still_benefits_from_imp() {
    // Figure 13's claim: OoO alone is not enough.
    let base_ooo = run_cfg(
        "pagerank",
        16,
        SystemConfig::paper_default(16).with_core_model(CoreModel::OutOfOrder),
    );
    let imp_ooo = run_cfg(
        "pagerank",
        16,
        SystemConfig::paper_default(16)
            .with_core_model(CoreModel::OutOfOrder)
            .with_prefetcher(PrefetcherKind::Imp),
    );
    assert!(
        imp_ooo.runtime < base_ooo.runtime,
        "IMP on OoO: {} vs {}",
        imp_ooo.runtime,
        base_ooo.runtime
    );
}

#[test]
fn core_count_scaling_256_cores_runs() {
    // The largest paper configuration must at least run correctly.
    let s = run_cfg(
        "spmv",
        256,
        SystemConfig::paper_default(256).with_prefetcher(PrefetcherKind::Imp),
    );
    assert!(s.runtime > 0);
    assert_eq!(s.cores.len(), 256);
}
