//! Depth-k chain acceptance, end to end:
//!
//! * `imp` and `imp:depth=1` are bit-identical on a chain workload —
//!   the knob's default really is the paper's single-level detector;
//! * a chain workload survives the `.imptrace` round trip (replay is
//!   bit-identical through `trace:<path>` too);
//! * the per-hop timeliness ledger reconciles on a chained run, with
//!   real hop-2+ activity when the depth allows it;
//! * the `chain:<spec>` pseudo-workload grammar reaches the same
//!   builder as the named kernels.

use imp::obs::ObsConfig;
use imp::prelude::*;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("imp-chain-{tag}-{}.imptrace", std::process::id()))
}

/// The default depth is 1, bit for bit, through the whole simulator —
/// not just the detector: one full hashjoin run per spelling.
#[test]
fn unspecified_depth_is_depth_one_end_to_end() {
    let base = Sim::workload("hashjoin").scale(Scale::Tiny).cores(16);
    let plain = base.clone().prefetcher("imp").run().unwrap();
    let pinned = base.clone().prefetcher("imp:depth=1").run().unwrap();
    assert_eq!(plain, pinned, "imp == imp:depth=1 on a chain workload");
    // And the knob is not a no-op: depth 3 runs a different machine.
    let deep = base.prefetcher("imp:depth=3").run().unwrap();
    assert_ne!(plain, deep, "depth=3 must actually chase the chain");
}

/// A chain workload's `.imptrace` replays to identical statistics, and
/// the recorded regions keep `hot_regions`-driven placement working.
#[test]
fn chain_trace_round_trips() {
    let sim = Sim::workload("skiplist")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp:depth=3");
    let artifact = sim.build_artifact().unwrap();
    let live = sim.run_on(&artifact).unwrap();

    let path = temp_path("skiplist");
    artifact.save(&path).unwrap();
    let via_registry = Sim::workload(format!("trace:{}", path.display()))
        .cores(16)
        .prefetcher("imp:depth=3")
        .run()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(live, via_registry, "chain workload survives record/replay");
}

/// On a chained run the per-hop ledger reconciles bucket by bucket
/// (`fills == used + late + evicted_unused` per hop) and the deep hops
/// see real traffic.
#[test]
fn per_hop_ledger_reconciles_on_a_chain_run() {
    let (_, report) = Sim::workload("btree")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp:depth=3")
        .observe(ObsConfig::metrics())
        .run_observed()
        .unwrap();
    assert!(report.reconciles_per_hop(), "per-hop ledger invariant");
    let s = report.summary();
    assert!(
        s.per_hop[1].issued > 0,
        "hop 1 prefetches on a chain kernel"
    );
    let deep: u64 = s.per_hop[2..].iter().map(|c| c.issued).sum();
    assert!(deep > 0, "depth 3 reaches past the first hop");
    // Summary buckets mirror the report's.
    assert_eq!(s.per_hop, report.ledger_per_hop);
}

/// The `chain:<spec>` grammar is the named kernels' builder: an
/// explicit spec spelling of `gather2` runs bit-identically to it.
#[test]
fn chain_grammar_matches_the_named_kernel() {
    let named = Sim::workload("gather2")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp:depth=2")
        .run()
        .unwrap();
    let spelled = Sim::workload("chain:depth=2,tables=g_idx+g_a+g_b")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp:depth=2")
        .run()
        .unwrap();
    assert_eq!(named, spelled, "grammar and kernel share one builder");
}
