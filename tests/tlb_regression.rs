//! Virtual-memory regression tests: the default (ideal) TLB must be a
//! pure no-op on existing results, and a finite dTLB must actually tax
//! IMP's value-derived prefetches on the paper workloads.

use imp::prelude::*;

fn pagerank_imp() -> Sim {
    Sim::workload("pagerank")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp")
}

/// The default configuration carries an ideal TLB and produces the same
/// statistics as any explicit zero-cost translation setup: the `imp-vm`
/// subsystem is purely additive for existing figures.
#[test]
fn default_ideal_tlb_is_bit_identical_to_zero_cost_translation() {
    let default = pagerank_imp().run().unwrap();
    assert!(
        default.tlb_total() == TlbStats::default(),
        "ideal translation must not count anything"
    );

    // A finite TLB with zero walk latency and ideal prefetch translation
    // charges nothing: every pre-existing counter must be bit-identical.
    let zero_cost = pagerank_imp()
        .tlb(
            TlbConfig::finite()
                .with_walk_latency(0)
                .with_policy(TranslationPolicy::Ideal),
        )
        .run()
        .unwrap();
    assert_eq!(default.runtime, zero_cost.runtime);
    assert_eq!(default.cores, zero_cost.cores);
    assert_eq!(default.prefetch, zero_cost.prefetch);
    assert_eq!(default.traffic, zero_cost.traffic);
    assert!(zero_cost.tlb_total().lookups() > 0, "the dTLB did run");
}

/// Determinism extends to the new subsystem: identical finite-TLB runs
/// produce identical statistics, TLB counters included.
#[test]
fn finite_tlb_runs_are_deterministic() {
    let sim = pagerank_imp().tlb_ways(2).page_size(4096);
    let a = sim.run().unwrap();
    let b = sim.run().unwrap();
    assert_eq!(a, b);
}

/// Under `DropOnMiss`, pagerank's IMP prefetches — whose targets are
/// data values scattered across the address space — must lose some
/// requests to translation.
#[test]
fn pagerank_imp_drops_prefetches_under_drop_on_miss() {
    let stats = pagerank_imp()
        .translation_policy(TranslationPolicy::DropOnMiss)
        .run()
        .unwrap();
    let t = stats.tlb_total();
    assert!(t.misses > 0, "{t:?}");
    assert!(t.prefetch_drops > 0, "{t:?}");
    assert!(t.walk_cycles > 0, "demand walks are charged: {t:?}");
    assert_eq!(t.prefetch_walks, 0, "DropOnMiss never walks for prefetches");
}

/// Under `NonBlockingWalk`, prefetch translations walk instead of
/// dying: walk cycles accrue and more indirect prefetches reach memory
/// than under `DropOnMiss`.
#[test]
fn pagerank_imp_walks_for_prefetches_under_non_blocking_walk() {
    let dropper = pagerank_imp()
        .translation_policy(TranslationPolicy::DropOnMiss)
        .run()
        .unwrap();
    let walker = pagerank_imp()
        .translation_policy(TranslationPolicy::NonBlockingWalk)
        .run()
        .unwrap();
    let t = walker.tlb_total();
    assert!(t.prefetch_walks > 0, "{t:?}");
    assert!(t.walk_cycles > 0, "{t:?}");
    assert_eq!(t.prefetch_drops, 0, "NonBlockingWalk never drops");
    assert!(
        walker.prefetch_total().issued() >= dropper.prefetch_total().issued(),
        "walking must not lose prefetches dropping kept: {} vs {}",
        walker.prefetch_total().issued(),
        dropper.prefetch_total().issued()
    );
    // Cores see the translation stalls.
    let walk_stalls: u64 = walker.cores.iter().map(|c| c.walk_stall_cycles).sum();
    assert!(walk_stalls > 0);
}

/// Sweeping a TLB axis slots into the existing grid machinery: same
/// inputs per cell, per-cell TLB stats, deterministic order.
#[test]
fn sweep_tlb_axis_runs_the_grid() {
    let results = Sweep::from(pagerank_imp()).tlb_ways([2, 8]).run().unwrap();
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(!r.cell.tlb.ideal);
        assert!(r.stats.tlb_total().lookups() > 0);
    }
    // More ways => fewer conflict misses (never more).
    assert!(results[0].stats.tlb_total().misses >= results[1].stats.tlb_total().misses);
}

/// Golden pin: the pre-L2-TLB translation subsystem — finite dTLB, no
/// L2, `WalkModel::Flat`, no translation prefetching (all defaults of
/// `TlbConfig::finite()`) — must keep producing byte-for-byte the
/// numbers it produced before walks became routable memory traffic.
/// If an intentional timing change breaks this, re-pin the constants
/// in the same change.
#[test]
fn flat_defaults_pin_pre_l2_outputs() {
    let cfg = TlbConfig::finite();
    assert!(!cfg.has_l2(), "finite() must stay L2-free");
    assert!(!cfg.tlb_prefetch);
    assert_eq!(cfg.walk_model, WalkModel::Flat);

    let drop = pagerank_imp()
        .translation_policy(TranslationPolicy::DropOnMiss)
        .run()
        .unwrap();
    let t = drop.tlb_total();
    assert_eq!(
        (drop.runtime, t.hits, t.misses, t.walk_cycles),
        (14510, 21318, 92, 9200)
    );
    assert_eq!(
        (t.prefetch_hits, t.prefetch_drops, t.prefetch_walks),
        (10416, 215, 0)
    );
    assert_eq!(drop.traffic.dram_read_bytes, 26560);
    assert_eq!(drop.traffic.noc_flit_hops, 95714);
    assert_eq!(drop.tlb_l2, TlbStats::default(), "no L2 TLB ran");

    let walk = pagerank_imp()
        .translation_policy(TranslationPolicy::NonBlockingWalk)
        .run()
        .unwrap();
    let t = walk.tlb_total();
    assert_eq!(
        (walk.runtime, t.hits, t.misses, t.walk_cycles),
        (15580, 21338, 72, 9300)
    );
    assert_eq!(
        (t.prefetch_hits, t.prefetch_drops, t.prefetch_walks),
        (10177, 0, 21)
    );
    assert_eq!(walk.traffic.noc_flit_hops, 96136);
}

/// Golden pin for the per-region refactor: the default all-4K
/// configuration — no `page_policy` overrides, every generator region
/// declaring `Base4K` — must stay bit-identical through the mixed-size
/// machinery, whether placement is left alone or spelled out
/// explicitly. (The absolute numbers are pinned by
/// `flat_defaults_pin_pre_l2_outputs`; this pins the equivalences.)
#[test]
fn all_4k_placements_are_bit_identical_to_the_default() {
    let default = pagerank_imp().tlb(TlbConfig::finite()).run().unwrap();
    assert_eq!(
        default.tlb_huge_total(),
        TlbStats::default(),
        "no huge-page machinery runs by default"
    );

    // Explicit all-Base4K override: same machinery, same bits.
    let explicit = pagerank_imp()
        .tlb(TlbConfig::finite())
        .page_policy("*", PagePolicy::Base4K)
        .run()
        .unwrap();
    assert_eq!(default, explicit);

    // An Auto policy whose threshold nothing meets is also all-4K.
    let auto = pagerank_imp()
        .tlb(TlbConfig::finite())
        .page_policy(
            "*",
            PagePolicy::Auto {
                threshold_bytes: u64::MAX,
            },
        )
        .run()
        .unwrap();
    assert_eq!(default, auto);
}

/// Golden numbers for the huge-page walk depth under
/// `WalkModel::Cached`: an all-`Huge2M` placement must walk exactly
/// one radix level fewer per page-table walk than the all-4K default
/// (3 instead of 4 in the 48-bit space), with the PTE reads really
/// routed through the memory hierarchy.
#[test]
fn all_huge_walks_fewer_pte_levels_under_cached_walks() {
    let base = pagerank_imp().walk_model(WalkModel::Cached);
    let all4k = base.clone().run().unwrap();
    let huge = base
        .clone()
        .page_policy("*", PagePolicy::Huge2M)
        .run()
        .unwrap();

    // Under DropOnMiss nothing but demand misses walks, so the
    // levels-per-walk ratio is exact at both placements.
    let b = all4k.tlb_total();
    assert_eq!(b.prefetch_walks, 0);
    assert_eq!(b.walk_levels, 4 * b.misses, "4 KB walks read 4 PTEs");
    let h = huge.tlb_huge_total();
    assert!(h.misses > 0, "huge sub-TLB saw the demand stream");
    assert_eq!(h.walk_levels, 3 * h.misses, "2 MB walks read 3 PTEs");
    assert_eq!(
        huge.tlb_base_total().walk_levels,
        0,
        "no base-page walks remain under an all-2M placement"
    );
    // Fewer and shallower walks: strictly less PTE traffic reaches the
    // memory system.
    assert!(
        huge.traffic.dram_read_bytes < all4k.traffic.dram_read_bytes,
        "{} vs {}",
        huge.traffic.dram_read_bytes,
        all4k.traffic.dram_read_bytes
    );
    // Determinism extends to cached huge walks.
    let again = base.page_policy("*", PagePolicy::Huge2M).run().unwrap();
    assert_eq!(huge, again);
}

/// A tiny dTLB over a roomy shared L2 TLB: dTLB misses become L2
/// lookups (the two-level ledger stays consistent through a full
/// multicore simulation), repeat pages hit the L2 instead of
/// re-walking, and the walk-stall picture improves over the same dTLB
/// without an L2 behind it.
#[test]
fn l2_tlb_intercepts_dtlb_misses() {
    let mut thrash = TlbConfig::finite();
    thrash.sets = 1;
    thrash.ways = 1;

    let without = pagerank_imp().tlb(thrash).run().unwrap();
    let with = pagerank_imp().tlb(thrash.with_l2(64, 8)).run().unwrap();

    let l1 = with.tlb_total();
    let l2 = &with.tlb_l2;
    assert!(l2.lookups() > 0, "the L2 TLB ran");
    assert!(l2.hits > 0, "repeat pages hit the L2");
    assert_eq!(l1.misses, l2.lookups(), "L1 misses == L2 lookups");
    assert_eq!(l2.evictions, l2.misses - l2.cold_fills, "L2 ledger");
    assert!(
        l1.walk_cycles < without.tlb_total().walk_cycles,
        "L2 hits replace re-walks: {} vs {}",
        l1.walk_cycles,
        without.tlb_total().walk_cycles
    );
    // Determinism extends to the second level.
    let again = pagerank_imp().tlb(thrash.with_l2(64, 8)).run().unwrap();
    assert_eq!(with, again);
}

/// The acceptance headline: under `DropOnMiss`, translation
/// prefetching — IMP prefilling L2-TLB entries for the pages its
/// indirect predictions target — buys back the prefetches (and
/// coverage) that translation was killing.
#[test]
fn translation_prefetch_recovers_coverage_under_drop_on_miss() {
    let base = pagerank_imp()
        .translation_policy(TranslationPolicy::DropOnMiss)
        .l2_tlb(64, 8);
    let without = base.clone().run().unwrap();
    let with = base.tlb_prefetch(true).run().unwrap();

    assert!(
        with.tlb_l2.prefetch_walks > 0,
        "translations were prefilled"
    );
    assert!(
        with.tlb_total().prefetch_drops < without.tlb_total().prefetch_drops,
        "prefilled pages stop dropping: {} vs {}",
        with.tlb_total().prefetch_drops,
        without.tlb_total().prefetch_drops
    );
    assert!(
        with.prefetch_total().issued_indirect > without.prefetch_total().issued_indirect,
        "recovered prefetches reach the memory system"
    );
    assert!(
        with.coverage() > without.coverage(),
        "and coverage recovers: {:.3} vs {:.3}",
        with.coverage(),
        without.coverage()
    );
}

/// `WalkModel::Cached` turns walks into first-class memory traffic:
/// PTE reads contend in the NoC and DRAM and show up in the traffic
/// statistics, where the flat model charges latency out of thin air.
#[test]
fn cached_walks_show_up_in_memory_traffic() {
    // Same finite TLB; only the walk-timing model differs.
    let flat = pagerank_imp().tlb(TlbConfig::finite()).run().unwrap();
    let cached = pagerank_imp().walk_model(WalkModel::Cached).run().unwrap();

    assert!(
        cached.traffic.dram_read_bytes > flat.traffic.dram_read_bytes,
        "PTE lines are fetched from DRAM: {} vs {}",
        cached.traffic.dram_read_bytes,
        flat.traffic.dram_read_bytes
    );
    assert!(
        cached.traffic.noc_messages > flat.traffic.noc_messages,
        "PTE reads cross the NoC"
    );
    assert!(
        cached.tlb_total().walk_cycles > 0,
        "walks still cost something"
    );
    // The warmed page-table working set makes repeat walks cheaper
    // than cold ones: total walk cycles differ from the flat charge.
    assert_ne!(cached.tlb_total().walk_cycles, flat.tlb_total().walk_cycles);
    // Determinism holds for the cached path too.
    let again = pagerank_imp().walk_model(WalkModel::Cached).run().unwrap();
    assert_eq!(cached, again);
}
