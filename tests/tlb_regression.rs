//! Virtual-memory regression tests: the default (ideal) TLB must be a
//! pure no-op on existing results, and a finite dTLB must actually tax
//! IMP's value-derived prefetches on the paper workloads.

use imp::prelude::*;

fn pagerank_imp() -> Sim {
    Sim::workload("pagerank")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp")
}

/// The default configuration carries an ideal TLB and produces the same
/// statistics as any explicit zero-cost translation setup: the `imp-vm`
/// subsystem is purely additive for existing figures.
#[test]
fn default_ideal_tlb_is_bit_identical_to_zero_cost_translation() {
    let default = pagerank_imp().run().unwrap();
    assert!(
        default.tlb_total() == TlbStats::default(),
        "ideal translation must not count anything"
    );

    // A finite TLB with zero walk latency and ideal prefetch translation
    // charges nothing: every pre-existing counter must be bit-identical.
    let zero_cost = pagerank_imp()
        .tlb(
            TlbConfig::finite()
                .with_walk_latency(0)
                .with_policy(TranslationPolicy::Ideal),
        )
        .run()
        .unwrap();
    assert_eq!(default.runtime, zero_cost.runtime);
    assert_eq!(default.cores, zero_cost.cores);
    assert_eq!(default.prefetch, zero_cost.prefetch);
    assert_eq!(default.traffic, zero_cost.traffic);
    assert!(zero_cost.tlb_total().lookups() > 0, "the dTLB did run");
}

/// Determinism extends to the new subsystem: identical finite-TLB runs
/// produce identical statistics, TLB counters included.
#[test]
fn finite_tlb_runs_are_deterministic() {
    let sim = pagerank_imp().tlb_ways(2).page_size(4096);
    let a = sim.run().unwrap();
    let b = sim.run().unwrap();
    assert_eq!(a, b);
}

/// Under `DropOnMiss`, pagerank's IMP prefetches — whose targets are
/// data values scattered across the address space — must lose some
/// requests to translation.
#[test]
fn pagerank_imp_drops_prefetches_under_drop_on_miss() {
    let stats = pagerank_imp()
        .translation_policy(TranslationPolicy::DropOnMiss)
        .run()
        .unwrap();
    let t = stats.tlb_total();
    assert!(t.misses > 0, "{t:?}");
    assert!(t.prefetch_drops > 0, "{t:?}");
    assert!(t.walk_cycles > 0, "demand walks are charged: {t:?}");
    assert_eq!(t.prefetch_walks, 0, "DropOnMiss never walks for prefetches");
}

/// Under `NonBlockingWalk`, prefetch translations walk instead of
/// dying: walk cycles accrue and more indirect prefetches reach memory
/// than under `DropOnMiss`.
#[test]
fn pagerank_imp_walks_for_prefetches_under_non_blocking_walk() {
    let dropper = pagerank_imp()
        .translation_policy(TranslationPolicy::DropOnMiss)
        .run()
        .unwrap();
    let walker = pagerank_imp()
        .translation_policy(TranslationPolicy::NonBlockingWalk)
        .run()
        .unwrap();
    let t = walker.tlb_total();
    assert!(t.prefetch_walks > 0, "{t:?}");
    assert!(t.walk_cycles > 0, "{t:?}");
    assert_eq!(t.prefetch_drops, 0, "NonBlockingWalk never drops");
    assert!(
        walker.prefetch_total().issued() >= dropper.prefetch_total().issued(),
        "walking must not lose prefetches dropping kept: {} vs {}",
        walker.prefetch_total().issued(),
        dropper.prefetch_total().issued()
    );
    // Cores see the translation stalls.
    let walk_stalls: u64 = walker.cores.iter().map(|c| c.walk_stall_cycles).sum();
    assert!(walk_stalls > 0);
}

/// Sweeping a TLB axis slots into the existing grid machinery: same
/// inputs per cell, per-cell TLB stats, deterministic order.
#[test]
fn sweep_tlb_axis_runs_the_grid() {
    let results = Sweep::from(pagerank_imp()).tlb_ways([2, 8]).run().unwrap();
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(!r.cell.tlb.ideal);
        assert!(r.stats.tlb_total().lookups() > 0);
    }
    // More ways => fewer conflict misses (never more).
    assert!(results[0].stats.tlb_total().misses >= results[1].stats.tlb_total().misses);
}
