//! Tripwire for the legacy workload surface: the deprecated items must
//! keep compiling AND keep working until they are removed for real.
//!
//! CI rebuilds this test with `--force-warn deprecated` and asserts the
//! deprecation warnings still fire — so a silent un-deprecation (or a
//! removal that breaks downstream users without a cycle of warnings)
//! trips this file either way.

#![allow(deprecated)]

use imp::prefetch::PrefetchKind;
use imp::prelude::*;

/// The static region table still answers, and still agrees with the
/// data-driven `Built::hot_regions()` on the workloads it lists.
#[test]
fn legacy_hot_regions_still_works_and_matches_the_derived_list() {
    let legacy = hot_regions("spmv");
    assert_eq!(legacy, vec!["x"]);
    let built = by_name("spmv")
        .unwrap()
        .build(&WorkloadParams::new(2, Scale::Tiny));
    assert_eq!(
        built.hot_regions(),
        legacy,
        "the deprecated table and the derived list agree on spmv"
    );
    // Workloads the table never knew about answer empty, while the
    // derived list knows them.
    assert!(hot_regions("hashjoin").is_empty());
    assert!(!by_name("hashjoin")
        .unwrap()
        .build(&WorkloadParams::new(2, Scale::Tiny))
        .hot_regions()
        .is_empty());
}

/// The pre-rename `PrefetchKind::Stream` alias still spells
/// `Sequential`.
#[test]
fn legacy_prefetch_kind_alias_still_works() {
    assert_eq!(PrefetchKind::Stream, PrefetchKind::Sequential);
    assert_eq!(PrefetchKind::Stream.hop(), 0);
    assert!(!PrefetchKind::Stream.is_translation_only());
}
