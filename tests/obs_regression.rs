//! Observability regression tests: the probe is a lens, never a knob.
//!
//! The golden pin: a probed run — at any observation level — produces
//! `SystemStats` bit-identical to a bare run of the same `Sim`, and
//! the observation itself is deterministic. The probe must also stay
//! out of the result-store identity, so observed sweeps share cache
//! entries with unobserved ones.

use imp::obs::ObsConfig;
use imp::prelude::*;
use imp::store::ResultStore;

fn spmv_imp() -> Sim {
    Sim::workload("spmv")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp")
        .tlb_ways(4)
        .walk_model(WalkModel::Cached)
}

/// The golden pin: stats from a bare run, a metrics-only run, and a
/// full-trace run are all bit-identical — switching observation on or
/// off (or up) can never change a simulated number.
#[test]
fn probed_runs_are_bit_identical_to_bare_runs() {
    let bare = spmv_imp().run().unwrap();
    let (metrics, _) = spmv_imp()
        .observe(ObsConfig::metrics())
        .run_observed()
        .unwrap();
    let (full, report) = spmv_imp()
        .observe(ObsConfig::full(4096, 5_000))
        .run_observed()
        .unwrap();
    assert_eq!(bare, metrics, "metrics probe perturbed the run");
    assert_eq!(bare, full, "tracing probe perturbed the run");
    assert!(report.reconciles(), "ledger fills all have one fate");
    assert!(report.trace.is_some(), "full config records a trace");
}

/// Identical observed runs produce identical observations: histograms,
/// ledger, epochs, and the trace are all functions of the (seeded,
/// deterministic) event stream.
#[test]
fn observation_is_deterministic() {
    let sim = spmv_imp().observe(ObsConfig::full(4096, 5_000));
    let (_, a) = sim.run_observed().unwrap();
    let (_, b) = sim.run_observed().unwrap();
    assert_eq!(a.demand_latency.buckets(), b.demand_latency.buckets());
    assert_eq!(a.walk_latency.buckets(), b.walk_latency.buckets());
    assert_eq!(a.ledger_total, b.ledger_total);
    assert_eq!(a.ledger_per_pc, b.ledger_per_pc);
    assert_eq!(a.epochs, b.epochs);
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(ta.pushes(), tb.pushes());
    assert_eq!(ta.to_chrome_json(), tb.to_chrome_json());
}

/// Observation stays out of cell identity: an observed sweep is served
/// from a store populated by an unobserved one (and vice versa), with
/// cached cells carrying no summary — the store holds stats, not
/// observations.
#[test]
fn observe_shares_store_entries_with_unobserved_sweeps() {
    let dir = std::env::temp_dir().join(format!("imp-obs-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).unwrap();
    let grid = || {
        Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["none", "imp"])
            .cores([16])
    };

    let cold = grid()
        .observe(ObsConfig::metrics())
        .run_with(&store, |_| {})
        .unwrap();
    assert_eq!((cold.cached, cold.simulated), (0, 2));
    for r in cold.results.iter().map(|r| r.as_ref().unwrap()) {
        let obs = r.obs.as_ref().expect("freshly simulated cells observe");
        assert_eq!(
            obs.ledger.fills,
            obs.ledger.used + obs.ledger.late + obs.ledger.evicted_unused
        );
    }

    // Same grid, observed or not: every cell is a store hit.
    let warm = grid()
        .observe(ObsConfig::metrics())
        .run_with(&store, |_| {})
        .unwrap();
    assert_eq!((warm.cached, warm.simulated), (2, 0));
    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
        assert_eq!(c.stats, w.stats, "store round-trip is bit-identical");
        assert!(w.obs.is_none(), "cached cells are not re-observed");
    }
    let bare = grid().run_with(&store, |_| {}).unwrap();
    assert_eq!((bare.cached, bare.simulated), (2, 0));
    std::fs::remove_dir_all(&dir).ok();
}
