//! Validation of modelling claims the paper makes about its own
//! methodology (Section 5).

use imp::common::config::{DramModelKind, PrefetcherKind};
use imp::prelude::*;

fn run_with_dram(app: &str, kind: DramModelKind) -> SystemStats {
    let params = WorkloadParams::new(16, Scale::Tiny);
    let built = by_name(app).unwrap().build(&params);
    let mut cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
    cfg.mem.dram = kind;
    System::new(cfg, built.program, built.mem).run()
}

/// Section 5.1: "the simpler model produces results within 5% of
/// DRAMSim". Our two DRAM models should agree closely too (we accept a
/// wider band: the DDR3 model has bank conflicts the fixed-latency model
/// cannot express, and tiny inputs amplify cold effects).
#[test]
fn simple_and_ddr3_dram_models_agree() {
    for app in ["spmv", "pagerank"] {
        let simple = run_with_dram(app, DramModelKind::Simple);
        let ddr3 = run_with_dram(app, DramModelKind::Ddr3);
        let ratio = ddr3.runtime as f64 / simple.runtime as f64;
        assert!(
            (0.75..1.25).contains(&ratio),
            "{app}: DDR3/simple runtime ratio {ratio:.3}"
        );
    }
}

/// Table 1 scaling: quadrupling the core count must increase aggregate
/// resources by 2x (sqrt scaling), visible as mesh/MC geometry.
#[test]
fn sqrt_scaling_is_configured() {
    let c16 = SystemConfig::paper_default(16);
    let c64 = SystemConfig::paper_default(64);
    let c256 = SystemConfig::paper_default(256);
    assert_eq!(c16.mem.mem_controllers * 2, c64.mem.mem_controllers);
    assert_eq!(c64.mem.mem_controllers * 2, c256.mem.mem_controllers);
    // Total L2 doubles per 4x cores.
    let total = |c: &SystemConfig| c.mem.l2_slice.size_bytes * u64::from(c.cores);
    assert_eq!(total(&c16) * 2, total(&c64));
    assert_eq!(total(&c64) * 2, total(&c256));
}

/// The prefetch-distance claim of Section 3.2.3: larger maximum distance
/// helps a long-stream workload (spmv), because prefetches launch
/// earlier relative to use.
#[test]
fn distance_ramp_increases_timeliness() {
    let run_dist = |d: u32| {
        let params = WorkloadParams::new(16, Scale::Tiny);
        let built = by_name("spmv").unwrap().build(&params);
        let mut cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        cfg.imp.max_prefetch_distance = d;
        System::new(cfg, built.program, built.mem).run()
    };
    let short = run_dist(2);
    let long = run_dist(16);
    // Longer distance must not be slower by more than noise, and usually
    // wins; with tiny inputs we assert the weak direction.
    assert!(
        long.runtime <= short.runtime + short.runtime / 20,
        "distance 16: {} vs distance 2: {}",
        long.runtime,
        short.runtime
    );
}

/// Software prefetching's fundamental cost (Section 6.1.2): it must
/// execute more instructions than the hardware approach for the same
/// work.
#[test]
fn software_prefetching_costs_instructions() {
    for app in ["pagerank", "spmv", "lsh"] {
        let plain = by_name(app)
            .unwrap()
            .build(&WorkloadParams::new(8, Scale::Tiny))
            .program
            .total_instructions();
        let sw = by_name(app)
            .unwrap()
            .build(&WorkloadParams::new(8, Scale::Tiny).with_software_prefetch(8))
            .program
            .total_instructions();
        assert!(sw > plain, "{app}: {sw} vs {plain}");
    }
}
