//! The PR's acceptance criteria, end to end: a user-defined prefetcher
//! registered from outside `imp-sim` runs through `Sim`, and `Sweep`
//! grids are identical single- vs multi-threaded.

use imp::common::{LineAddr, SectorMask};
use imp::prefetch::registry::{self, RegistryError};
use imp::prefetch::{
    Access, IndexValueSource, L1Prefetcher, PrefetchKind, PrefetchRequest, PrefetcherStats,
};
use imp::prelude::*;
use imp::sim::System;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A user-defined next-line prefetcher, unknown to every core crate.
struct NextLine {
    stats: PrefetcherStats,
    issued: Arc<AtomicU64>,
}

impl L1Prefetcher for NextLine {
    fn on_access(
        &mut self,
        access: Access,
        _values: &mut dyn IndexValueSource,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if !access.miss {
            return;
        }
        self.stats.stream_prefetches += 1;
        self.issued.fetch_add(1, Ordering::Relaxed);
        let next = LineAddr::containing(access.addr).number() + 1;
        out.push(PrefetchRequest {
            pc: access.pc,
            addr: LineAddr::from_line_number(next).base(),
            sectors: SectorMask::FULL_L1,
            exclusive: false,
            kind: PrefetchKind::Sequential,
        });
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

fn register_next_line() -> Arc<AtomicU64> {
    static ISSUED: std::sync::OnceLock<Arc<AtomicU64>> = std::sync::OnceLock::new();
    ISSUED
        .get_or_init(|| {
            let issued = Arc::new(AtomicU64::new(0));
            let captured = issued.clone();
            registry::register_fn("test-next-line", move |_spec, _ctx| {
                Ok(Box::new(NextLine {
                    stats: PrefetcherStats::default(),
                    issued: captured.clone(),
                }))
            })
            .expect("test owns this name");
            issued
        })
        .clone()
}

/// The legacy hook surface must keep working through the trait's
/// bridging defaults: a plugin *implementing* old `on_access` is driven
/// by the simulator's `on_access_ctx` calls, and old callers of
/// `on_access_collect` still reach a ctx-based implementation. The
/// `allow` is scoped to the exercise; CI rebuilds this test with
/// `--force-warn deprecated` and asserts the warning points here, so
/// the legacy surface can neither silently break nor silently lose its
/// deprecation marker.
#[test]
fn legacy_hooks_still_work_through_the_shims() {
    let issued = register_next_line();
    let before = issued.load(Ordering::Relaxed);
    let mut pf = registry::build(
        &"test-next-line".parse().expect("valid spec"),
        &registry::BuildCtx {
            core: 0,
            imp: &imp::common::ImpConfig::paper_default(),
            partial: false,
        },
    )
    .expect("registered above");
    let mut values = imp::prefetch::MapValueSource::new();
    #[allow(deprecated)]
    let reqs = pf.on_access_collect(
        Access::load_miss(Pc::new(9), Addr::new(0x4000), 8),
        &mut values,
    );
    assert_eq!(reqs.len(), 1, "legacy impl reached through the shims");
    assert_eq!(reqs[0].addr, Addr::new(0x4040), "next line prefetched");
    assert_eq!(issued.load(Ordering::Relaxed), before + 1);
}

#[test]
fn custom_prefetcher_runs_end_to_end_through_sim() {
    let issued = register_next_line();
    let before = issued.load(Ordering::Relaxed);
    let stats = Sim::workload("spmv")
        .cores(16)
        .scale(Scale::Tiny)
        .prefetcher("test-next-line")
        .run()
        .expect("registered prefetcher must resolve");
    assert!(stats.runtime > 0);
    // The plugin really sat in the L1 path: it issued prefetches and the
    // simulator accounted them.
    assert!(
        issued.load(Ordering::Relaxed) > before,
        "plugin saw no misses"
    );
    assert!(
        stats.prefetch_total().issued_stream > 0,
        "no prefetches reached the MSHRs"
    );
}

#[test]
fn custom_prefetcher_round_trips_through_system_directly() {
    register_next_line();
    let params = WorkloadParams::new(16, Scale::Tiny);
    let built = by_name("spmv").unwrap().build(&params);
    let cfg = SystemConfig::paper_default(16).with_prefetcher("test-next-line");
    let stats = System::try_new(cfg, built.program, built.mem)
        .expect("spec resolves")
        .run();
    assert!(stats.prefetch_total().issued_stream > 0);
}

#[test]
fn unknown_prefetcher_fails_cleanly_not_by_panic() {
    let params = WorkloadParams::new(16, Scale::Tiny);
    let built = by_name("spmv").unwrap().build(&params);
    let cfg = SystemConfig::paper_default(16).with_prefetcher("nobody-registered-this");
    match System::try_new(cfg, built.program, built.mem) {
        Err(imp::sim::BuildError::Registry(RegistryError::UnknownPrefetcher { name, .. })) => {
            assert_eq!(name, "nobody-registered-this");
        }
        Ok(_) => panic!("unknown prefetcher must not build"),
        Err(other) => panic!("wrong error: {other}"),
    }
}

/// The acceptance grid: ≥3 prefetchers × ≥2 core counts, single- vs
/// multi-threaded, must agree cell for cell.
#[test]
fn sweep_is_deterministic_across_thread_counts() {
    let grid = || {
        Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .cores([16, 64])
            .prefetchers(["none", "stream", "imp", "hybrid"])
    };
    let serial = grid().threads(1).run().expect("serial sweep");
    let parallel = grid().threads(4).run().expect("parallel sweep");
    assert_eq!(serial.len(), 8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.cell, b.cell, "cell order must not depend on threads");
        assert_eq!(a.stats.runtime, b.stats.runtime, "{:?}", a.cell);
        assert_eq!(a.stats.traffic, b.stats.traffic, "{:?}", a.cell);
        assert_eq!(
            a.stats.misses_by_class(),
            b.stats.misses_by_class(),
            "{:?}",
            a.cell
        );
    }
    // Sanity on the shape: within a core count, cells share the input
    // seed, so IMP beating the null prefetcher is a real comparison.
    let at16: Vec<_> = serial.iter().filter(|r| r.cell.cores == 16).collect();
    let none = at16
        .iter()
        .find(|r| r.cell.prefetcher.name == "none")
        .unwrap();
    let imp = at16
        .iter()
        .find(|r| r.cell.prefetcher.name == "imp")
        .unwrap();
    assert_eq!(none.cell.seed, imp.cell.seed);
    assert!(imp.stats.runtime < none.stats.runtime);
}
