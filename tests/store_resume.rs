//! End-to-end result-store behavior through the `imp` facade: a warm
//! re-run simulates nothing and is bit-identical, a corrupted record
//! fails its checksum and quietly re-simulates, and the sweep service
//! turns request files into manifests backed by the same store.

use imp::prelude::*;
use imp::sim::{serve_dir, SweepRequest};
use imp::store::ResultStore;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("imp-store-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> Sweep {
    Sweep::from(Sim::workload("spmv").scale(Scale::Tiny)).prefetchers(["none", "imp"])
}

#[test]
fn warm_rerun_simulates_nothing_and_is_bit_identical() {
    let dir = scratch("warm");
    let store = ResultStore::open(&dir).unwrap();
    let cold = grid().run_with(&store, |_| {}).unwrap();
    assert_eq!((cold.cached, cold.simulated), (0, 2));

    let warm = grid().run_with(&store, |_| {}).unwrap();
    assert_eq!((warm.cached, warm.simulated), (2, 0));
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert_eq!(c.as_ref().unwrap().stats, w.as_ref().unwrap().stats);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_record_fails_its_checksum_and_resimulates() {
    let dir = scratch("corrupt");
    let store = ResultStore::open(&dir).unwrap();
    let cold = grid().run_with(&store, |_| {}).unwrap();
    assert_eq!(cold.simulated, 2);

    // Flip a bit in one record's checksum trailer.
    let shard = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.is_dir())
        .expect("sharded store directory");
    let record = std::fs::read_dir(&shard)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "impres"))
        .expect("a stored record");
    let mut bytes = std::fs::read(&record).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&record, &bytes).unwrap();

    // The corrupt cell re-simulates; the intact one is still a hit —
    // and the grid comes back bit-identical either way.
    let store = ResultStore::open(&dir).unwrap();
    let rerun = grid().run_with(&store, |_| {}).unwrap();
    assert_eq!((rerun.cached, rerun.simulated, rerun.failed), (1, 1, 0));
    assert!(store.counters().rejected >= 1, "checksum mismatch counted");
    for (c, r) in cold.results.iter().zip(&rerun.results) {
        assert_eq!(c.as_ref().unwrap().stats, r.as_ref().unwrap().stats);
    }

    // The re-simulation healed the store: everything hits again.
    let healed = grid().run_with(&store, |_| {}).unwrap();
    assert_eq!((healed.cached, healed.simulated), (2, 0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn service_requests_resume_from_the_shared_store() {
    let dir = scratch("service");
    std::fs::create_dir_all(&dir).unwrap();
    let store = ResultStore::open(dir.join("store")).unwrap();
    std::fs::write(
        dir.join("fig.sweep"),
        "workloads = spmv\nprefetchers = none, imp\nscale = tiny\nthreads = 2\n",
    )
    .unwrap();
    let served = serve_dir(&dir, &store).unwrap();
    assert_eq!(served.len(), 1);
    assert_eq!((served[0].cached, served[0].simulated), (0, 2));
    assert!(dir.join("fig.manifest.json").exists());
    assert!(dir.join("fig.sweep.done").exists());

    // A hand-built request over the same grid is served from the store.
    let req = SweepRequest::parse("again", "workloads = spmv\nprefetchers = none, imp\n").unwrap();
    let (table, report) = req.process(&store).unwrap();
    assert_eq!((report.cached, report.simulated), (2, 0));
    assert_eq!(table.rows(), 2);
    std::fs::remove_dir_all(&dir).ok();
}
