//! The shared-trace-artifact acceptance criteria, end to end:
//!
//! * a `Sweep` over several prefetchers builds its workload exactly once
//!   (asserted by the registry build counter) and the shared-artifact
//!   results are bit-identical to rebuilding per cell;
//! * an `.imptrace` saved from a stock workload replays — through the
//!   `trace:<path>` pseudo-workload and through `Sim::run_on` — to the
//!   same `SystemStats` as the live build.
//!
//! Each test uses a different workload name so the per-name build
//! counters don't interfere across this binary's parallel test threads.

use imp::prelude::*;
use imp::workloads::{build_count, BuiltArtifact};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("imp-it-{tag}-{}.imptrace", std::process::id()))
}

/// The headline acceptance test: ≥3 prefetchers on one workload, one
/// generator run, results identical to the rebuild-per-cell path.
#[test]
fn sweep_builds_each_input_once_with_bit_identical_stats() {
    let base = Sim::workload("tri_count").scale(Scale::Tiny).cores(16);
    let sweep = Sweep::from(base.clone()).prefetchers(["none", "stream", "imp"]);

    let before = build_count("tri_count");
    let shared = sweep.run().unwrap();
    let after = build_count("tri_count");
    assert_eq!(
        after - before,
        1,
        "3 prefetcher cells must share one generator run"
    );
    assert_eq!(shared.len(), 3);

    // Rebuild-per-cell reference: one standalone Sim per cell, each
    // paying its own workload build.
    for r in &shared {
        let rebuilt = base
            .clone()
            .prefetcher(r.cell.prefetcher.clone())
            .partial(r.cell.partial)
            .seed(r.cell.seed)
            .run()
            .unwrap();
        assert_eq!(
            r.stats, rebuilt,
            "shared-artifact stats must be bit-identical for {}",
            r.cell.prefetcher
        );
    }
    assert_eq!(
        build_count("tri_count") - after,
        3,
        "the reference path really did rebuild per cell"
    );
}

/// Saved artifacts replay to the same statistics as the live build,
/// via both `Sim::run_on` and the `trace:<path>` registry name.
#[test]
fn saved_trace_replays_to_identical_stats() {
    let sim = Sim::workload("sgd")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher("imp");
    let artifact = sim.build_artifact().unwrap();
    let live = sim.run_on(&artifact).unwrap();

    let path = temp_path("replay");
    artifact.save(&path).unwrap();
    let loaded = BuiltArtifact::load(&path).unwrap();
    assert_eq!(loaded.result(), artifact.result());

    let from_file = sim.run_on(&loaded).unwrap();
    assert_eq!(live, from_file, "run_on(loaded artifact)");

    let via_registry = Sim::workload(format!("trace:{}", path.display()))
        .cores(16)
        .prefetcher("imp")
        .run()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(live, via_registry, "trace:<path> pseudo-workload");
}

/// Replay failures surface as typed `SimError`s, not panics, and a
/// `run_partial` grid keeps its healthy cells alongside them.
#[test]
fn replay_failures_are_per_cell_errors() {
    let missing = format!("trace:{}", temp_path("never-written").display());
    match Sim::workload(&missing).cores(16).run() {
        Err(SimError::Build(msg)) => assert!(msg.contains("i/o error"), "{msg}"),
        other => panic!("expected Build error, got {other:?}"),
    }

    // A core-count mismatch keeps its typed form through the Sim layer.
    let artifact = Sim::workload("dense")
        .scale(Scale::Tiny)
        .cores(16)
        .build_artifact()
        .unwrap();
    let path = temp_path("wrong-cores");
    artifact.save(&path).unwrap();
    let mismatched = Sim::workload(format!("trace:{}", path.display()))
        .cores(64)
        .run();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        mismatched.unwrap_err(),
        SimError::CoreMismatch {
            program: 16,
            config: 64
        }
    );

    let outcomes = Sweep::from(Sim::workload("lsh").scale(Scale::Tiny).cores(16))
        .workloads(["lsh", missing.as_str()])
        .prefetchers(["stream", "imp"])
        .run_partial()
        .unwrap();
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok(), "lsh cells run");
    for bad in &outcomes[2..] {
        let err = bad.as_ref().unwrap_err();
        assert!(
            matches!(err.error, SimError::Build(_)),
            "missing trace fails its own cells only: {err}"
        );
    }
}

/// Translation knobs are pure configuration: a sweep over
/// `tlb_ways x translation_policies` (or any other TLB axis) never
/// changes the generated input, so every cell of a (workload, cores,
/// seed) group reuses one `BuiltArtifact`.
#[test]
fn translation_axis_cells_share_one_built_artifact() {
    let sweep = Sweep::from(Sim::workload("symgs").scale(Scale::Tiny).cores(16))
        .tlb_ways([2, 4, 8])
        .translation_policies([
            TranslationPolicy::DropOnMiss,
            TranslationPolicy::NonBlockingWalk,
        ]);
    let cells = sweep.cells();
    assert_eq!(cells.len(), 6);
    let seed = cells[0].seed;
    assert!(
        cells.iter().all(|c| c.seed == seed),
        "translation axes never change the generated input"
    );

    let before = build_count("symgs");
    let results = sweep.run().unwrap();
    assert_eq!(
        build_count("symgs") - before,
        1,
        "6 translation cells must share one generator run"
    );
    assert_eq!(results.len(), 6);
    assert!(results.iter().all(|r| r.stats.tlb_total().lookups() > 0));
}

/// Per-region page placement is translation-only configuration too: a
/// `page_policies` sweep shares one `BuiltArtifact` per input, and the
/// placement the generator declared survives an `.imptrace` round trip
/// so a replayed trace honors the same `page_policy` overrides.
#[test]
fn page_policy_axis_shares_one_built_artifact_and_replays() {
    let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny).cores(16)).page_policies([
        vec![],
        vec![("x".to_string(), PagePolicy::Huge2M)],
        vec![("*".to_string(), PagePolicy::Huge2M)],
    ]);
    let before = build_count("spmv");
    let results = sweep.run().unwrap();
    assert_eq!(
        build_count("spmv") - before,
        1,
        "3 placement cells must share one generator run"
    );
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].stats.tlb_huge_total(), TlbStats::default());
    assert!(results[1].stats.tlb_huge_total().lookups() > 0);

    // A replayed trace carries the regions, so the same override runs
    // bit-identically against the recording.
    let base = Sim::workload("spmv")
        .scale(Scale::Tiny)
        .cores(16)
        .seed(results[0].cell.seed)
        .page_policy("x", PagePolicy::Huge2M);
    let path = temp_path("regions");
    base.build_artifact().unwrap().save(&path).unwrap();
    let replayed = base
        .clone()
        .with_workload(format!("trace:{}", path.display()))
        .run()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        replayed, results[1].stats,
        "placement survives record/replay"
    );
}
