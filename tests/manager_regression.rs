//! Adaptive-management regression tests.
//!
//! The golden pin: `manager("static")` runs the entire control plane —
//! the ledger mirrored at every fill/use/evict site, the per-epoch
//! feedback distillation, the policy callback — and must still produce
//! `SystemStats` bit-identical to running unmanaged, because the static
//! policy never intervenes. Any divergence means the feedback loop
//! itself perturbed timing, which would invalidate every managed-vs-
//! unmanaged comparison the control plane exists to make.

use imp::prelude::*;

fn spmv(prefetcher: &str) -> Sim {
    Sim::workload("spmv")
        .scale(Scale::Tiny)
        .cores(16)
        .prefetcher(prefetcher)
}

/// The golden pin, across prefetcher models (including the one that
/// chains fills): observing through the manager must never steer.
#[test]
fn static_manager_is_bit_identical_to_unmanaged() {
    for pf in ["stream", "imp", "hybrid:components=stream+imp"] {
        let bare = spmv(pf).run().unwrap();
        let managed = spmv(pf).manager("static").run().unwrap();
        assert_eq!(bare, managed, "manager=static perturbed {pf}");
    }
}

/// An intervening policy must actually intervene: a throttle with an
/// impossible accuracy bar (always throttled) changes the run, proving
/// the control path is live and the static pin is not vacuous.
#[test]
fn throttling_changes_the_run_and_is_deterministic() {
    let bare = spmv("stream:distance=32").run().unwrap();
    let sim = spmv("stream:distance=32")
        .manager("throttle:accuracy_floor=0.95,recover=0.99,epoch=500,degree=0");
    let throttled = sim.run().unwrap();
    assert_ne!(bare, throttled, "an always-on throttle must change the run");
    assert!(
        throttled.prefetch_total().issued() < bare.prefetch_total().issued(),
        "throttling must issue fewer prefetches: {} vs {}",
        throttled.prefetch_total().issued(),
        bare.prefetch_total().issued()
    );
    assert_eq!(
        sim.run().unwrap(),
        throttled,
        "managed runs are deterministic"
    );
}

/// A tree forced into its switch leaf swaps the prefetcher model
/// mid-run; the stats carried across the swap keep counting.
#[test]
fn tree_switch_leaf_swaps_models_without_losing_stats() {
    let bare = spmv("imp").run().unwrap();
    let switched = spmv("imp")
        .manager("tree:epoch=2000,spec=(acc<2.0?switch_stream:pass)")
        .run()
        .unwrap();
    assert_ne!(bare, switched, "the switch leaf must change the run");
    // IMP's pattern detections happened before the swap; the replaced
    // model's counters must survive into the final stats.
    assert!(
        switched.prefetch_total().patterns_detected > 0,
        "pre-switch IMP detections were dropped from the stats"
    );
    assert!(
        switched.prefetch_total().issued_stream > 0,
        "post-switch stream model never ran"
    );
}

/// Manager identity lives in the canonical input: unmanaged keeps the
/// pre-manager rendering (every stored digest stays valid), managed
/// cells are distinct cache entries.
#[test]
fn manager_joins_the_canonical_input() {
    let plain = spmv("imp").canonical_input().unwrap();
    assert!(
        !plain.contains(";mgr:"),
        "unmanaged canonical must not mention a manager: {plain}"
    );
    let stat = spmv("imp").manager("static").canonical_input().unwrap();
    let thr = spmv("imp")
        .manager("throttle:accuracy_floor=0.4")
        .canonical_input()
        .unwrap();
    assert_ne!(plain, stat);
    assert_ne!(stat, thr);
    assert!(stat.ends_with(";mgr:static"), "{stat}");
}

/// The sweep axis end to end: one grid, managed and unmanaged cells
/// side by side, the unmanaged cell bit-identical to a plain run.
#[test]
fn sweep_manager_axis_runs_managed_and_unmanaged_cells() {
    let results = Sweep::from(spmv("stream:distance=32"))
        .managers([
            "none",
            "static",
            "throttle:accuracy_floor=0.95,recover=0.99,epoch=500,degree=0",
        ])
        .run()
        .unwrap();
    assert_eq!(results.len(), 3);
    // (Cells derive their own workload seed from the grid coordinates,
    // so compare cells to each other, not to a template-seed run.)
    assert_eq!(
        results[0].stats, results[1].stats,
        "manager=none cell == manager=static cell"
    );
    assert_ne!(
        results[2].stats, results[0].stats,
        "throttled cell must differ"
    );
}
