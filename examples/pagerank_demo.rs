//! PageRank across the paper's configurations at 64 cores: the
//! motivating workload of the paper's introduction (graph analytics with
//! `pr[adj[e]]` / `deg[adj[e]]` multi-way indirection).
//!
//! ```sh
//! cargo run --release --example pagerank_demo
//! ```

use imp::prelude::*;
use imp_experiments::scale_from_env;

fn main() {
    let cores = 64;
    println!("pagerank, {cores} cores, Small inputs (set IMP_SCALE to change)\n");
    let base = Sim::workload("pagerank")
        .cores(cores)
        .scale(scale_from_env());
    let rows: Vec<(&str, SystemStats)> = [
        ("Ideal", base.clone().mem_mode(MemMode::Ideal)),
        (
            "Perfect Prefetching",
            base.clone().mem_mode(MemMode::PerfectPrefetch),
        ),
        ("Baseline (stream)", base.clone()),
        ("Software Prefetching", base.clone().software_prefetch(16)),
        ("IMP", base.clone().prefetcher("imp")),
        (
            "IMP + partial NoC+DRAM",
            base.clone()
                .prefetcher("imp")
                .partial(PartialMode::NocAndDram),
        ),
    ]
    .into_iter()
    .map(|(label, sim)| (label, sim.run().expect("paper config runs")))
    .collect();
    let ideal = rows[0].1.clone();
    println!(
        "{:24} {:>12} {:>10} {:>8} {:>8} {:>14} {:>14}",
        "config", "runtime", "vs Ideal", "cov", "acc", "NoC flit-hops", "DRAM bytes"
    );
    for (label, s) in &rows {
        println!(
            "{label:24} {:>12} {:>10.2} {:>8.2} {:>8.2} {:>14} {:>14}",
            s.runtime,
            s.runtime as f64 / ideal.runtime as f64,
            s.coverage(),
            s.accuracy(),
            s.traffic.noc_flit_hops,
            s.traffic.dram_bytes(),
        );
    }
    let misses = rows[2].1.misses_by_class();
    let total: u64 = misses.iter().sum();
    println!(
        "\nBaseline L1 miss breakdown: indirect {:.0}%, stream {:.0}%, other {:.0}% (paper Fig 1: indirect dominates)",
        100.0 * misses[0] as f64 / total as f64,
        100.0 * misses[1] as f64 / total as f64,
        100.0 * misses[2] as f64 / total as f64,
    );
}
