//! L2-TLB reach and translation prefetching: how much of the IMP
//! coverage that `DropOnMiss` translation destroys can a shared
//! second-level TLB — and IMP prefilling it for its predicted pages —
//! buy back?
//!
//! The per-core dTLB stays at its `TlbConfig::finite()` sizing (the
//! conservative hardware point: prefetches whose pages miss
//! translation are dropped). The sweep then grows a shared L2 TLB
//! behind it and toggles translation prefetching, printing prefetch
//! drops, L2-TLB traffic and coverage next to an ideal-translation
//! reference — the coverage-vs-reach curve for IMP under real
//! translation.
//!
//! ```sh
//! cargo run --release --example l2_tlb_reach [workload] [--json|--csv]
//! ```
//!
//! Expected shape: with no L2 TLB, `DropOnMiss` kills the value-derived
//! prefetches whose pages the dTLB has never seen and coverage sits
//! well below ideal. Growing L2 reach recovers the *revisited* pages;
//! switching translation prefetching on recovers the *cold* ones too
//! (the indirect prediction walks the page in ahead of its own data
//! prefetch), pushing coverage back toward the ideal line at the price
//! of L2-TLB walk cycles instead of core stalls.

use imp::prelude::*;
use imp::sim::{Sim, Sweep};
use imp_experiments::{scale_from_env, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "pagerank".to_string());

    let base = Sim::workload(&app)
        .scale(scale_from_env())
        .prefetcher("imp")
        .translation_policy(TranslationPolicy::DropOnMiss);
    let results = Sweep::from(base.clone())
        .l2_tlbs([(0, 0), (16, 4), (64, 8), (256, 8)])
        .tlb_prefetches([false, true])
        .run()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });

    // Ideal-translation reference on the same generated input.
    let ideal = base
        .clone()
        .tlb(TlbConfig::ideal())
        .seed(results[0].cell.seed)
        .run()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });

    let mut t = Table::new(
        format!("{app}: IMP coverage vs shared L2-TLB reach under DropOnMiss"),
        vec![
            "L2 reach KB",
            "runtime x",
            "coverage",
            "drops",
            "L2 hits",
            "tp installs",
        ],
    );
    t.row("ideal", vec![0.0, 1.0, ideal.coverage(), 0.0, 0.0, 0.0]);
    for r in &results {
        let tlb = r.cell.tlb;
        let l2 = &r.stats.tlb_l2;
        let label = format!(
            "{}e{}",
            tlb.l2_entries(),
            if tlb.tlb_prefetch { "+tp" } else { "" }
        );
        t.row(
            &label,
            vec![
                (tlb.l2_reach_bytes() >> 10) as f64,
                r.stats.runtime as f64 / ideal.runtime.max(1) as f64,
                r.stats.coverage(),
                r.stats.tlb_total().prefetch_drops as f64,
                (l2.hits + l2.prefetch_hits) as f64,
                // The port installs into the L2 — or, in the no-L2
                // rows, into the per-core dTLBs (the fallback path), so
                // count both ledgers.
                (l2.prefetch_walks + r.stats.tlb_total().prefetch_walks) as f64,
            ],
        );
    }

    if args.iter().any(|a| a == "--json") {
        println!("{}", t.to_json());
    } else if args.iter().any(|a| a == "--csv") {
        println!("{}", t.to_csv());
    } else {
        println!("{t}");
        println!("(expect: the 0-entry row shows DropOnMiss at full cost; growing L2");
        println!(" reach recovers revisited pages; '+tp' rows — translation");
        println!(" prefetching — also recover cold pages, trading prefetch drops for");
        println!(" tp installs and closing most of the coverage gap to ideal.)");
    }

    // The claim this example exists to demonstrate, kept honest on
    // every run: against the plain DropOnMiss baseline (no L2 TLB, no
    // translation prefetching), enabling translation prefetching must
    // recover coverage and prefetch drops.
    let baseline = results
        .iter()
        .find(|r| !r.cell.tlb.has_l2() && !r.cell.tlb.tlb_prefetch)
        .expect("the (0,0)/false cell is in the grid");
    let best_tp = results
        .iter()
        .filter(|r| r.cell.tlb.tlb_prefetch)
        .max_by(|a, b| a.stats.coverage().total_cmp(&b.stats.coverage()))
        .expect("tp cells are in the grid");
    assert!(
        best_tp.stats.coverage() > baseline.stats.coverage(),
        "translation prefetching must recover coverage ({:.3} vs {:.3})",
        best_tp.stats.coverage(),
        baseline.stats.coverage()
    );
    assert!(
        best_tp.stats.tlb_total().prefetch_drops < baseline.stats.tlb_total().prefetch_drops,
        "and stop prefetch drops"
    );
}
