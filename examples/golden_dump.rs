//! Dumps full `SystemStats` for a diverse grid of configurations.
//!
//! Used to verify that simulator-kernel refactors stay bit-identical:
//! run it before and after a change and diff the output.

use imp::prelude::*;

fn main() {
    let mut cells: Vec<(String, Sim)> = Vec::new();
    for w in ["spmv", "pagerank", "graph500"] {
        for p in ["none", "stream", "imp"] {
            cells.push((
                format!("{w}/{p}"),
                Sim::workload(w).scale(Scale::Tiny).cores(16).prefetcher(p),
            ));
        }
    }
    cells.push((
        "spmv/imp/ooo".into(),
        Sim::workload("spmv")
            .scale(Scale::Tiny)
            .cores(16)
            .prefetcher("imp")
            .core_model(CoreModel::OutOfOrder),
    ));
    cells.push((
        "pagerank/imp/tlb".into(),
        Sim::workload("pagerank")
            .scale(Scale::Tiny)
            .cores(16)
            .prefetcher("imp")
            .tlb_ways(2)
            .page_size(4096)
            .translation_policy(TranslationPolicy::DropOnMiss),
    ));
    cells.push((
        "pagerank/imp/l2tlb-walk".into(),
        Sim::workload("pagerank")
            .scale(Scale::Tiny)
            .cores(16)
            .prefetcher("imp")
            .tlb(TlbConfig::finite())
            .l2_tlb(64, 4)
            .tlb_prefetch(true)
            .walk_model(WalkModel::Cached)
            .translation_policy(TranslationPolicy::DropOnMiss),
    ));
    cells.push((
        "lsh/imp/partial".into(),
        Sim::workload("lsh")
            .scale(Scale::Tiny)
            .cores(16)
            .prefetcher("imp")
            .partial(PartialMode::NocAndDram),
    ));
    for (name, sim) in cells {
        let stats = sim.run().unwrap();
        println!("=== {name} ===");
        println!("{stats:?}");
    }
}
