//! Tour of the observability layer: histograms, the prefetch ledger,
//! epoch sampling, and the Chrome trace — all from one probed run.
//!
//! Runs SpMV with the IMP prefetcher twice, bare and with
//! `Sim::observe(ObsConfig::full(..))`, and *asserts* the probe's core
//! guarantees along the way:
//!
//! * observation never perturbs: the probed run's `SystemStats` are
//!   bit-identical to the bare run's;
//! * the timeliness ledger reconciles exactly:
//!   `fills == used + late + evicted_unused`;
//! * the emitted trace is well-formed Chrome `trace_event` JSON
//!   (structural checks here; CI re-parses the file with a real JSON
//!   parser).
//!
//! The trace is written to `IMP_TRACE_OUT` if set (CI archives it as
//! an artifact), else a temp path. Load it in Perfetto or
//! `chrome://tracing` to see demand misses, prefetch lifetimes, page
//! walks, and directory invalidations on per-core/per-slice tracks.
//!
//! ```text
//! cargo run --release --example observability_tour
//! ```

use imp::obs::ObsConfig;
use imp::prelude::*;
use imp_experiments::scale_from_env;

fn main() {
    let cores = 16;
    let sim = Sim::workload("spmv")
        .scale(scale_from_env())
        .cores(cores)
        .prefetcher("imp")
        .tlb_ways(4)
        .l2_tlb(128, 8)
        .walk_model(WalkModel::Cached);
    println!("spmv, {cores} cores, IMP prefetcher (set IMP_SCALE to change)\n");

    // Bare run first: the reference the probed run must not perturb.
    let bare = sim.run().expect("bare run");
    let (stats, report) = sim
        .clone()
        .observe(ObsConfig::full(1 << 16, 10_000))
        .run_observed()
        .expect("probed run");
    assert_eq!(stats, bare, "observation must never change timing");
    println!("probe attached: stats bit-identical to the bare run ✓");

    // Latency histograms (log2 buckets, bucket upper bounds shown).
    println!(
        "\ndemand-miss latency ({} misses):",
        report.demand_latency.count()
    );
    for (lo, hi, n) in report.demand_latency.nonzero() {
        println!("  {lo:>6} ..= {hi:<6} {n}");
    }
    assert!(report.demand_latency.count() > 0, "spmv misses in L1");
    println!(
        "page-walk latency: {} walks, p99 {:?}",
        report.walk_latency.count(),
        report.walk_latency.quantile(0.99)
    );
    assert!(report.walk_latency.count() > 0, "finite TLB walks");

    // The timeliness ledger: every tracked fill has exactly one fate.
    let t = report.ledger_total;
    println!(
        "\nprefetch ledger: issued {} fills {} = used {} + late {} + evicted-unused {}",
        t.issued, t.fills, t.used, t.late, t.evicted_unused
    );
    assert!(report.reconciles(), "ledger invariant: {t:?}");
    assert!(t.used > 0, "IMP prefetches get used on spmv");
    println!(
        "accuracy {:.1}%, timeliness {:.1}%, use-distance p50 {:?}",
        100.0 * t.accuracy(),
        100.0 * t.timeliness(),
        report.use_distance.quantile(0.5)
    );
    for class in AccessClass::ALL {
        let c = report.ledger_per_class[class.index()];
        if c.issued > 0 {
            println!(
                "  {:<9} issued {:>6} used {:>6} late {:>6}",
                class.name(),
                c.issued,
                c.used,
                c.late
            );
        }
    }
    let hot = report
        .ledger_per_pc
        .iter()
        .max_by_key(|(_, c)| c.issued)
        .expect("at least one prefetching PC");
    println!("  hottest PC {:?}: {} issued", hot.0, hot.1.issued);

    // Epoch time series: prefetch activity over simulated time.
    println!("\nepochs ({} windows of 10k cycles):", report.epochs.len());
    assert!(!report.epochs.is_empty(), "epoch sampler ran");
    for s in report.epochs.iter().take(5) {
        println!(
            "  [{:>8}, {:>8}) misses {:>5} pf_issued {:>5} pf_used {:>5}",
            s.start, s.end, s.counters.demand_misses, s.counters.pf_issued, s.counters.pf_used
        );
    }

    // The Chrome trace: structural checks, then out to disk.
    let trace = report.trace.as_ref().expect("tracing was configured");
    assert!(!trace.is_empty(), "events were recorded");
    assert_eq!(
        trace.len() as u64 + trace.dropped(),
        trace.pushes(),
        "ring accounting reconciles"
    );
    let json = trace.to_chrome_json();
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "one JSON object"
    );
    assert!(
        json.contains("\"traceEvents\""),
        "chrome trace_event format"
    );
    let out = std::env::var_os("IMP_TRACE_OUT").map_or_else(
        || std::env::temp_dir().join(format!("imp-obs-tour-{}.json", std::process::id())),
        std::path::PathBuf::from,
    );
    std::fs::write(&out, &json).expect("write trace");
    println!(
        "\ntrace: {} events ({} dropped) -> {}",
        trace.len(),
        trace.dropped(),
        out.display()
    );
    println!("\nall observability invariants hold ✓");
}
