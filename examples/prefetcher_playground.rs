//! Drive the IMP hardware model directly — no simulator — and watch it
//! learn an `A[B[i]]` pattern from a raw access stream, exactly as the
//! paper's Figure 4 walkthrough describes.
//!
//! The prefetcher is built through the plugin registry, the same path
//! the simulator uses; the concrete `Imp` model is then driven for the
//! PT-introspection tail.
//!
//! ```sh
//! cargo run --release --example prefetcher_playground
//! ```

use imp::common::stats::AccessClass;
use imp::common::{Addr, ImpConfig, Pc};
use imp::obs::CoreProbe;
use imp::prefetch::registry::{self, BuildCtx};
use imp::prefetch::{Access, Imp, L1Prefetcher, MapValueSource, PrefetchCtx, PrefetchKind};

fn main() {
    // Plant the pattern: B is a u32 index array at 0x1_0000 holding
    // scattered indices; A is an f64 array at 0x80_0000 (coeff 8 = shift 3).
    let b_base = 0x1_0000u64;
    let a_base = 0x80_0000u64;
    let b_of = |i: u64| (i.wrapping_mul(2654435761) >> 7) % 10_000;

    let mut values = MapValueSource::new();
    for i in 0..200u64 {
        values.insert(Addr::new(b_base + 4 * i), 4, b_of(i));
    }

    // Build through the registry, exactly as `imp-sim` would for core 7.
    let imp_cfg = ImpConfig::paper_default();
    let ctx = BuildCtx {
        core: 7,
        imp: &imp_cfg,
        partial: false,
    };
    let spec = "imp:seed=7".parse().expect("valid spec");
    let mut pf = registry::build(&spec, &ctx).expect("imp is a stock factory");
    println!(
        "registry knows: {}",
        registry::registered_names().join(", ")
    );

    let probe = CoreProbe::disabled();
    println!("i | B[i]   | emitted prefetches");
    for i in 0..40u64 {
        let mut emitted = Vec::new();
        // The loop body: load B[i] (stream), then load A[B[i]] (indirect miss).
        let mut ctx = PrefetchCtx::new(
            Pc::new(1),
            AccessClass::Other,
            &mut values,
            &mut emitted,
            &probe,
        );
        pf.on_access_ctx(
            Access::load_hit(Pc::new(1), Addr::new(b_base + 4 * i), 4),
            &mut ctx,
        );
        let mut ctx = PrefetchCtx::new(
            Pc::new(2),
            AccessClass::Other,
            &mut values,
            &mut emitted,
            &probe,
        );
        pf.on_access_ctx(
            Access::load_miss(Pc::new(2), Addr::new(a_base + 8 * b_of(i)), 8),
            &mut ctx,
        );
        let rendered: Vec<String> = emitted
            .iter()
            .map(|r| match r.kind {
                PrefetchKind::Sequential => format!("stream {:#x}", r.addr.raw()),
                PrefetchKind::Indirect { pt, hop } => {
                    format!("indirect[pt{pt} hop{hop}] {:#x}", r.addr.raw())
                }
                PrefetchKind::TranslationOnly { hop } => {
                    format!("xlate[hop{hop}] {:#x}", r.addr.raw())
                }
            })
            .collect();
        println!("{i:2} | {:6} | {}", b_of(i), rendered.join(", "));
    }
    let s = pf.stats();
    println!(
        "\npatterns detected: {}   indirect prefetches: {}   stream prefetches: {}",
        s.patterns_detected, s.indirect_prefetches, s.stream_prefetches
    );

    // PT introspection needs the concrete model, so replay the stream on
    // a directly constructed `Imp` (same config, same seed).
    let mut imp = Imp::new(imp_cfg.clone(), false, 7);
    let mut scratch = Vec::new();
    for i in 0..40u64 {
        scratch.clear();
        let mut ctx = PrefetchCtx::new(
            Pc::new(1),
            AccessClass::Other,
            &mut values,
            &mut scratch,
            &probe,
        );
        imp.on_access_ctx(
            Access::load_hit(Pc::new(1), Addr::new(b_base + 4 * i), 4),
            &mut ctx,
        );
        let mut ctx = PrefetchCtx::new(
            Pc::new(2),
            AccessClass::Other,
            &mut values,
            &mut scratch,
            &probe,
        );
        imp.on_access_ctx(
            Access::load_miss(Pc::new(2), Addr::new(a_base + 8 * b_of(i)), 8),
            &mut ctx,
        );
    }
    for slot in 0..16 {
        if let Some((shift, base, ty)) = imp.pattern(slot) {
            println!(
                "PT[{slot}]: shift {shift} (coeff {}), base {base:#x}, {ty:?} — planted base was {a_base:#x}",
                if shift >= 0 { (1i64 << shift).to_string() } else { "1/8".to_string() },
            );
        }
    }
}
