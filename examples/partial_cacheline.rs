//! Partial cacheline accessing (paper Section 4): watch the Granularity
//! Predictor converge and the NoC/DRAM traffic drop on a workload with
//! no spatial locality (LSH filtering).
//!
//! ```sh
//! cargo run --release --example partial_cacheline
//! ```

use imp::common::{LineAddr, SectorMask};
use imp::prefetch::{Gp, GpDecision};
use imp::prelude::*;
use imp_experiments::scale_from_env;

fn main() {
    // Part 1: the GP in isolation — single-sector touches converge to
    // 1-sector (8-byte) prefetches by Algorithm 1.
    let mut gp = Gp::new(16, 4, 1);
    println!("Granularity Predictor, single-sector touch pattern:");
    for n in 0..400u64 {
        let line = LineAddr::from_line_number(n);
        gp.on_indirect_prefetch(0, line);
        gp.on_demand_touch(line, SectorMask::from_bits(0b0000_1000));
        gp.on_eviction(line);
        let d = gp.decision(0);
        if n % 25 == 0 || d != GpDecision::FullLine {
            println!("  after {n:3} prefetched lines: {d:?}");
            if d != GpDecision::FullLine {
                break;
            }
        }
    }

    // Part 2: system level — traffic with full lines vs partial access,
    // swept across the partial-mode axis in one call.
    let cores = 64;
    println!("\nlsh, {cores} cores:");
    let results = Sweep::from(
        Sim::workload("lsh")
            .cores(cores)
            .scale(scale_from_env())
            .prefetcher("imp"),
    )
    .partials([
        PartialMode::Off,
        PartialMode::NocOnly,
        PartialMode::NocAndDram,
    ])
    .run()
    .expect("paper configs run");
    let (full, both) = (&results[0].stats, &results[2].stats);
    println!(
        "{:28} {:>10} {:>14} {:>12} {:>10}",
        "config", "runtime", "NoC flit-hops", "DRAM bytes", "partial pf"
    );
    for (label, r) in [
        "IMP full lines",
        "IMP + partial NoC",
        "IMP + partial NoC+DRAM",
    ]
    .iter()
    .zip(&results)
    {
        println!(
            "{label:28} {:>10} {:>14} {:>12} {:>10}",
            r.stats.runtime,
            r.stats.traffic.noc_flit_hops,
            r.stats.traffic.dram_bytes(),
            r.stats.prefetch_total().partial_prefetches,
        );
    }
    println!(
        "\nNoC traffic reduction: {:.1}%   DRAM traffic change: {:.1}%",
        100.0 * (1.0 - both.traffic.noc_flit_hops as f64 / full.traffic.noc_flit_hops as f64),
        100.0 * (1.0 - both.traffic.dram_bytes() as f64 / full.traffic.dram_bytes() as f64),
    );
}
