//! Core-count scaling sweep (the paper's 16 / 64 / 256-core panels):
//! how the IMP speedup over Baseline evolves as bandwidth per core
//! shrinks (total L2 and DRAM bandwidth scale with sqrt(N), Section 5.1).
//!
//! ```sh
//! cargo run --release --example sweep_cores [workload]
//! ```

use imp::experiments::{run, Config};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "pagerank".to_string());
    println!("{app}: scaling from 16 to 256 cores (IMP_SCALE inputs)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "cores", "Base rt", "IMP rt", "PerfPref rt", "IMP/Base", "IMP/Perf"
    );
    for cores in [16u32, 64, 256] {
        let base = run(&app, cores, Config::Base);
        let imp = run(&app, cores, Config::Imp);
        let perf = run(&app, cores, Config::PerfPref);
        println!(
            "{cores:>6} {:>12} {:>12} {:>12} {:>9.2} {:>9.2}",
            base.runtime,
            imp.runtime,
            perf.runtime,
            base.runtime as f64 / imp.runtime as f64,
            imp.runtime as f64 / perf.runtime as f64,
        );
    }
    println!("\n(expect the IMP/Base speedup to shrink as core count grows:");
    println!(" bandwidth per core drops with sqrt(N), leaving less latency to hide — Fig 9a-c)");
}
