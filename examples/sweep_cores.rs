//! Core-count scaling sweep (the paper's 16 / 64 / 256-core panels):
//! how the IMP speedup over Baseline evolves as bandwidth per core
//! shrinks (total L2 and DRAM bandwidth scale with sqrt(N), Section 5.1).
//!
//! The whole grid — 3 prefetcher configs x 3 core counts — fans across
//! threads through the `Sweep` API and comes back in deterministic order.
//!
//! ```sh
//! cargo run --release --example sweep_cores [workload]
//! ```

use imp::prelude::*;
use imp::sim::{Sim, Sweep};
use imp_experiments::scale_from_env;

fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pagerank".to_string());
    println!("{app}: scaling from 16 to 256 cores (IMP_SCALE inputs)\n");

    let results = Sweep::from(Sim::workload(&app).scale(scale_from_env()))
        .cores([16, 64, 256])
        .prefetchers(["stream", "imp"])
        .run()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
    // Perfect Prefetching is a mem-mode, not a prefetcher, so it sweeps
    // as its own single-axis grid.
    let perf = Sweep::from(
        Sim::workload(&app)
            .scale(scale_from_env())
            .mem_mode(MemMode::PerfectPrefetch),
    )
    .cores([16, 64, 256])
    .run()
    .expect("perfect-prefetch sweep");

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "cores", "Base rt", "IMP rt", "PerfPref rt", "IMP/Base", "IMP/Perf"
    );
    for (pair, pp) in results.chunks(2).zip(&perf) {
        let (base, imp) = (&pair[0].stats, &pair[1].stats);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>9.2} {:>9.2}",
            pair[0].cell.cores,
            base.runtime,
            imp.runtime,
            pp.stats.runtime,
            base.runtime as f64 / imp.runtime as f64,
            imp.runtime as f64 / pp.stats.runtime as f64,
        );
    }
    println!("\n(expect the IMP/Base speedup to shrink as core count grows:");
    println!(" bandwidth per core drops with sqrt(N), leaving less latency to hide — Fig 9a-c)");
}
