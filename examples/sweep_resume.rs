//! Resumable sweeps through the content-addressed result store.
//!
//! Runs a fig-9-style prefetcher grid against a store, re-runs it warm
//! (every cell served from disk, nothing simulated), then *extends* the
//! grid with one more prefetcher axis value — only the new cells
//! simulate, and the merged table is bit-identical to running the
//! extended grid from scratch without a store.
//!
//! The store lives at `IMP_STORE_DIR` if set (point two invocations at
//! the same directory and the second simulates zero cells — the CI
//! smoke test does exactly this), else a fresh temp directory.
//!
//! ```text
//! cargo run --release --example sweep_resume
//! ```

use imp::prelude::*;
use imp::store::ResultStore;

fn grid(prefetchers: &[&str]) -> Sweep {
    Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
        .workloads(["spmv", "pagerank"])
        .prefetchers(prefetchers.to_vec())
        .cores([16])
}

fn main() {
    let root = std::env::var_os("IMP_STORE_DIR").map_or_else(
        || std::env::temp_dir().join(format!("imp-sweep-resume-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let store = ResultStore::open(&root).expect("open result store");
    println!("store: {}", root.display());
    let mut simulated_total = 0;
    let mut cells_total = 0;

    // Cold pass (warm if a previous invocation shares the store).
    let base = grid(&["none", "stream", "imp"]);
    let n = base.cells().len();
    let cold = base.run_with(&store, |_| {}).expect("base grid");
    assert_eq!(cold.cached + cold.simulated, n, "every cell accounted");
    assert_eq!(cold.failed, 0);
    println!(
        "base grid:     simulated {} of {n} ({} cached)",
        cold.simulated, cold.cached
    );
    simulated_total += cold.simulated;
    cells_total += n;

    // Warm re-run: the store serves everything, bit-identically.
    let warm = base.run_with(&store, |_| {}).expect("warm grid");
    assert_eq!(
        (warm.cached, warm.simulated),
        (n, 0),
        "warm re-run simulates nothing"
    );
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert_eq!(
            c.as_ref().unwrap().stats,
            w.as_ref().unwrap().stats,
            "warm result drifted"
        );
    }
    println!("warm re-run:   simulated 0 of {n} (bit-identical)");
    cells_total += n;

    // Extend the prefetcher axis: only the ghb cells are new.
    let extended = grid(&["none", "stream", "imp", "ghb"]);
    let m = extended.cells().len();
    let new_cells = m - n;
    let ext = extended.run_with(&store, |_| {}).expect("extended grid");
    assert_eq!(ext.cached + ext.simulated, m);
    assert_eq!(ext.failed, 0);
    assert!(
        ext.simulated <= new_cells,
        "extending an axis must only simulate the new cells ({} > {new_cells})",
        ext.simulated
    );
    println!(
        "extended grid: simulated {} of {m} ({new_cells} cells are new)",
        ext.simulated
    );
    simulated_total += ext.simulated;
    cells_total += m;

    // The merged (store-served) table matches a from-scratch run.
    let scratch = extended.run().expect("from-scratch grid");
    for (s, f) in ext.results.iter().zip(&scratch) {
        let s = s.as_ref().unwrap();
        assert_eq!(s.cell, f.cell);
        assert_eq!(
            s.stats, f.stats,
            "store-merged grid drifted from scratch run"
        );
    }
    println!("merged grid is bit-identical to a from-scratch run of all {m} cells");
    println!("resume: simulated {simulated_total} of {cells_total} cell-runs this invocation");
}
