//! A user-defined prefetcher plugged into the simulator from the
//! outside: no `imp-sim` (or any core crate) changes, just a registry
//! registration and a spec string.
//!
//! The toy model is a tagless next-N-lines prefetcher: every L1 miss
//! fetches the following `degree` cache lines. It is deliberately naive —
//! the point is the plumbing, not the policy.
//!
//! ```sh
//! cargo run --release --example custom_prefetcher [workload]
//! ```

use imp::common::{LineAddr, SectorMask};
use imp::prefetch::registry::{self, RegistryError};
use imp::prefetch::{Access, L1Prefetcher, PrefetchKind, PrefetchRequest, PrefetcherStats};
use imp::prelude::*;

/// Next-N-lines: on every miss, prefetch the `degree` following lines.
struct NextLines {
    degree: u64,
    stats: PrefetcherStats,
}

impl L1Prefetcher for NextLines {
    // The context-based hook is the current surface: `ctx` bundles the
    // index-value source, the output buffer (`ctx.emit`), and the
    // observability probe. Plugins written against the older
    // `on_access(access, values, out)` hook still compile — the trait
    // defaults bridge the two — but new code should start here.
    fn on_access_ctx(&mut self, access: Access, ctx: &mut PrefetchCtx<'_>) {
        if !access.miss {
            return;
        }
        let line = LineAddr::containing(access.addr);
        for d in 1..=self.degree {
            self.stats.stream_prefetches += 1;
            ctx.emit(PrefetchRequest {
                pc: access.pc,
                addr: LineAddr::from_line_number(line.number() + d).base(),
                sectors: SectorMask::FULL_L1,
                exclusive: false,
                kind: PrefetchKind::Sequential,
            });
        }
    }

    // Optional: managed runs (`Sim::manager`) deliver per-epoch
    // feedback here; a plugin that ignores it works unchanged.
    fn on_feedback(&mut self, _feedback: &Feedback) -> Control {
        Control::none()
    }

    fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }
}

fn main() {
    // One-line integration: name it, build it from the spec's params.
    registry::register_fn("next-lines", |spec, _ctx| {
        let degree = match spec.get("degree") {
            None => 2,
            Some(v) => v.as_u64().ok_or_else(|| RegistryError::InvalidParam {
                prefetcher: spec.name.clone(),
                param: "degree".to_string(),
                reason: format!("expected a non-negative integer, got {v}"),
            })?,
        };
        Ok(Box::new(NextLines {
            degree,
            stats: PrefetcherStats::default(),
        }))
    })
    .expect("name is free");

    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "spmv".to_string());
    println!("{app}, 16 cores: stock prefetchers vs the plugged-in next-lines\n");
    let results = Sweep::from(
        Sim::workload(&app)
            .cores(16)
            .scale(imp_experiments::scale_from_env()),
    )
    .prefetchers([
        "none",
        "stream",
        "next-lines:degree=1",
        "next-lines:degree=4",
        "imp",
        "hybrid:components=stream+imp",
    ])
    .run()
    .expect("all cells run");

    let base = results[0].stats.runtime as f64;
    println!(
        "{:32} {:>12} {:>9} {:>9} {:>9}",
        "prefetcher", "runtime", "speedup", "cov", "acc"
    );
    for r in &results {
        println!(
            "{:32} {:>12} {:>9.2} {:>9.2} {:>9.2}",
            r.cell.prefetcher.to_string(),
            r.stats.runtime,
            base / r.stats.runtime as f64,
            r.stats.coverage(),
            r.stats.accuracy(),
        );
    }
    println!("\n(next-lines helps streams a little and pollutes on scattered indirects;");
    println!(" IMP's pattern-aware prefetches are why the paper beats spatial-only designs)");
}
