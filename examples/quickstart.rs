//! Quickstart: run one workload on the simulated 16-core system with and
//! without IMP and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use imp::prelude::*;
use imp_experiments::scale_from_env;

fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "spmv".to_string());
    let cores = 16;
    println!("workload: {app}, {cores} cores, paper-default system (Table 1)");

    let base = Sim::workload(&app).cores(cores).scale(scale_from_env());
    let configs = [
        ("Baseline (stream prefetcher)", base.clone()),
        ("IMP (stream + indirect)", base.clone().prefetcher("imp")),
        (
            "IMP + partial cachelines",
            base.clone()
                .prefetcher("imp")
                .partial(PartialMode::NocAndDram),
        ),
    ];

    let mut results = Vec::new();
    for (label, sim) in configs {
        let stats = sim.run().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        results.push((label, stats));
    }

    let base_runtime = results[0].1.runtime as f64;
    for (label, s) in &results {
        println!(
            "{label:32} runtime {:>10} cycles  speedup {:>5.2}x  coverage {:>5.2}  accuracy {:>5.2}",
            s.runtime,
            base_runtime / s.runtime as f64,
            s.coverage(),
            s.accuracy(),
        );
    }
    let p = results[1].1.prefetch_total();
    println!(
        "IMP detected {} indirect patterns and issued {} indirect prefetches",
        p.patterns_detected, p.issued_indirect
    );
}
