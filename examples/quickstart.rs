//! Quickstart: run one workload on the simulated 16-core system with and
//! without IMP and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use imp::prelude::*;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "spmv".to_string());
    let cores = 16;
    let params = WorkloadParams::new(cores as usize, Scale::Small);
    let workload = by_name(&app).unwrap_or_else(|| {
        eprintln!("unknown workload {app}; try pagerank/tri_count/graph500/sgd/lsh/spmv/symgs");
        std::process::exit(1);
    });

    println!("workload: {app}, {cores} cores, paper-default system (Table 1)");

    let mut results = Vec::new();
    for (label, cfg) in [
        ("Baseline (stream prefetcher)", SystemConfig::paper_default(cores)),
        (
            "IMP (stream + indirect)",
            SystemConfig::paper_default(cores).with_prefetcher(PrefetcherKind::Imp),
        ),
        (
            "IMP + partial cachelines",
            SystemConfig::paper_default(cores)
                .with_prefetcher(PrefetcherKind::Imp)
                .with_partial(PartialMode::NocAndDram),
        ),
    ] {
        let built = workload.build(&params);
        let stats = System::new(cfg, built.program, built.mem).run();
        results.push((label, stats));
    }

    let base_runtime = results[0].1.runtime as f64;
    for (label, s) in &results {
        println!(
            "{label:32} runtime {:>10} cycles  speedup {:>5.2}x  coverage {:>5.2}  accuracy {:>5.2}",
            s.runtime,
            base_runtime / s.runtime as f64,
            s.coverage(),
            s.accuracy(),
        );
    }
    let p = results[1].1.prefetch_total();
    println!(
        "IMP detected {} indirect patterns and issued {} indirect prefetches",
        p.patterns_detected, p.issued_indirect
    );
}
