//! TLB-reach sensitivity: how IMP's coverage and speedup respond to
//! address translation — the scenario axis the seed simulator ignored.
//!
//! IMP's indirect prefetches are computed from *data values*, so they
//! land on arbitrary virtual pages; with a finite dTLB they are only
//! issuable after translation. This sweep varies TLB reach (page size ×
//! ways) and the prefetch-translation policy on two indirect-heavy
//! kernels, printing prefetch drops / walk cycles next to coverage —
//! and exports the grid as CSV and JSON.
//!
//! ```sh
//! cargo run --release --example tlb_sensitivity [workload] [--json|--csv]
//! ```

use imp::prelude::*;
use imp::sim::{Sim, Sweep};
use imp_experiments::{scale_from_env, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "pagerank".to_string());

    let base = Sim::workload(&app)
        .scale(scale_from_env())
        .prefetcher("imp");
    let results = Sweep::from(base.clone())
        .page_sizes([4 << 10, 64 << 10, 2 << 20]) // 4 KB, 64 KB, 2 MB
        .tlb_ways([2, 8])
        .translation_policies([
            TranslationPolicy::DropOnMiss,
            TranslationPolicy::NonBlockingWalk,
        ])
        .run()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });

    // Ideal-translation reference — the seed simulator's numbers — run
    // on the *same generated input* as the sweep cells (Sweep derives a
    // per-cell seed from the template seed and the cell coordinates).
    let ideal = base.seed(results[0].cell.seed).run().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    let mut t = Table::new(
        format!("{app}: TLB reach vs IMP, normalized to ideal translation"),
        vec![
            "reach KB",
            "runtime x",
            "coverage",
            "drops",
            "pf walks",
            "walk cyc",
        ],
    );
    // Reach 0 is the "no TLB modeled" sentinel: the ideal row's label
    // carries the meaning, and both CSV and JSON stay cleanly numeric.
    t.row("ideal", vec![0.0, 1.0, ideal.coverage(), 0.0, 0.0, 0.0]);
    for r in &results {
        let tlb = r.cell.tlb;
        let vm = r.stats.tlb_total();
        let label = format!(
            "{}K/{}w/{}",
            tlb.page_bytes >> 10,
            tlb.ways,
            tlb.policy.name()
        );
        t.row(
            &label,
            vec![
                (tlb.reach_bytes() >> 10) as f64,
                r.stats.runtime as f64 / ideal.runtime.max(1) as f64,
                r.stats.coverage(),
                vm.prefetch_drops as f64,
                vm.prefetch_walks as f64,
                vm.walk_cycles as f64,
            ],
        );
    }

    if args.iter().any(|a| a == "--json") {
        println!("{}", t.to_json());
    } else if args.iter().any(|a| a == "--csv") {
        println!("{}", t.to_csv());
    } else {
        println!("{t}");
        println!("(expect: small reach + DropOnMiss loses coverage to prefetch drops;");
        println!(" NonBlockingWalk buys coverage back for walk cycles; bigger pages");
        println!(" mean fewer, shallower walks — the huge-page lever.)");
    }
}
