//! Huge-page reach: what `madvise(MADV_HUGEPAGE)` on the hot arrays
//! buys IMP back when TLB reach is the binding constraint.
//!
//! IMP's value-derived `A[B[i]]` prefetches scatter across pages, so a
//! small dTLB loses demand time to page walks *and* drops prefetches
//! whose pages translation has never seen. Page size is a per-region
//! property here: this example keeps a deliberately reach-starved dTLB
//! (2 x 4 KB entries = 8 KB reach) and moves region placements from
//! all-4 KB through hot-arrays-on-2 MB and an `Auto` threshold to
//! everything-on-2 MB, printing dTLB hit rate, walk depth and coverage
//! as reach recovers.
//!
//! ```sh
//! cargo run --release --example hugepage_reach [workload] [--json|--csv]
//! ```
//!
//! Expected shape: 4 KB pages thrash the tiny dTLB (low hit rate, deep
//! walks, prefetch drops under `DropOnMiss`). Promoting the hot arrays
//! — the ones IMP's indirect predictions target — recovers the reach:
//! a 2 MB page holds 512 entries' worth of 4 KB reach in one dTLB slot.
//! Promotion is page-granular like transparent huge pages, so at small
//! working sets the hot arrays' huge pages also cover their neighbors
//! and the hot-2M / all-2M rows converge; the `Auto` row promotes only
//! regions past a size threshold, resolved per scale. Huge-page walks
//! are also one radix level shallower, so surviving misses get cheaper.

use imp::prelude::*;
use imp::sim::{Sim, Sweep};
use imp_experiments::{scale_from_env, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "pagerank".to_string());

    // A reach-starved dTLB: 2 entries over 4 KB pages (8 KB), the
    // conservative DropOnMiss translation policy, default huge-page
    // sub-TLB (32 x 2 MB entries).
    let mut tlb = TlbConfig::finite();
    tlb.sets = 1;
    tlb.ways = 2;
    let scale = scale_from_env();
    let base = Sim::workload(&app).scale(scale).prefetcher("imp").tlb(tlb);

    // Hot arrays derived from the workload's real indirect access
    // stream (the regions IMP's value-derived prefetches land in).
    let hot = by_name(&app)
        .map(|w| w.build(&WorkloadParams::new(1, scale)).hot_regions())
        .unwrap_or_default();
    let hot_set: Vec<(String, PagePolicy)> = hot
        .iter()
        .map(|name| (name.to_string(), PagePolicy::Huge2M))
        .collect();
    let placements: Vec<(&str, Vec<(String, PagePolicy)>)> = vec![
        ("all-4K", vec![]),
        ("hot-2M", hot_set),
        (
            "auto>=64K",
            vec![(
                "*".to_string(),
                PagePolicy::Auto {
                    threshold_bytes: 64 << 10,
                },
            )],
        ),
        ("all-2M", vec![("*".to_string(), PagePolicy::Huge2M)]),
    ];

    let results = Sweep::from(base)
        .page_policies(placements.iter().map(|(_, set)| set.clone()))
        .run()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });

    let mut t = Table::new(
        format!("{app}: per-region huge pages vs an 8 KB-reach dTLB (DropOnMiss)"),
        vec![
            "hit rate",
            "misses",
            "lvl/walk",
            "drops",
            "coverage",
            "runtime x",
        ],
    );
    let base_runtime = results[0].stats.runtime.max(1) as f64;
    for ((label, _), r) in placements.iter().zip(&results) {
        let d = r.stats.tlb_total();
        let walks = d.misses + d.prefetch_walks;
        t.row(
            label,
            vec![
                d.hit_rate(),
                d.misses as f64,
                if walks == 0 {
                    0.0
                } else {
                    d.walk_levels as f64 / walks as f64
                },
                d.prefetch_drops as f64,
                r.stats.coverage(),
                r.stats.runtime as f64 / base_runtime,
            ],
        );
    }

    if args.iter().any(|a| a == "--json") {
        println!("{}", t.to_json());
    } else if args.iter().any(|a| a == "--csv") {
        println!("{}", t.to_csv());
    } else {
        println!("{t}");
        println!("(expect: all-4K thrashes the 2-entry dTLB; promoting the hot arrays");
        println!(
            " — {} — recovers reach and coverage; all-2M",
            hot.join(", ")
        );
        println!(" finishes the job with walks one level shallower.)");
    }

    // The claim this example exists to demonstrate, kept honest on
    // every run and every workload: moving the hot arrays to 2 MB
    // pages must improve TLB coverage (hit rate up, misses down)
    // without regressing runtime or dropping more prefetches. A
    // workload with no indirect-target arrays (the `dense` control)
    // has nothing to promote in its hot-2M row, so the comparison is
    // judged on the all-2M placement instead.
    let all4k = &results[0].stats;
    let hot2m = if hot.is_empty() {
        &results[3].stats
    } else {
        &results[1].stats
    };
    assert!(
        hot2m.tlb_total().misses < all4k.tlb_total().misses,
        "huge hot arrays must shrink the dTLB miss stream ({} vs {})",
        hot2m.tlb_total().misses,
        all4k.tlb_total().misses
    );
    assert!(
        hot2m.tlb_total().hit_rate() > all4k.tlb_total().hit_rate(),
        "and raise the dTLB hit rate ({:.4} vs {:.4})",
        hot2m.tlb_total().hit_rate(),
        all4k.tlb_total().hit_rate()
    );
    assert!(
        hot2m.runtime <= all4k.runtime,
        "without regressing runtime ({} vs {})",
        hot2m.runtime,
        all4k.runtime
    );
    assert!(
        hot2m.tlb_total().prefetch_drops <= all4k.tlb_total().prefetch_drops,
        "or dropping more prefetches ({} vs {})",
        hot2m.tlb_total().prefetch_drops,
        all4k.tlb_total().prefetch_drops
    );
    // Prefetch *coverage* is a ratio of captured to total would-be
    // misses, and the all-4K denominator is inflated by TLB-thrash
    // misses — the metric is not monotone in placement on every
    // kernel. It is on the headline workload, so pin it there.
    if app == "pagerank" {
        assert!(
            hot2m.coverage() >= all4k.coverage() - 1e-9,
            "or losing prefetch coverage ({:.4} vs {:.4})",
            hot2m.coverage(),
            all4k.coverage()
        );
    }
    // The all-2M run demonstrates the shallower-walk lever end to end.
    let d = results[3].stats.tlb_total();
    assert_eq!(
        d.walk_levels,
        3 * (d.misses + d.prefetch_walks),
        "every all-2M walk is exactly one level shallower than 4 KB's four"
    );
}
