//! Record a workload to an `.imptrace` file, replay it, and share one
//! artifact across a prefetcher comparison.
//!
//! ```sh
//! cargo run --release --example trace_record
//! ```

use imp::prelude::*;
use imp::workloads::BuiltArtifact;

fn main() {
    let sim = Sim::workload("pagerank").scale(Scale::Tiny).cores(16);

    // Build the workload once: real PageRank over a synthetic graph,
    // emitting op streams and the index arrays IMP will read.
    let artifact = sim.build_artifact().expect("stock workloads build");
    println!(
        "built pagerank: {} cores, {} instructions, {} mapped pages, result {:.4}",
        artifact.program().cores(),
        artifact.program().total_instructions(),
        artifact.mem().mapped_pages(),
        artifact.result(),
    );

    // Record it. The file carries the op streams, the functional-memory
    // image, and the algorithm result — everything a replay needs.
    let path = std::env::temp_dir().join("pagerank-demo.imptrace");
    artifact.save(&path).expect("writable temp dir");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("recorded {} ({bytes} bytes)", path.display());

    // Replay through the registry: `trace:<path>` is a workload name.
    let replayed = Sim::workload(format!("trace:{}", path.display()))
        .cores(16)
        .prefetcher("imp")
        .run()
        .expect("replay runs");
    let live = sim.clone().prefetcher("imp").run().expect("live run");
    println!(
        "replayed runtime {} vs live runtime {} — identical: {}",
        replayed.runtime,
        live.runtime,
        replayed == live,
    );

    // Share one artifact across a comparison grid: no rebuilds, same
    // input for every prefetcher (the comparison the paper's figures
    // make).
    println!("\nprefetcher comparison over the shared artifact:");
    for spec in ["none", "stream", "imp"] {
        let stats = sim
            .clone()
            .prefetcher(spec)
            .run_on(&artifact)
            .expect("shared-artifact run");
        println!(
            "  {spec:>6}: runtime {:>8} cycles, throughput {:.3} IPC",
            stats.runtime,
            stats.throughput(),
        );
    }

    // Loading gets the same artifact back, bit for bit.
    let loaded = BuiltArtifact::load(&path).expect("file round-trips");
    assert_eq!(loaded.result(), artifact.result());
    std::fs::remove_file(&path).ok();
    println!("\nround-trip verified; removed {}", path.display());
}
