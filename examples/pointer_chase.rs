//! Depth-k pointer chasing: what chained indirection buys IMP.
//!
//! The `hashjoin` kernel probes a three-table chain per lookup —
//! `bucket[probe[i]]`, then `entry[...]`, then `payload[...]` — so a
//! depth-1 detector (the paper's single-level IMP) only ever covers the
//! first hop: hops 2 and 3 miss all the way to DRAM. `imp:depth=3`
//! walks the chain ahead of the demand stream, prefetching every hop
//! from the values the previous hop returns.
//!
//! This example runs the same generated input at `imp:depth=1` and
//! `imp:depth=3` and *asserts* the chained detector's headline claim:
//! deeper chasing must win on prefetch coverage AND runtime. The
//! per-hop timeliness ledger shows where the win comes from (hop-2/3
//! fills that depth 1 cannot issue), and the per-hop ledger invariant
//! `fills == used + late + evicted_unused` is checked on every run.
//!
//! ```text
//! cargo run --release --example pointer_chase [--json]
//! IMP_SCALE=tiny cargo run --release --example pointer_chase
//! ```

use imp::obs::ObsConfig;
use imp::prelude::*;
use imp_experiments::scale_from_env;

fn main() {
    let scale = scale_from_env();
    let cores = 16;
    let base = Sim::workload("hashjoin").scale(scale).cores(cores);
    println!("hashjoin (3-hop chain), {cores} cores (set IMP_SCALE to change)\n");

    let run = |depth: u32| {
        base.clone()
            .prefetcher(format!("imp:depth={depth}").as_str())
            .observe(ObsConfig::metrics())
            .run_observed()
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            })
    };

    let depths = [1u32, 2, 3];
    let results: Vec<_> = depths.iter().map(|&d| run(d)).collect();

    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>9}  per-hop accuracy (issued)",
        "depth", "runtime", "coverage", "accuracy", "late"
    );
    for (&d, (stats, report)) in depths.iter().zip(&results) {
        assert!(
            report.reconciles_per_hop(),
            "per-hop ledger invariant at depth {d}"
        );
        let s = report.summary();
        let hops: Vec<String> = s
            .per_hop
            .iter()
            .enumerate()
            .filter(|(_, c)| c.issued > 0)
            .map(|(h, c)| format!("hop{h} {:.2} ({})", c.accuracy(), c.issued))
            .collect();
        let t = report.ledger_total;
        println!(
            "{:<8} {:>10} {:>9.1}% {:>8.1}% {:>9}  {}",
            d,
            stats.runtime,
            100.0 * stats.coverage(),
            100.0 * t.accuracy(),
            t.late,
            hops.join("  ")
        );
    }

    let (d1, _) = &results[0];
    let (d3, r3) = &results[2];

    // The headline claim, kept honest on every run: walking the chain
    // ahead of the demand stream must beat the single-level detector on
    // coverage AND runtime — not trade one for the other.
    assert!(
        d3.coverage() > d1.coverage(),
        "depth 3 must raise prefetch coverage ({:.4} vs {:.4})",
        d3.coverage(),
        d1.coverage()
    );
    assert!(
        d3.runtime < d1.runtime,
        "and shorten the run ({} vs {} cycles)",
        d3.runtime,
        d1.runtime
    );
    // And the win must come from the deep hops: depth 3 issues
    // prefetches at hops the depth-1 detector never reaches.
    let deep_issued: u64 = r3.summary().per_hop[2..].iter().map(|c| c.issued).sum();
    assert!(
        deep_issued > 0,
        "depth 3 issues hop-2+ prefetches the single-level detector cannot"
    );

    println!(
        "\ndepth 3 vs depth 1: coverage {:+.1} pts, runtime x{:.3} ✓",
        100.0 * (d3.coverage() - d1.coverage()),
        d3.runtime as f64 / d1.runtime as f64
    );
}
