//! Adaptive prefetcher management: the control plane closing the loop
//! over the observability ledger.
//!
//! The setup is deliberately traffic-bound: an over-aggressive stream
//! prefetcher (`distance=32`) on PageRank's pointer-chasing access
//! pattern issues far more lines than the kernel ever touches, and the
//! banked DDR3-like DRAM model makes that waste *cost something* —
//! doomed prefetches occupy banks that demand misses then queue behind.
//! A `throttle` manager watches the per-epoch feedback (accuracy, evict
//! rate) and clamps the degree / masks the cold PCs whenever accuracy
//! drops below its floor, recovering the wasted bandwidth. A `static`
//! manager observes but never intervenes — by construction it is
//! *bit-identical* to running unmanaged, which this example asserts.
//!
//! ```sh
//! cargo run --release --example adaptive_manager
//! ```

use imp::prelude::*;

fn main() {
    let scale = imp_experiments::scale_from_env();
    let base = Sim::workload("pagerank")
        .cores(16)
        .scale(scale)
        .prefetcher("stream:distance=32")
        .dram(imp::common::config::DramModelKind::Ddr3);

    println!("pagerank, 16 cores, DDR3, stream:distance=32 (deliberately over-aggressive)\n");
    let results = Sweep::from(base)
        .managers(["none", "static", "throttle:accuracy_floor=0.4,epoch=2000"])
        .run()
        .expect("all cells run");

    println!(
        "{:36} {:>12} {:>14} {:>9} {:>9}",
        "manager", "runtime", "dram bytes", "acc", "cov"
    );
    for r in &results {
        let label = r
            .cell
            .manager
            .as_ref()
            .map_or_else(|| "(unmanaged)".to_string(), |m| m.to_string());
        println!(
            "{:36} {:>12} {:>14} {:>9.2} {:>9.2}",
            label,
            r.stats.runtime,
            r.stats.traffic.dram_bytes(),
            r.stats.accuracy(),
            r.stats.coverage(),
        );
    }

    let unmanaged = &results[0].stats;
    let static_mgr = &results[1].stats;
    let throttled = &results[2].stats;

    // A `static` manager runs the whole feedback loop — ledger, epoch
    // distillation, policy callback — but always answers "no change",
    // so it must reproduce the unmanaged run bit for bit.
    assert_eq!(
        static_mgr, unmanaged,
        "manager=static must be bit-identical to unmanaged"
    );

    // Throttling wins on a traffic-bound cell: less DRAM traffic (the
    // masked PCs stop issuing doomed prefetches) without a runtime
    // regression.
    assert!(
        throttled.traffic.dram_bytes() < unmanaged.traffic.dram_bytes(),
        "throttle must cut DRAM traffic: {} vs {}",
        throttled.traffic.dram_bytes(),
        unmanaged.traffic.dram_bytes()
    );
    assert!(
        throttled.runtime <= unmanaged.runtime,
        "throttle must not slow the run down: {} vs {}",
        throttled.runtime,
        unmanaged.runtime
    );
    println!(
        "\nthrottle saved {:.1}% DRAM traffic at {:.2}x runtime (static == unmanaged, bit-identical)",
        100.0 * (1.0 - throttled.traffic.dram_bytes() as f64 / unmanaged.traffic.dram_bytes() as f64),
        throttled.runtime as f64 / unmanaged.runtime as f64,
    );
}
