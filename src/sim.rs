//! The fluent simulation facade: build and run simulations (and whole
//! parameter sweeps) in one chained expression.
//!
//! [`Sim`] is the front door to the simulator. It names a workload,
//! takes the paper's knobs as chainable setters, resolves the prefetcher
//! through the plugin registry ([`crate::prefetch::registry`]), and runs:
//!
//! ```
//! use imp::sim::Sim;
//! use imp::prelude::*;
//!
//! let base = Sim::workload("spmv").scale(Scale::Tiny).cores(16).run().unwrap();
//! let imp = Sim::workload("spmv")
//!     .scale(Scale::Tiny)
//!     .cores(16)
//!     .prefetcher("imp")
//!     .partial(PartialMode::NocAndDram)
//!     .run()
//!     .unwrap();
//! assert!(imp.runtime <= base.runtime);
//! ```
//!
//! [`Sweep`] fans a config grid (workloads × cores × prefetchers ×
//! partial modes) across threads, with per-cell seeds derived
//! deterministically from the cell order — results are identical
//! whatever the thread count:
//!
//! ```
//! use imp::sim::{Sim, Sweep};
//! use imp::prelude::*;
//!
//! let results = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
//!     .prefetchers(["none", "stream", "imp"])
//!     .cores([16])
//!     .run()
//!     .unwrap();
//! assert_eq!(results.len(), 3);
//! for r in &results {
//!     println!("{} @ {} cores: {} cycles", r.cell.prefetcher, r.cell.cores, r.stats.runtime);
//! }
//! ```
//!
//! `Sweep::run` builds each distinct (workload, cores, seed) input
//! exactly once and fans its prefetcher × partial cells out over the
//! shared, immutable artifact — bit-identical to rebuilding per cell,
//! just faster. `Sweep::run_partial` returns per-cell `Result`s so one
//! bad cell doesn't discard a finished grid. For explicit sharing and
//! `.imptrace` record/replay, see [`Sim::build_artifact`],
//! [`Sim::run_on`] and the `trace_record` example.
//!
//! Sweeps are *resumable*: route one through the content-addressed
//! result store ([`crate::store`]) with `.store(path)` — or stream
//! cells with [`Sweep::run_with`] — and a warm re-run serves every
//! finished cell from disk, bit-identically, simulating only cells the
//! store has never seen (the `sweep_resume` example and the
//! `imp-sweepd` service binary).
//!
//! Custom prefetchers registered from *outside* the simulator crates run
//! through the same front door — see `imp_prefetch::registry` and the
//! `custom_prefetcher` example.
//!
//! Any run can carry the observability probe without perturbing it:
//! `Sim::observe(ObsConfig::full(..)).run_observed()` returns the same
//! bit-identical `SystemStats` plus an [`crate::obs::ObsReport`]
//! (latency histograms, prefetch-timeliness ledger, Chrome trace), and
//! `Sweep::observe` attaches a compact [`crate::obs::ObsSummary`] to
//! every freshly simulated cell — see the `observability_tour` example.

pub use imp_experiments::service::{serve_dir, RequestError, ServedRequest, SweepRequest};
pub use imp_experiments::sim::{Sim, SimError};
pub use imp_experiments::sweep::{
    CellOutcome, Sweep, SweepCell, SweepCellError, SweepReport, SweepResult,
};
// The underlying simulator, for code that assembles `System`s by hand.
pub use imp_sim::{BuildError, RegistryError, System};
