//! `imp-sweepd` — the resumable sweep service.
//!
//! Watches a directory for `*.sweep` request files (the `key = value`
//! grammar of `imp::sim::SweepRequest`), runs each grid against a
//! shared content-addressed result store, writes a JSON manifest next
//! to the request, and renames it `.sweep.done` (`.sweep.failed` plus
//! an `.error.txt` on error). Cells any earlier request — or any
//! earlier daemon run — already simulated are served from the store,
//! so resubmitting overlapping grids costs only the new cells.
//!
//! ```text
//! imp-sweepd <requests-dir> [--store <dir>] [--once] [--interval-ms <n>]
//! ```
//!
//! `--store` defaults to `<requests-dir>/store`; `--once` serves the
//! current requests and exits (exit status 1 if any failed), otherwise
//! the daemon polls every `--interval-ms` (default 1000).

use imp::sim::serve_dir;
use imp::store::ResultStore;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    requests: PathBuf,
    store: PathBuf,
    once: bool,
    interval_ms: u64,
}

fn usage() -> ! {
    eprintln!("usage: imp-sweepd <requests-dir> [--store <dir>] [--once] [--interval-ms <n>]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut requests: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut once = false;
    let mut interval_ms = 1000;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--store" => store = Some(PathBuf::from(argv.next().unwrap_or_else(|| usage()))),
            "--interval-ms" => {
                interval_ms = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if requests.is_none() && !other.starts_with('-') => {
                requests = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    let requests = requests.unwrap_or_else(|| usage());
    let store = store.unwrap_or_else(|| requests.join("store"));
    Args {
        requests,
        store,
        once,
        interval_ms,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let store = match ResultStore::open(&args.store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("imp-sweepd: opening store {}: {e}", args.store.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "imp-sweepd: serving {} (store {})",
        args.requests.display(),
        args.store.display()
    );
    let mut any_failed = false;
    loop {
        let served = match serve_dir(&args.requests, &store) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("imp-sweepd: scanning {}: {e}", args.requests.display());
                return ExitCode::FAILURE;
            }
        };
        for s in &served {
            let name = s.request.display();
            match &s.error {
                None => {
                    println!(
                        "imp-sweepd: {name}: {} cached, {} simulated, {} failed -> {}",
                        s.cached,
                        s.simulated,
                        s.failed,
                        s.manifest.as_ref().map_or_else(
                            || "(no manifest)".to_string(),
                            |m| m.display().to_string()
                        ),
                    );
                    if let Some(c) = &s.store {
                        println!(
                            "imp-sweepd: {name}: store: {} hits, {} misses, {} rejected, {} puts",
                            c.hits, c.misses, c.rejected, c.puts
                        );
                    }
                }
                Some(e) => {
                    any_failed = true;
                    eprintln!("imp-sweepd: {name}: FAILED: {e}");
                }
            }
        }
        if args.once {
            return if any_failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
    }
}
