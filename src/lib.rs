//! # imp — a reproduction of *IMP: Indirect Memory Prefetcher* (MICRO-48, 2015)
//!
//! This crate is the facade over the workspace that re-implements the
//! paper end to end:
//!
//! * [`prefetch`] — the contribution itself: the Indirect Memory
//!   Prefetcher (stream table + Indirect Pattern Detector + Prefetch
//!   Table with multi-way/multi-level indirection) and its Granularity
//!   Predictor for partial cacheline accessing, plus the baseline stream
//!   and GHB prefetchers.
//! * [`sim`] — a Graphite-style many-core simulator: in-order/OoO cores,
//!   sectored caches, ACKwise-4 directory coherence, 2-D mesh NoC,
//!   fixed-latency and DDR3-like DRAM.
//! * [`workloads`] — the seven evaluation kernels (PageRank, Triangle
//!   Counting, Graph500 BFS, SGD, LSH, SpMV, SymGS) over synthetic
//!   inputs, emitting instrumented op streams and real index-array
//!   contents.
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use imp::prelude::*;
//!
//! // Build SpMV for a 16-core system and compare Baseline vs IMP.
//! let params = WorkloadParams::new(16, Scale::Tiny);
//! let base = {
//!     let b = by_name("spmv").unwrap().build(&params);
//!     System::new(SystemConfig::paper_default(16), b.program, b.mem).run()
//! };
//! let imp = {
//!     let b = by_name("spmv").unwrap().build(&params);
//!     let cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
//!     System::new(cfg, b.program, b.mem).run()
//! };
//! assert!(imp.runtime <= base.runtime);
//! ```

pub use imp_cache as cache;
pub use imp_coherence as coherence;
pub use imp_common as common;
pub use imp_cpu as cpu;
pub use imp_dram as dram;
pub use imp_experiments as experiments;
pub use imp_mem as mem;
pub use imp_noc as noc;
pub use imp_prefetch as prefetch;
pub use imp_sim as sim;
pub use imp_trace as trace;
pub use imp_workloads as workloads;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use imp_common::config::{
        CoreModel, MemMode, PartialMode, PrefetcherKind,
    };
    pub use imp_common::stats::{AccessClass, SystemStats};
    pub use imp_common::{Addr, ImpConfig, LineAddr, Pc, SystemConfig};
    pub use imp_experiments::{run as run_experiment, Config as ExperimentConfig};
    pub use imp_mem::{AddressSpace, FunctionalMemory};
    pub use imp_prefetch::{Access, Imp, L1Prefetcher, PrefetchRequest};
    pub use imp_sim::System;
    pub use imp_trace::{Op, Program};
    pub use imp_workloads::{by_name, paper_workloads, Scale, Workload, WorkloadParams};
}
