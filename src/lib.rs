//! # imp — a reproduction of *IMP: Indirect Memory Prefetcher* (MICRO-48, 2015)
//!
//! This crate is the facade over the workspace that re-implements the
//! paper end to end:
//!
//! * [`prefetch`] — the contribution itself: the Indirect Memory
//!   Prefetcher (stream table + Indirect Pattern Detector + Prefetch
//!   Table with multi-way/multi-level indirection) and its Granularity
//!   Predictor for partial cacheline accessing, plus the baseline stream
//!   and GHB prefetchers.
//! * [`sim`] — a Graphite-style many-core simulator: in-order/OoO cores,
//!   sectored caches, ACKwise-4 directory coherence, 2-D mesh NoC,
//!   fixed-latency and DDR3-like DRAM.
//! * [`workloads`] — the seven evaluation kernels (PageRank, Triangle
//!   Counting, Graph500 BFS, SGD, LSH, SpMV, SymGS) over synthetic
//!   inputs, emitting instrumented op streams and real index-array
//!   contents.
//! * [`vm`] — the virtual-memory subsystem: per-core dTLBs over a
//!   shared L2 TLB, a radix page table whose walks can be routed
//!   through the cache hierarchy as real PTE traffic
//!   (`WalkModel::Cached`), translation policies for prefetches, and a
//!   translation-prefetch port IMP uses to prefill L2-TLB entries for
//!   its predicted pages (`Sim::page_size` / `tlb_ways` /
//!   `translation_policy` / `l2_tlb` / `tlb_prefetch` / `walk_model`;
//!   ideal and zero-cost by default), with page size a *per-region*
//!   property: `Sim::page_policy(region, PagePolicy::Huge2M)` is the
//!   simulated `madvise(MADV_HUGEPAGE)`, translating the region
//!   through a split 4 KB / 2 MB dTLB with one-level-shallower walks.
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper's evaluation.
//! * [`obs`] — the observability layer: an always-compiled,
//!   zero-cost-when-off probe the simulator calls at every interesting
//!   event, producing log2-bucketed latency histograms (demand misses,
//!   page walks, prefetch-to-use distance), a prefetch-timeliness
//!   ledger (issued → filled → {used, late, evicted-unused}, per PC
//!   and per access class), an epoch sampler, and a bounded
//!   deterministic event trace exported as Chrome `trace_event` JSON
//!   (`Sim::observe` / `Sim::run_observed`, `Sweep::observe`, the
//!   `observability_tour` example). Observation never changes timing:
//!   a probed run is bit-identical to a bare one.
//! * [`adapt`] — the adaptive-management control plane: a per-epoch
//!   feedback loop that distills the observability ledger into
//!   [`adapt::Manager`] policy decisions — throttle an inaccurate
//!   prefetcher, mask its cold PCs, or switch models entirely (the
//!   offline-trained decision tree demotes IMP to a stream prefetcher
//!   under TLB pressure). Prefetchers participate through
//!   `L1Prefetcher::on_feedback`; drive it with `Sim::manager` or the
//!   `Sweep::managers` axis (`"static"`, `"throttle"`, `"tree"`), and
//!   see the `adaptive_manager` example.
//! * [`store`] — the content-addressed result store: every sweep cell
//!   is digested over its full canonical input and persisted as a
//!   checksummed `.impres` record, so re-running a sweep simulates only
//!   cells the store has never seen (`Sweep::store` /
//!   `Sweep::run_with`, the `imp-sweepd` service, the `sweep_resume`
//!   example).
//! * [`sim`] (module) — the fluent [`Sim`] builder and the parallel
//!   [`Sweep`] grid runner, the recommended front door.
//!
//! ## Quickstart
//!
//! ```
//! use imp::prelude::*;
//!
//! // Run SpMV on the simulated 16-core system and compare Baseline vs IMP.
//! let base = Sim::workload("spmv").scale(Scale::Tiny).cores(16).run().unwrap();
//! let imp = Sim::workload("spmv")
//!     .scale(Scale::Tiny)
//!     .cores(16)
//!     .prefetcher("imp")
//!     .run()
//!     .unwrap();
//! assert!(imp.runtime <= base.runtime);
//! ```
//!
//! Prefetchers are open plugins: register a custom one by name through
//! [`prefetch::registry`] and pass that name to `Sim::prefetcher` — no
//! simulator changes needed. Sweep whole config grids in parallel with
//! [`Sweep`]; see the [`sim`] module docs.
//!
//! ## Record & replay
//!
//! Workloads build into shareable artifacts that serialize to the
//! binary `.imptrace` format — record once, replay anywhere (including
//! externally recorded op streams) via the `trace:<path>` workload name:
//!
//! ```
//! use imp::prelude::*;
//!
//! let sim = Sim::workload("spmv").scale(Scale::Tiny).cores(16);
//! let artifact = sim.build_artifact().unwrap();
//!
//! // Fan configurations over the shared artifact without rebuilding.
//! let imp = sim.clone().prefetcher("imp").run_on(&artifact).unwrap();
//!
//! // Persist it and replay by name, bit-identically.
//! let path = std::env::temp_dir().join(format!("quickstart-{}.imptrace", std::process::id()));
//! artifact.save(&path).unwrap();
//! let replayed = Sim::workload(format!("trace:{}", path.display()))
//!     .cores(16)
//!     .prefetcher("imp")
//!     .run()
//!     .unwrap();
//! assert_eq!(imp, replayed);
//! # std::fs::remove_file(&path).ok();
//! ```

pub use imp_adapt as adapt;
pub use imp_cache as cache;
pub use imp_coherence as coherence;
pub use imp_common as common;
pub use imp_cpu as cpu;
pub use imp_dram as dram;
pub use imp_experiments as experiments;
pub use imp_mem as mem;
pub use imp_noc as noc;
pub use imp_obs as obs;
pub use imp_prefetch as prefetch;
pub use imp_store as store;
pub use imp_trace as trace;
pub use imp_vm as vm;
pub use imp_workloads as workloads;

pub mod sim;

pub use sim::{Sim, SimError, Sweep, SweepCell, SweepReport, SweepResult};

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use imp_adapt::{DecisionTree, EpochTracker, Manager, ManagerPolicy};
    pub use imp_common::config::{CoreModel, MemMode, PartialMode, PrefetcherKind};
    pub use imp_common::config::{
        MemRegion, PagePolicy, ParamValue, PrefetcherSpec, TlbConfig, TranslationPolicy, WalkModel,
    };
    pub use imp_common::stats::{AccessClass, SystemStats, TlbStats};
    pub use imp_common::{Addr, ImpConfig, LineAddr, Pc, SystemConfig};
    pub use imp_experiments::{run as run_experiment, Config as ExperimentConfig};
    pub use imp_experiments::{
        CellOutcome, Sim, SimError, Sweep, SweepCell, SweepReport, SweepRequest, SweepResult,
    };
    pub use imp_mem::{AddressSpace, FunctionalMemory};
    pub use imp_obs::{ObsConfig, ObsReport, ObsSummary};
    pub use imp_prefetch::{
        Access, Control, Feedback, Imp, L1Prefetcher, PrefetchCtx, PrefetchRequest,
    };
    pub use imp_sim::System;
    pub use imp_store::{cell_digest, digest_hex, ResultStore, StoredResult};
    pub use imp_trace::{Op, Program, TraceFile};
    pub use imp_vm::{L2Tlb, PagePlacement, PageTable, PageWalker, Tlb, Vm, WalkMemory};
    pub use imp_workloads::{
        by_name, paper_workloads, BuiltArtifact, Scale, Workload, WorkloadParams,
    };
    pub use imp_workloads::{gather, AccessPattern, Chain, ChainSpec};
    // Re-exported for back-compat; deprecated in favor of
    // `Built::hot_regions()`.
    #[allow(deprecated)]
    pub use imp_workloads::hot_regions;
}
