//! Property test for the control plane's accounting: per-epoch
//! [`Feedback`] deltas produced by [`EpochTracker`] must sum exactly to
//! the cumulative ledger — totals, per-PC, and per-class — for any
//! event sequence and any epoch placement, and the summed deltas must
//! satisfy the end-of-run invariant
//! `issued == used + late + evicted_unused + inflight_at_end`.

use imp_adapt::EpochTracker;
use imp_common::stats::AccessClass;
use imp_common::{Addr, LineAddr, Pc};
use imp_obs::{merge_counts, Ledger, LedgerCounts};
use imp_prefetch::Feedback;
use proptest::prelude::*;

#[derive(Clone, Copy, PartialEq)]
enum LineState {
    Idle,
    InFlight,
    Resident,
}

fn add(sum: &mut LedgerCounts, d: &LedgerCounts) {
    sum.issued += d.issued;
    sum.fills += d.fills;
    sum.used += d.used;
    sum.late += d.late;
    sum.evicted_unused += d.evicted_unused;
}

proptest! {
    #[test]
    fn epoch_deltas_reconcile_with_ledger_totals(
        ops in proptest::collection::vec((0u8..5, 0u64..24, 0u32..6), 0..400),
        epoch_every in 1usize..24,
    ) {
        let mut ledger = Ledger::default();
        let mut tracker = EpochTracker::new();
        let mut states = [LineState::Idle; 24];
        let mut epochs: Vec<Feedback> = Vec::new();
        let mut now = 0u64;
        let mut misses = 0u64;
        let mut drops = 0u64;

        for (step, &(kind, li, pi)) in ops.iter().enumerate() {
            now += 3;
            let line = LineAddr::containing(Addr::new(0x4000 + 64 * li));
            let pc = Pc::new(pi);
            let class = AccessClass::ALL[(pi as usize) % AccessClass::ALL.len()];
            match kind {
                // A demand access: sometimes merges into an in-flight
                // prefetch (late), always counts as a miss signal.
                0 => {
                    misses += 1;
                    if states[li as usize] == LineState::InFlight {
                        ledger.demand_merge(0, line);
                    }
                }
                1 if states[li as usize] == LineState::Idle => {
                    ledger.issue(0, line, pc, class, (pi % 4) as u8, now);
                    states[li as usize] = LineState::InFlight;
                }
                2 if states[li as usize] == LineState::InFlight => {
                    ledger.fill(0, line, now);
                    states[li as usize] = LineState::Resident;
                }
                3 if states[li as usize] == LineState::Resident => {
                    ledger.first_use(0, line, now);
                    states[li as usize] = LineState::Idle;
                }
                4 if states[li as usize] == LineState::Resident => {
                    ledger.evicted_unused(0, line);
                    states[li as usize] = LineState::Idle;
                }
                _ => drops += 1, // an illegal op stands in for a TLB drop
            }
            if (step + 1) % epoch_every == 0 {
                epochs.push(tracker.feedback(&ledger, now, misses, drops, now * 2, now * 8));
            }
        }

        // Run end: the ledger resolves every open entry, and the
        // tracker closes one final epoch over that resolution.
        ledger.finish();
        epochs.push(tracker.feedback(&ledger, now + 1, misses, drops, now * 2, now * 8));

        // Epoch windows tile the run: no gaps, no overlaps.
        for w in epochs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        prop_assert_eq!(epochs[0].start, 0);

        // Totals: the deltas sum to the cumulative ledger exactly.
        let mut sum = LedgerCounts::default();
        for fb in &epochs {
            add(&mut sum, &fb.total);
        }
        prop_assert_eq!(&sum, ledger.total());

        // The end-of-run invariant holds over the summed deltas.
        prop_assert!(ledger.reconciles());
        prop_assert_eq!(
            sum.issued,
            sum.used + sum.late + sum.evicted_unused + ledger.inflight_at_end()
        );

        // Per-PC deltas reconcile PC by PC.
        let mut per_pc: Vec<(Pc, LedgerCounts)> = Vec::new();
        for fb in &epochs {
            for (pc, d) in &fb.per_pc {
                match per_pc.iter_mut().find(|(p, _)| p == pc) {
                    Some((_, c)) => add(c, d),
                    None => per_pc.push((*pc, *d)),
                }
            }
        }
        per_pc.sort_by_key(|(pc, _)| pc.raw());
        prop_assert_eq!(&per_pc, &ledger.per_pc());
        prop_assert_eq!(
            merge_counts(per_pc.iter().map(|(_, c)| c)),
            *ledger.total()
        );

        // Per-class deltas reconcile class by class.
        for (i, cls) in ledger.per_class().iter().enumerate() {
            let mut s = LedgerCounts::default();
            for fb in &epochs {
                add(&mut s, &fb.per_class[i]);
            }
            prop_assert_eq!(&s, cls);
        }

        // Per-hop deltas reconcile hop by hop and sum to the totals.
        for (h, cur) in ledger.per_hop().iter().enumerate() {
            let mut s = LedgerCounts::default();
            for fb in &epochs {
                add(&mut s, &fb.per_hop[h]);
            }
            prop_assert_eq!(&s, cur);
        }
        prop_assert!(ledger.reconciles_per_hop());

        // Scalar side channels tile the run the same way.
        let miss_sum: u64 = epochs.iter().map(|fb| fb.demand_misses).sum();
        let drop_sum: u64 = epochs.iter().map(|fb| fb.tlb_prefetch_drops).sum();
        prop_assert_eq!(miss_sum, misses);
        prop_assert_eq!(drop_sum, drops);
    }
}
