//! Stock manager policies: `static`, `throttle`, and `tree`.

use imp_common::config::PrefetcherSpec;
use imp_common::Pc;
use imp_prefetch::{Control, Feedback};

use crate::tree::{DecisionTree, TreeAction};
use crate::{param_bool, param_f64, param_str, param_u32, param_u64, reject_unknown_params};
use crate::{ManagerError, ManagerPolicy};

/// Requests nothing, ever. A `static`-managed run is bit-identical to
/// an unmanaged run — the golden pin the simulator's regression tests
/// hold the control plane to.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticPolicy;

impl ManagerPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn on_epoch(&mut self, _feedback: &Feedback) -> Control {
        Control::none()
    }
}

/// Accuracy-driven throttling with hysteresis.
///
/// When an epoch with meaningful volume (`issued >= min_issued`) shows
/// accuracy below `accuracy_floor`, the policy enters the throttled
/// state: the prefetch degree is capped at `degree` and (when `mask`
/// is on) PCs that issued at least `pc_min_issued` prefetches with
/// per-PC accuracy below the floor are masked outright. Masked PCs
/// accumulate while throttled (a masked PC issues nothing, so its
/// per-epoch stats go quiet — forgetting it would un-mask it the next
/// epoch and flip-flop). Once a meaningful epoch reaches `recover`
/// accuracy the state clears entirely. Low-volume epochs never change
/// state.
#[derive(Clone, Debug)]
pub struct ThrottlePolicy {
    accuracy_floor: f64,
    recover: f64,
    min_issued: u64,
    pc_min_issued: u64,
    degree: u32,
    mask: bool,
    throttled: bool,
    masked: Vec<Pc>,
}

impl ThrottlePolicy {
    /// The policy with the stock thresholds (throttle below 50%
    /// accuracy, recover at 70%, judge only epochs with ≥32 issues).
    pub fn new() -> Self {
        ThrottlePolicy {
            accuracy_floor: 0.5,
            recover: 0.7,
            min_issued: 32,
            pc_min_issued: 8,
            degree: 1,
            mask: true,
            throttled: false,
            masked: Vec::new(),
        }
    }

    /// Builds from a spec: `throttle:accuracy_floor=0.5,recover=0.7,
    /// min_issued=32,pc_min_issued=8,degree=1,mask=true,epoch=10000`.
    pub fn from_spec(spec: &PrefetcherSpec) -> Result<Self, ManagerError> {
        reject_unknown_params(
            spec,
            &[
                "epoch",
                "accuracy_floor",
                "recover",
                "min_issued",
                "pc_min_issued",
                "degree",
                "mask",
            ],
        )?;
        let stock = ThrottlePolicy::new();
        let floor = param_f64(spec, "accuracy_floor", stock.accuracy_floor)?;
        let recover = param_f64(spec, "recover", stock.recover)?;
        if !(0.0..=1.0).contains(&floor) || !(0.0..=1.0).contains(&recover) || recover < floor {
            return Err(ManagerError::InvalidParam {
                policy: spec.name.clone(),
                param: "accuracy_floor".into(),
                reason: format!(
                    "need 0 <= accuracy_floor <= recover <= 1, got {floor} and {recover}"
                ),
            });
        }
        Ok(ThrottlePolicy {
            accuracy_floor: floor,
            recover,
            min_issued: param_u64(spec, "min_issued", stock.min_issued)?,
            pc_min_issued: param_u64(spec, "pc_min_issued", stock.pc_min_issued)?,
            degree: param_u32(spec, "degree", stock.degree)?,
            mask: param_bool(spec, "mask", stock.mask)?,
            throttled: false,
            masked: Vec::new(),
        })
    }

    /// Whether the policy is currently throttling.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }
}

impl Default for ThrottlePolicy {
    fn default() -> Self {
        ThrottlePolicy::new()
    }
}

impl ManagerPolicy for ThrottlePolicy {
    fn name(&self) -> &'static str {
        "throttle"
    }

    fn on_epoch(&mut self, feedback: &Feedback) -> Control {
        let meaningful = feedback.total.issued >= self.min_issued;
        let accuracy = feedback.accuracy();
        if meaningful {
            if !self.throttled && accuracy < self.accuracy_floor {
                self.throttled = true;
            } else if self.throttled && accuracy >= self.recover {
                self.throttled = false;
                self.masked.clear();
            }
        }
        if !self.throttled {
            return Control::none();
        }
        if self.mask {
            for (pc, c) in &feedback.per_pc {
                let low = c.issued >= self.pc_min_issued
                    && (c.used as f64) < self.accuracy_floor * c.issued as f64;
                if low && !self.masked.contains(pc) {
                    self.masked.push(*pc);
                }
            }
            self.masked.sort_unstable();
        }
        Control {
            degree_limit: Some(self.degree),
            masked_pcs: self.masked.clone(),
            ..Control::none()
        }
    }
}

/// Evaluates an offline-trained [`DecisionTree`] on each epoch's rate
/// features and maps the resulting [`TreeAction`] to a [`Control`].
///
/// * `pass` — no control.
/// * `limit<N>` — cap the degree at N.
/// * `depth<N>` — cap chained prefetching at hop N (the demote-deep
///   rule: when deep-hop accuracy collapses, keep the primary
///   indirect stream and drop the speculative chain behind it).
/// * `mask` — cap the degree *and* mask low-accuracy PCs (same
///   accumulation rule as [`ThrottlePolicy`]).
/// * `switch_stream` — request a switch to the plain `stream`
///   prefetcher (the paper-motivated demotion under TLB pressure:
///   indirect prefetches walk the TLB per element, so when drops
///   dominate, IMP's translations are wasted work).
///
/// A `pass` epoch clears any accumulated masks.
#[derive(Clone, Debug)]
pub struct TreePolicy {
    tree: DecisionTree,
    degree: u32,
    pc_min_issued: u64,
    masked: Vec<Pc>,
}

impl TreePolicy {
    /// Wraps a tree with the stock degree/mask thresholds.
    pub fn new(tree: DecisionTree) -> Self {
        TreePolicy {
            tree,
            degree: 1,
            pc_min_issued: 8,
            masked: Vec::new(),
        }
    }

    /// Builds from a spec: `tree:spec=(tlb<0.25?pass:switch_stream),
    /// degree=1,pc_min_issued=8,epoch=10000`. Without `spec=` the
    /// [`DecisionTree::paper_default`] tree is used.
    pub fn from_spec(spec: &PrefetcherSpec) -> Result<Self, ManagerError> {
        reject_unknown_params(spec, &["epoch", "spec", "degree", "pc_min_issued"])?;
        let tree = match param_str(spec, "spec")? {
            None => DecisionTree::paper_default(),
            Some(s) => s
                .parse()
                .map_err(|reason: String| ManagerError::InvalidParam {
                    policy: spec.name.clone(),
                    param: "spec".into(),
                    reason,
                })?,
        };
        let stock = TreePolicy::new(tree);
        Ok(TreePolicy {
            degree: param_u32(spec, "degree", stock.degree)?,
            pc_min_issued: param_u64(spec, "pc_min_issued", stock.pc_min_issued)?,
            ..stock
        })
    }

    /// The decision tree this policy evaluates.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }
}

impl ManagerPolicy for TreePolicy {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn on_epoch(&mut self, feedback: &Feedback) -> Control {
        match self.tree.decide(feedback) {
            TreeAction::Pass => {
                self.masked.clear();
                Control::none()
            }
            TreeAction::Limit(n) => Control {
                degree_limit: Some(n),
                ..Control::none()
            },
            TreeAction::Depth(n) => Control {
                depth_limit: Some(n),
                ..Control::none()
            },
            TreeAction::Mask => {
                for (pc, c) in &feedback.per_pc {
                    let low = c.issued >= self.pc_min_issued && c.used * 2 < c.issued;
                    if low && !self.masked.contains(pc) {
                        self.masked.push(*pc);
                    }
                }
                self.masked.sort_unstable();
                Control {
                    degree_limit: Some(self.degree),
                    masked_pcs: self.masked.clone(),
                    ..Control::none()
                }
            }
            TreeAction::SwitchStream => Control {
                switch_to: Some(PrefetcherSpec::new("stream")),
                ..Control::none()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_obs::LedgerCounts;

    fn fb(issued: u64, used: u64, evicted: u64) -> Feedback {
        Feedback {
            total: LedgerCounts {
                issued,
                fills: used + evicted,
                used,
                late: 0,
                evicted_unused: evicted,
            },
            ..Feedback::default()
        }
    }

    #[test]
    fn static_policy_never_intervenes() {
        let mut p = StaticPolicy;
        assert!(p.on_epoch(&fb(1000, 0, 1000)).is_none());
    }

    #[test]
    fn throttle_has_hysteresis() {
        let mut p = ThrottlePolicy::new();
        // Healthy epoch: untouched.
        assert!(p.on_epoch(&fb(100, 90, 10)).is_none());
        // Accuracy collapses: throttled.
        let ctl = p.on_epoch(&fb(100, 10, 90));
        assert_eq!(ctl.degree_limit, Some(1));
        assert!(p.is_throttled());
        // Mid-band epoch (60%): stays throttled (floor 0.5 < 0.6 < 0.7).
        assert!(p.on_epoch(&fb(100, 60, 40)).degree_limit.is_some());
        // Recovery epoch: released.
        assert!(p.on_epoch(&fb(100, 80, 20)).is_none());
        assert!(!p.is_throttled());
    }

    #[test]
    fn throttle_ignores_idle_epochs() {
        let mut p = ThrottlePolicy::new();
        // Terrible accuracy but only 4 issues: not meaningful.
        assert!(p.on_epoch(&fb(4, 0, 4)).is_none());
        assert!(!p.is_throttled());
    }

    #[test]
    fn throttle_masks_accumulate_until_recovery() {
        let mut p = ThrottlePolicy::new();
        let mut bad = fb(100, 10, 90);
        bad.per_pc = vec![(
            Pc::new(7),
            LedgerCounts {
                issued: 50,
                fills: 50,
                used: 0,
                late: 0,
                evicted_unused: 50,
            },
        )];
        let ctl = p.on_epoch(&bad);
        assert_eq!(ctl.masked_pcs, vec![Pc::new(7)]);
        // Next epoch the masked PC is silent, but the mask persists.
        let ctl = p.on_epoch(&fb(100, 20, 80));
        assert_eq!(ctl.masked_pcs, vec![Pc::new(7)]);
        // Recovery clears it.
        let ctl = p.on_epoch(&fb(100, 90, 10));
        assert!(ctl.is_none());
    }

    #[test]
    fn tree_policy_demotes_deep_hops_when_hop2_accuracy_collapses() {
        let mut p = TreePolicy::new(DecisionTree::chain_default());
        let mut deep_miss = fb(100, 80, 20);
        deep_miss.per_hop[2] = LedgerCounts {
            issued: 40,
            fills: 40,
            used: 2,
            late: 0,
            evicted_unused: 38,
        };
        let ctl = p.on_epoch(&deep_miss);
        assert_eq!(ctl.depth_limit, Some(1));
        assert!(ctl.degree_limit.is_none(), "depth rule leaves degree alone");
        // Hop-2 healthy again: back to pass.
        let mut healthy = fb(100, 80, 20);
        healthy.per_hop[2] = LedgerCounts {
            issued: 40,
            fills: 40,
            used: 36,
            late: 2,
            evicted_unused: 2,
        };
        assert!(p.on_epoch(&healthy).is_none());
    }

    #[test]
    fn tree_policy_switches_under_tlb_pressure() {
        let mut p = TreePolicy::new(DecisionTree::paper_default());
        let mut pressured = fb(100, 80, 20);
        pressured.tlb_prefetch_drops = 100; // drop rate 0.5
        let ctl = p.on_epoch(&pressured);
        assert_eq!(ctl.switch_to, Some(PrefetcherSpec::new("stream")));
        // No pressure, healthy accuracy: pass.
        assert!(p.on_epoch(&fb(100, 80, 20)).is_none());
    }
}
