//! An offline-trained decision tree over epoch feedback features.
//!
//! Trees are serialized through the manager spec as a single
//! comma-free string (commas would split `PrefetcherSpec` parameter
//! pairs), e.g.
//!
//! ```text
//! (tlb<0.25?(acc<0.35?mask:pass):switch_stream)
//! ```
//!
//! Grammar: a node is either a leaf action — `pass`, `limit<N>`,
//! `depth<N>`, `mask`, `switch_stream` — or a split
//! `(<feature><<threshold>?<below>:<above>)` that takes the `below`
//! branch when the feature is strictly less than the threshold.
//! Features: `acc` (accuracy), `time` (timeliness), `evict` (evict
//! rate), `tlb` (TLB drop rate), `h2acc` (hop-2 indirect accuracy).
//! `Display` and `FromStr` round-trip.

use imp_prefetch::Feedback;

/// A feature the tree can split on, read off one epoch's [`Feedback`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeFeature {
    /// `acc`: [`Feedback::accuracy`].
    Accuracy,
    /// `time`: [`Feedback::timeliness`].
    Timeliness,
    /// `evict`: [`Feedback::evict_rate`].
    EvictRate,
    /// `tlb`: [`Feedback::tlb_drop_rate`].
    TlbDropRate,
    /// `h2acc`: [`Feedback::hop_accuracy`] at hop 2 — the first
    /// chained hop, the canary for whether deep pointer chasing is
    /// paying off.
    Hop2Accuracy,
}

impl TreeFeature {
    /// Every feature, in serialization order.
    pub const ALL: [TreeFeature; 5] = [
        TreeFeature::Accuracy,
        TreeFeature::Timeliness,
        TreeFeature::EvictRate,
        TreeFeature::TlbDropRate,
        TreeFeature::Hop2Accuracy,
    ];

    /// The serialization key.
    pub fn key(self) -> &'static str {
        match self {
            TreeFeature::Accuracy => "acc",
            TreeFeature::Timeliness => "time",
            TreeFeature::EvictRate => "evict",
            TreeFeature::TlbDropRate => "tlb",
            TreeFeature::Hop2Accuracy => "h2acc",
        }
    }

    /// Position in [`TreeFeature::ALL`] (and in a sample's feature
    /// vector).
    pub fn index(self) -> usize {
        TreeFeature::ALL.iter().position(|f| *f == self).unwrap()
    }

    /// Reads this feature off an epoch digest.
    pub fn of(self, fb: &Feedback) -> f64 {
        match self {
            TreeFeature::Accuracy => fb.accuracy(),
            TreeFeature::Timeliness => fb.timeliness(),
            TreeFeature::EvictRate => fb.evict_rate(),
            TreeFeature::TlbDropRate => fb.tlb_drop_rate(),
            TreeFeature::Hop2Accuracy => fb.hop_accuracy(2),
        }
    }
}

/// What a leaf tells the manager to do for the next epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeAction {
    /// No intervention.
    Pass,
    /// Cap the prefetch degree at the given limit.
    Limit(u32),
    /// Cap chained prefetching at the given hop (the demote-deep rule:
    /// keep the primary indirect stream, drop speculative deep hops).
    Depth(u8),
    /// Cap the degree and mask low-accuracy PCs.
    Mask,
    /// Switch the prefetcher to the plain `stream` spec (the paper's
    /// demote-IMP-under-TLB-pressure rule).
    SwitchStream,
}

impl TreeAction {
    fn rank(self) -> u64 {
        // Deterministic tie-break order for training majorities.
        match self {
            TreeAction::Pass => 0,
            TreeAction::Limit(n) => 1 + n as u64,
            TreeAction::Depth(n) => u32::MAX as u64 + 2 + n as u64,
            TreeAction::Mask => u64::MAX - 1,
            TreeAction::SwitchStream => u64::MAX,
        }
    }
}

impl std::fmt::Display for TreeAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeAction::Pass => write!(f, "pass"),
            TreeAction::Limit(n) => write!(f, "limit{n}"),
            TreeAction::Depth(n) => write!(f, "depth{n}"),
            TreeAction::Mask => write!(f, "mask"),
            TreeAction::SwitchStream => write!(f, "switch_stream"),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Node {
    Leaf(TreeAction),
    Split {
        feature: TreeFeature,
        threshold: f64,
        below: Box<Node>,
        above: Box<Node>,
    },
}

impl Node {
    fn eval(&self, features: &[f64; 5]) -> TreeAction {
        match self {
            Node::Leaf(a) => *a,
            Node::Split {
                feature,
                threshold,
                below,
                above,
            } => {
                if features[feature.index()] < *threshold {
                    below.eval(features)
                } else {
                    above.eval(features)
                }
            }
        }
    }

    fn depth(&self) -> u32 {
        match self {
            Node::Leaf(_) => 0,
            Node::Split { below, above, .. } => 1 + below.depth().max(above.depth()),
        }
    }

    fn fmt_into(&self, out: &mut String) {
        match self {
            Node::Leaf(a) => out.push_str(&a.to_string()),
            Node::Split {
                feature,
                threshold,
                below,
                above,
            } => {
                out.push('(');
                out.push_str(feature.key());
                out.push('<');
                out.push_str(&threshold.to_string());
                out.push('?');
                below.fmt_into(out);
                out.push(':');
                above.fmt_into(out);
                out.push(')');
            }
        }
    }
}

/// The tree: parseable, printable, evaluable, trainable.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionTree {
    root: Node,
}

/// One labelled training example: the feature vector of an epoch
/// (indexed by [`TreeFeature::index`]) and the action an oracle — e.g.
/// the best-performing sweep cell — would have taken.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeSample {
    /// `[accuracy, timeliness, evict_rate, tlb_drop_rate,
    /// hop2_accuracy]`.
    pub features: [f64; 5],
    /// The labelled action.
    pub action: TreeAction,
}

impl DecisionTree {
    /// A single-leaf tree.
    pub fn leaf(action: TreeAction) -> Self {
        DecisionTree {
            root: Node::Leaf(action),
        }
    }

    /// The hand-built default encoding the paper-motivated rules:
    /// under TLB pressure (drop rate ≥ 0.25) demote to the stream
    /// prefetcher — indirect prefetches pay a TLB walk per element, so
    /// dropped translations mean IMP is churning the TLB for nothing;
    /// otherwise mask wasteful PCs when accuracy collapses and most
    /// fills die unused, throttle when accuracy is merely poor, and
    /// pass when healthy.
    pub fn paper_default() -> Self {
        "(tlb<0.25?(acc<0.35?(evict<0.5?limit2:mask):pass):switch_stream)"
            .parse()
            .expect("the built-in tree parses")
    }

    /// [`DecisionTree::paper_default`] extended with the demote-deep
    /// rule for chained indirection (`imp:depth>=2`): when hop-2
    /// accuracy collapses below 0.2 while the stream as a whole is
    /// still worth running, cap chasing at the primary hop
    /// (`depth1`) instead of letting speculative deep hops pollute the
    /// cache. Epochs that issue nothing at hop 2 score 1.0 and are
    /// unaffected, so this tree behaves exactly like the paper default
    /// on unchained workloads.
    pub fn chain_default() -> Self {
        "(tlb<0.25?(h2acc<0.2?depth1:(acc<0.35?(evict<0.5?limit2:mask):pass)):switch_stream)"
            .parse()
            .expect("the built-in chain tree parses")
    }

    /// Evaluates the tree on one epoch's digest.
    pub fn decide(&self, fb: &Feedback) -> TreeAction {
        let features = [
            TreeFeature::Accuracy.of(fb),
            TreeFeature::Timeliness.of(fb),
            TreeFeature::EvictRate.of(fb),
            TreeFeature::TlbDropRate.of(fb),
            TreeFeature::Hop2Accuracy.of(fb),
        ];
        self.eval(&features)
    }

    /// Evaluates the tree on a raw feature vector.
    pub fn eval(&self, features: &[f64; 5]) -> TreeAction {
        self.root.eval(features)
    }

    /// Maximum split depth (a single leaf is depth 0).
    pub fn depth(&self) -> u32 {
        self.root.depth()
    }

    /// Fits a tree to labelled samples by greedy recursive
    /// partitioning: at each node, try every feature and every
    /// midpoint between adjacent distinct values, keep the split that
    /// minimizes total misclassification under majority-vote leaves,
    /// and stop at `max_depth`, purity, or zero improvement. Fully
    /// deterministic: ties break on the lowest feature index, then the
    /// lowest threshold, and majority ties break on a fixed action
    /// order.
    pub fn train(samples: &[TreeSample], max_depth: u32) -> Self {
        DecisionTree {
            root: train_node(samples, max_depth),
        }
    }
}

fn majority(samples: &[TreeSample]) -> (TreeAction, usize) {
    let mut counts: Vec<(TreeAction, usize)> = Vec::new();
    for s in samples {
        match counts.iter_mut().find(|(a, _)| *a == s.action) {
            Some((_, n)) => *n += 1,
            None => counts.push((s.action, 1)),
        }
    }
    counts
        .into_iter()
        .max_by(|(a, na), (b, nb)| na.cmp(nb).then(b.rank().cmp(&a.rank())))
        .unwrap_or((TreeAction::Pass, 0))
}

fn misclassified(samples: &[TreeSample]) -> usize {
    samples.len() - majority(samples).1
}

fn train_node(samples: &[TreeSample], max_depth: u32) -> Node {
    let (maj, maj_count) = majority(samples);
    if max_depth == 0 || maj_count == samples.len() {
        return Node::Leaf(maj);
    }
    let mut best: Option<(usize, f64, usize)> = None; // (feature, threshold, cost)
    for fi in 0..TreeFeature::ALL.len() {
        let mut values: Vec<f64> = samples.iter().map(|s| s.features[fi]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        for w in values.windows(2) {
            let thr = (w[0] + w[1]) / 2.0;
            let below: Vec<TreeSample> = samples
                .iter()
                .copied()
                .filter(|s| s.features[fi] < thr)
                .collect();
            let above: Vec<TreeSample> = samples
                .iter()
                .copied()
                .filter(|s| s.features[fi] >= thr)
                .collect();
            if below.is_empty() || above.is_empty() {
                continue;
            }
            let cost = misclassified(&below) + misclassified(&above);
            let better = match best {
                None => true,
                Some((bf, bt, bc)) => {
                    cost < bc || (cost == bc && (fi < bf || (fi == bf && thr < bt)))
                }
            };
            if better {
                best = Some((fi, thr, cost));
            }
        }
    }
    match best {
        Some((fi, thr, cost)) if cost < misclassified(samples) => {
            let below: Vec<TreeSample> = samples
                .iter()
                .copied()
                .filter(|s| s.features[fi] < thr)
                .collect();
            let above: Vec<TreeSample> = samples
                .iter()
                .copied()
                .filter(|s| s.features[fi] >= thr)
                .collect();
            Node::Split {
                feature: TreeFeature::ALL[fi],
                threshold: thr,
                below: Box::new(train_node(&below, max_depth - 1)),
                above: Box::new(train_node(&above, max_depth - 1)),
            }
        }
        _ => Node::Leaf(maj),
    }
}

impl std::fmt::Display for DecisionTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.root.fmt_into(&mut s);
        f.write_str(&s)
    }
}

impl std::str::FromStr for DecisionTree {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let root = parse_node(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos} of `{s}`"));
        }
        Ok(DecisionTree { root })
    }
}

fn parse_node(s: &[u8], pos: &mut usize) -> Result<Node, String> {
    if s.get(*pos) == Some(&b'(') {
        *pos += 1;
        let key = parse_ident(s, pos);
        let feature = TreeFeature::ALL
            .into_iter()
            .find(|f| f.key() == key)
            .ok_or_else(|| format!("unknown feature `{key}` (acc, time, evict, tlb, h2acc)"))?;
        expect(s, pos, b'<')?;
        let start = *pos;
        while s.get(*pos).is_some_and(|c| *c != b'?') {
            *pos += 1;
        }
        let raw = std::str::from_utf8(&s[start..*pos]).unwrap_or("");
        let threshold: f64 = raw
            .parse()
            .map_err(|_| format!("bad threshold `{raw}` for `{key}`"))?;
        expect(s, pos, b'?')?;
        let below = parse_node(s, pos)?;
        expect(s, pos, b':')?;
        let above = parse_node(s, pos)?;
        expect(s, pos, b')')?;
        Ok(Node::Split {
            feature,
            threshold,
            below: Box::new(below),
            above: Box::new(above),
        })
    } else {
        let word = parse_ident(s, pos);
        match word.as_str() {
            "pass" => Ok(Node::Leaf(TreeAction::Pass)),
            "mask" => Ok(Node::Leaf(TreeAction::Mask)),
            "switch_stream" => Ok(Node::Leaf(TreeAction::SwitchStream)),
            w if w.starts_with("limit") => {
                let n: u32 = w["limit".len()..]
                    .parse()
                    .map_err(|_| format!("bad degree in `{w}`"))?;
                Ok(Node::Leaf(TreeAction::Limit(n)))
            }
            w if w.starts_with("depth") => {
                let n: u8 = w["depth".len()..]
                    .parse()
                    .map_err(|_| format!("bad hop cap in `{w}`"))?;
                Ok(Node::Leaf(TreeAction::Depth(n)))
            }
            w => Err(format!(
                "unknown action `{w}` (pass, limit<N>, depth<N>, mask, switch_stream)"
            )),
        }
    }
}

fn parse_ident(s: &[u8], pos: &mut usize) -> String {
    let start = *pos;
    while s
        .get(*pos)
        .is_some_and(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == b'_')
    {
        *pos += 1;
    }
    String::from_utf8_lossy(&s[start..*pos]).into_owned()
}

fn expect(s: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if s.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        for src in [
            "pass",
            "limit2",
            "depth1",
            "(tlb<0.25?(acc<0.35?(evict<0.5?limit2:mask):pass):switch_stream)",
            "(time<0.5?switch_stream:(acc<0.9?limit4:pass))",
            "(tlb<0.25?(h2acc<0.2?depth1:(acc<0.35?(evict<0.5?limit2:mask):pass)):switch_stream)",
        ] {
            let t: DecisionTree = src.parse().unwrap();
            assert_eq!(t.to_string(), src);
            let back: DecisionTree = t.to_string().parse().unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn parse_rejects_malformed_trees() {
        for bad in [
            "",
            "(acc<0.5?pass)",
            "(speed<0.5?pass:mask)",
            "(acc<x?pass:mask)",
            "limitx",
            "depthx",
            "depth300",
            "pass)",
            "(acc<0.5?pass:mask",
        ] {
            assert!(
                bad.parse::<DecisionTree>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn eval_follows_splits() {
        let t = DecisionTree::paper_default();
        // Healthy: pass.
        assert_eq!(t.eval(&[0.9, 0.9, 0.05, 0.0, 1.0]), TreeAction::Pass);
        // Low accuracy, fills mostly dying: mask.
        assert_eq!(t.eval(&[0.1, 0.5, 0.8, 0.0, 1.0]), TreeAction::Mask);
        // Low accuracy but fills get used eventually: throttle.
        assert_eq!(t.eval(&[0.2, 0.5, 0.1, 0.0, 1.0]), TreeAction::Limit(2));
        // TLB pressure trumps everything: demote to stream.
        assert_eq!(
            t.eval(&[0.9, 0.9, 0.05, 0.6, 1.0]),
            TreeAction::SwitchStream
        );
    }

    #[test]
    fn chain_default_demotes_deep_chasing() {
        let t = DecisionTree::chain_default();
        // Hop-2 accuracy collapsed: cap at the primary hop.
        assert_eq!(t.eval(&[0.9, 0.9, 0.05, 0.0, 0.1]), TreeAction::Depth(1));
        // No hop-2 issues score 1.0: identical to the paper default.
        assert_eq!(t.eval(&[0.9, 0.9, 0.05, 0.0, 1.0]), TreeAction::Pass);
        assert_eq!(t.eval(&[0.1, 0.5, 0.8, 0.0, 1.0]), TreeAction::Mask);
        assert_eq!(t.eval(&[0.2, 0.5, 0.1, 0.0, 1.0]), TreeAction::Limit(2));
        // TLB pressure still trumps the depth rule.
        assert_eq!(
            t.eval(&[0.9, 0.9, 0.05, 0.6, 0.1]),
            TreeAction::SwitchStream
        );
    }

    #[test]
    fn training_recovers_a_planted_rule() {
        // Oracle: switch when tlb >= 0.3, else mask when acc < 0.4,
        // else pass.
        let mut samples = Vec::new();
        for i in 0..10 {
            let acc = i as f64 / 10.0;
            for j in 0..10 {
                let tlb = j as f64 / 10.0;
                let action = if tlb >= 0.3 {
                    TreeAction::SwitchStream
                } else if acc < 0.4 {
                    TreeAction::Mask
                } else {
                    TreeAction::Pass
                };
                samples.push(TreeSample {
                    features: [acc, 1.0, 0.0, tlb, 1.0],
                    action,
                });
            }
        }
        let t = DecisionTree::train(&samples, 3);
        for s in &samples {
            assert_eq!(t.eval(&s.features), s.action, "features {:?}", s.features);
        }
        // Deterministic: training twice gives the identical tree.
        assert_eq!(DecisionTree::train(&samples, 3), t);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn training_degenerate_inputs() {
        assert_eq!(
            DecisionTree::train(&[], 3),
            DecisionTree::leaf(TreeAction::Pass)
        );
        let pure = [TreeSample {
            features: [0.5; 5],
            action: TreeAction::Mask,
        }; 4];
        assert_eq!(
            DecisionTree::train(&pure, 3),
            DecisionTree::leaf(TreeAction::Mask)
        );
        // Depth 0 forces a majority leaf.
        let mixed = [
            TreeSample {
                features: [0.1; 5],
                action: TreeAction::Pass,
            },
            TreeSample {
                features: [0.9; 5],
                action: TreeAction::Mask,
            },
            TreeSample {
                features: [0.8; 5],
                action: TreeAction::Mask,
            },
        ];
        assert_eq!(
            DecisionTree::train(&mixed, 0),
            DecisionTree::leaf(TreeAction::Mask)
        );
    }
}
