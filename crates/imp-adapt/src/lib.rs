//! Adaptive prefetcher management.
//!
//! The simulator ends each epoch by distilling its prefetch-timeliness
//! ledger (plus traffic and TLB-pressure signals) into a
//! [`Feedback`] digest — [`EpochTracker`] does the delta bookkeeping —
//! and hands it to a [`Manager`]. The manager's policy answers with a
//! [`Control`]: throttle the prefetch degree, mask unproductive PCs, or
//! switch the running prefetcher to a different registry spec. Stock
//! policies:
//!
//! * `static` — never requests anything; a managed run with the
//!   `static` policy is bit-identical to an unmanaged run (golden-pinned
//!   by the simulator's regression tests).
//! * `throttle` — an accuracy/traffic feedback loop with hysteresis:
//!   when epoch accuracy drops below a floor it caps the prefetch
//!   degree and masks the PCs wasting the most traffic, releasing both
//!   once accuracy recovers.
//! * `tree` — an offline-trained [`DecisionTree`] over the epoch's
//!   rate features (accuracy, timeliness, evict rate, TLB drop rate),
//!   serialized through the spec string. The hand-built
//!   [`DecisionTree::paper_default`] encodes the demote-IMP-under-
//!   TLB-pressure rule; [`DecisionTree::train`] fits a fresh tree from
//!   labelled sweep samples.
//!
//! Managers are configured through the same [`PrefetcherSpec`] grammar
//! as prefetchers (`name:key=value,...`), e.g. `throttle:epoch=5000`,
//! and join a run's canonical input, so managed and unmanaged runs
//! content-address to different sweep cells.

use imp_common::config::{ParamValue, PrefetcherSpec};
use imp_common::stats::AccessClass;
use imp_common::{Cycle, FastMap, Pc};
use imp_obs::{Ledger, LedgerCounts};
use imp_prefetch::{Control, Feedback};

mod policy;
mod tree;

pub use policy::{StaticPolicy, ThrottlePolicy, TreePolicy};
pub use tree::{DecisionTree, TreeAction, TreeFeature, TreeSample};

/// Why a manager spec could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManagerError {
    /// The spec names a policy that does not exist.
    UnknownPolicy {
        /// The unresolvable name.
        name: String,
        /// The stock policy names, for the error message.
        known: Vec<String>,
    },
    /// The policy rejected a parameter.
    InvalidParam {
        /// The policy that rejected it.
        policy: String,
        /// The offending key.
        param: String,
        /// Human-readable explanation.
        reason: String,
    },
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::UnknownPolicy { name, known } => {
                write!(
                    f,
                    "unknown manager policy `{name}` (known: {})",
                    known.join(", ")
                )
            }
            ManagerError::InvalidParam {
                policy,
                param,
                reason,
            } => {
                write!(
                    f,
                    "manager `{policy}`: invalid parameter `{param}`: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for ManagerError {}

/// An epoch-driven management policy: sees one [`Feedback`] digest per
/// epoch, answers with a [`Control`] that holds until the next epoch.
pub trait ManagerPolicy {
    /// Stable policy name (the spec name that builds it).
    fn name(&self) -> &'static str;
    /// One epoch boundary: digest in, control out.
    fn on_epoch(&mut self, feedback: &Feedback) -> Control;
}

/// The manager: an epoch length plus a boxed policy, built from a
/// [`PrefetcherSpec`] (`static`, `throttle:accuracy_floor=0.5,...`, or
/// `tree:spec=(tlb<0.25?pass:switch_stream)`).
pub struct Manager {
    epoch_len: Cycle,
    policy: Box<dyn ManagerPolicy>,
    spec: PrefetcherSpec,
}

impl Manager {
    /// Default epoch length in cycles (`epoch` parameter).
    pub const DEFAULT_EPOCH: Cycle = 10_000;

    /// Builds a manager from a spec. Every policy accepts the common
    /// `epoch=<cycles>` parameter; unknown names and parameters are
    /// rejected so typos surface before a run starts.
    pub fn build(spec: &PrefetcherSpec) -> Result<Manager, ManagerError> {
        let epoch_len = match spec.get("epoch") {
            None => Self::DEFAULT_EPOCH,
            Some(v) => match v.as_u64() {
                Some(e) if e > 0 => e,
                _ => {
                    return Err(ManagerError::InvalidParam {
                        policy: spec.name.clone(),
                        param: "epoch".into(),
                        reason: format!("expected a positive cycle count, got {v}"),
                    })
                }
            },
        };
        let policy: Box<dyn ManagerPolicy> = match spec.name.as_str() {
            "static" => {
                reject_unknown_params(spec, &["epoch"])?;
                Box::new(StaticPolicy)
            }
            "throttle" => Box::new(ThrottlePolicy::from_spec(spec)?),
            "tree" => Box::new(TreePolicy::from_spec(spec)?),
            other => {
                return Err(ManagerError::UnknownPolicy {
                    name: other.to_string(),
                    known: vec!["static".into(), "throttle".into(), "tree".into()],
                })
            }
        };
        Ok(Manager {
            epoch_len,
            policy,
            spec: spec.clone(),
        })
    }

    /// Epoch length in cycles.
    pub fn epoch_len(&self) -> Cycle {
        self.epoch_len
    }

    /// The spec this manager was built from.
    pub fn spec(&self) -> &PrefetcherSpec {
        &self.spec
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Delivers one epoch's feedback to the policy.
    pub fn on_epoch(&mut self, feedback: &Feedback) -> Control {
        self.policy.on_epoch(feedback)
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("epoch_len", &self.epoch_len)
            .field("policy", &self.policy.name())
            .field("spec", &self.spec)
            .finish()
    }
}

fn reject_unknown_params(spec: &PrefetcherSpec, accepted: &[&str]) -> Result<(), ManagerError> {
    for key in spec.params.keys() {
        if !accepted.contains(&key.as_str()) {
            return Err(ManagerError::InvalidParam {
                policy: spec.name.clone(),
                param: key.clone(),
                reason: format!("accepted parameters: {}", accepted.join(", ")),
            });
        }
    }
    Ok(())
}

fn param_f64(spec: &PrefetcherSpec, key: &str, default: f64) -> Result<f64, ManagerError> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| ManagerError::InvalidParam {
            policy: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a number, got {v}"),
        }),
    }
}

fn param_u64(spec: &PrefetcherSpec, key: &str, default: u64) -> Result<u64, ManagerError> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| ManagerError::InvalidParam {
            policy: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a non-negative integer, got {v}"),
        }),
    }
}

fn param_u32(spec: &PrefetcherSpec, key: &str, default: u32) -> Result<u32, ManagerError> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v.as_u32().ok_or_else(|| ManagerError::InvalidParam {
            policy: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a non-negative integer, got {v}"),
        }),
    }
}

fn param_bool(spec: &PrefetcherSpec, key: &str, default: bool) -> Result<bool, ManagerError> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| ManagerError::InvalidParam {
            policy: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a boolean, got {v}"),
        }),
    }
}

fn param_str<'s>(spec: &'s PrefetcherSpec, key: &str) -> Result<Option<&'s str>, ManagerError> {
    match spec.get(key) {
        None => Ok(None),
        Some(ParamValue::Str(s)) => Ok(Some(s)),
        Some(v) => Err(ManagerError::InvalidParam {
            policy: spec.name.clone(),
            param: key.to_string(),
            reason: format!("expected a string, got {v}"),
        }),
    }
}

/// Turns a cumulative [`Ledger`] (plus cumulative traffic/TLB
/// counters) into per-epoch [`Feedback`] deltas.
///
/// The tracker snapshots everything it was shown at the previous epoch
/// boundary and subtracts; summed over all epochs the deltas equal the
/// cumulative totals exactly (property-tested), so nothing is lost or
/// double-counted at boundaries.
#[derive(Debug, Default)]
pub struct EpochTracker {
    epoch: u64,
    prev_start: Cycle,
    prev_total: LedgerCounts,
    prev_per_pc: FastMap<Pc, LedgerCounts>,
    prev_per_class: [LedgerCounts; AccessClass::ALL.len()],
    prev_per_hop: [LedgerCounts; imp_obs::MAX_HOPS],
    prev_demand_misses: u64,
    prev_tlb_drops: u64,
    prev_flit_hops: u64,
    prev_dram_bytes: u64,
}

fn sub_counts(now: &LedgerCounts, prev: &LedgerCounts) -> LedgerCounts {
    LedgerCounts {
        issued: now.issued - prev.issued,
        fills: now.fills - prev.fills,
        used: now.used - prev.used,
        late: now.late - prev.late,
        evicted_unused: now.evicted_unused - prev.evicted_unused,
    }
}

fn is_zero(c: &LedgerCounts) -> bool {
    c.issued == 0 && c.fills == 0 && c.used == 0 && c.late == 0 && c.evicted_unused == 0
}

impl EpochTracker {
    /// A fresh tracker (epoch 0 starts at cycle 0).
    pub fn new() -> Self {
        EpochTracker::default()
    }

    /// Epochs closed so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Closes the epoch ending at `end`: returns the delta between the
    /// cumulative counters passed now and those passed at the previous
    /// boundary, then re-snapshots. All counter arguments are
    /// *cumulative run totals*, not deltas.
    #[allow(clippy::too_many_arguments)]
    pub fn feedback(
        &mut self,
        ledger: &Ledger,
        end: Cycle,
        demand_misses: u64,
        tlb_prefetch_drops: u64,
        noc_flit_hops: u64,
        dram_bytes: u64,
    ) -> Feedback {
        let total = sub_counts(ledger.total(), &self.prev_total);
        let cur_pc = ledger.per_pc();
        let mut per_pc = Vec::new();
        for (pc, c) in &cur_pc {
            let prev = self.prev_per_pc.get(pc).copied().unwrap_or_default();
            let d = sub_counts(c, &prev);
            if !is_zero(&d) {
                per_pc.push((*pc, d));
            }
        }
        let cur_class = ledger.per_class();
        let mut per_class: [LedgerCounts; AccessClass::ALL.len()] = Default::default();
        for (i, c) in cur_class.iter().enumerate() {
            per_class[i] = sub_counts(c, &self.prev_per_class[i]);
        }
        let cur_hop = ledger.per_hop();
        let mut per_hop: [LedgerCounts; imp_obs::MAX_HOPS] = Default::default();
        for (i, c) in cur_hop.iter().enumerate() {
            per_hop[i] = sub_counts(c, &self.prev_per_hop[i]);
        }
        let fb = Feedback {
            epoch: self.epoch,
            start: self.prev_start,
            end,
            total,
            per_pc,
            per_class,
            per_hop,
            demand_misses: demand_misses - self.prev_demand_misses,
            tlb_prefetch_drops: tlb_prefetch_drops - self.prev_tlb_drops,
            noc_flit_hops: noc_flit_hops - self.prev_flit_hops,
            dram_bytes: dram_bytes - self.prev_dram_bytes,
        };
        self.epoch += 1;
        self.prev_start = end;
        self.prev_total = *ledger.total();
        self.prev_per_pc = cur_pc.into_iter().collect();
        self.prev_per_class = *cur_class;
        self.prev_per_hop = *cur_hop;
        self.prev_demand_misses = demand_misses;
        self.prev_tlb_drops = tlb_prefetch_drops;
        self.prev_flit_hops = noc_flit_hops;
        self.prev_dram_bytes = dram_bytes;
        fb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::LineAddr;

    fn spec(s: &str) -> PrefetcherSpec {
        s.parse().unwrap()
    }

    #[test]
    fn build_resolves_stock_policies() {
        for (name, policy) in [
            ("static", "static"),
            ("throttle", "throttle"),
            ("tree", "tree"),
            ("static:epoch=5000", "static"),
        ] {
            let m = Manager::build(&spec(name)).unwrap();
            assert_eq!(m.policy_name(), policy);
        }
        assert_eq!(
            Manager::build(&spec("static")).unwrap().epoch_len(),
            Manager::DEFAULT_EPOCH
        );
        assert_eq!(
            Manager::build(&spec("static:epoch=5000"))
                .unwrap()
                .epoch_len(),
            5000
        );
    }

    #[test]
    fn build_rejects_bad_specs() {
        assert!(matches!(
            Manager::build(&spec("puppeteer")),
            Err(ManagerError::UnknownPolicy { .. })
        ));
        assert!(matches!(
            Manager::build(&spec("static:epoch=0")),
            Err(ManagerError::InvalidParam { .. })
        ));
        assert!(matches!(
            Manager::build(&spec("static:bogus=1")),
            Err(ManagerError::InvalidParam { .. })
        ));
        assert!(matches!(
            Manager::build(&spec("throttle:accuracy_floor=yes")),
            Err(ManagerError::InvalidParam { .. })
        ));
    }

    #[test]
    fn tracker_deltas_cover_the_run_without_overlap() {
        let mut ledger = Ledger::default();
        let mut tracker = EpochTracker::new();
        let pc = Pc::new(7);
        let line = |i: u64| LineAddr::containing(imp_common::Addr::new(0x1000 + 64 * i));

        ledger.issue(0, line(0), pc, AccessClass::Stream, 0, 10);
        ledger.issue(0, line(1), pc, AccessClass::Stream, 0, 20);
        ledger.fill(0, line(0), 30);
        let fb0 = tracker.feedback(&ledger, 100, 5, 1, 100, 640);
        assert_eq!(fb0.epoch, 0);
        assert_eq!((fb0.start, fb0.end), (0, 100));
        assert_eq!(fb0.total.issued, 2);
        assert_eq!(fb0.total.fills, 1);
        assert_eq!(fb0.demand_misses, 5);
        assert_eq!(fb0.tlb_prefetch_drops, 1);

        // Epoch 1: the line issued in epoch 0 is used now — the delta
        // credits it to this epoch without touching epoch 0's counts.
        ledger.fill(0, line(1), 110);
        ledger.first_use(0, line(0), 120);
        ledger.first_use(0, line(1), 130);
        let fb1 = tracker.feedback(&ledger, 200, 8, 1, 250, 1280);
        assert_eq!(fb1.epoch, 1);
        assert_eq!((fb1.start, fb1.end), (100, 200));
        assert_eq!(fb1.total.issued, 0);
        assert_eq!(fb1.total.used, 2);
        assert_eq!(fb1.demand_misses, 3);
        assert_eq!(fb1.tlb_prefetch_drops, 0);
        assert_eq!(fb1.noc_flit_hops, 150);
        assert_eq!(fb1.dram_bytes, 640);

        // Summed deltas equal the cumulative ledger.
        let mut sum = LedgerCounts::default();
        for fb in [&fb0, &fb1] {
            sum.issued += fb.total.issued;
            sum.fills += fb.total.fills;
            sum.used += fb.total.used;
            sum.late += fb.total.late;
            sum.evicted_unused += fb.total.evicted_unused;
        }
        assert_eq!(&sum, ledger.total());
        // Per-PC deltas reconcile too; all-zero PCs are omitted.
        assert_eq!(fb1.per_pc.len(), 1);
        assert_eq!(fb1.per_pc[0].0, pc);
    }
}
