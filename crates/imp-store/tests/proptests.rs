//! Property tests for the `.impres` encoding and the cell digest:
//! arbitrary records round-trip bit-exactly, digests are stable, and no
//! single-byte corruption is ever silently accepted.
//!
//! The offline proptest shim generates integers only, so strings, bools
//! and floats are derived from integer draws via `prop_map`.

use imp_common::config::{
    PagePolicy, ParamValue, PartialMode, PrefetcherSpec, TlbConfig, TranslationPolicy, WalkModel,
};
use imp_common::stats::{CoreStats, PrefetchStats, SystemStats, TlbStats, TrafficStats};
use imp_store::{cell_digest, digest_hex, CellKey, StoredResult};
use proptest::prelude::*;

/// Lowercase-word string derived from integer draws (the shim has no
/// regex strategies).
fn word(seed: u64, max_len: usize) -> String {
    let mut s = String::new();
    let mut x = seed;
    for _ in 0..(seed as usize % (max_len + 1)) {
        s.push(char::from(b'a' + (x % 26) as u8));
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    s
}

fn param_from(tag: u8, i: i64, fbits: u64) -> ParamValue {
    match tag % 4 {
        0 => ParamValue::Bool(i & 1 == 1),
        1 => ParamValue::Int(i),
        2 => {
            // NaNs don't compare equal, so pin non-finite floats; bit
            // patterns of finite floats must still survive exactly.
            let f = f64::from_bits(fbits);
            ParamValue::Float(if f.is_finite() { f } else { 0.25 })
        }
        _ => ParamValue::Str(format!("s{fbits}")),
    }
}

fn policy_from(tag: u8, threshold: u64) -> PagePolicy {
    match tag % 3 {
        0 => PagePolicy::Base4K,
        1 => PagePolicy::Huge2M,
        _ => PagePolicy::Auto {
            threshold_bytes: threshold,
        },
    }
}

fn tlb_from(words: (u8, u32, u32, u64, u64), tags: (u8, u8, u8, u8)) -> TlbConfig {
    let (ideal, sets, ways, page_bytes, walk_latency) = words;
    let (policy, walk_model, walk_dram_traffic, tlb_prefetch) = tags;
    TlbConfig {
        ideal: ideal & 1 == 1,
        sets,
        ways,
        page_bytes,
        walk_latency,
        policy: [
            TranslationPolicy::DropOnMiss,
            TranslationPolicy::NonBlockingWalk,
            TranslationPolicy::Ideal,
        ][(policy % 3) as usize],
        walk_dram_traffic: walk_dram_traffic & 1 == 1,
        l2_sets: sets / 2,
        l2_ways: ways,
        l2_latency: walk_latency / 3,
        tlb_prefetch: tlb_prefetch & 1 == 1,
        walk_model: [WalkModel::Flat, WalkModel::Cached][(walk_model % 2) as usize],
        huge_sets: sets % 17,
        huge_ways: ways % 5,
    }
}

fn core_from(w: [u64; 14]) -> CoreStats {
    CoreStats {
        instructions: w[0],
        done_cycle: w[1],
        stall_cycles: [w[2], w[3], w[4]],
        barrier_cycles: w[5],
        l1_accesses: w[6],
        l1_misses: [w[7], w[8], w[9]],
        l1_hits: w[10],
        mem_latency_sum: w[11],
        mem_latency_count: w[12],
        walk_stall_cycles: w[13],
    }
}

fn tlb_stats_from(w: &[u64]) -> TlbStats {
    TlbStats {
        hits: w[0],
        misses: w[1],
        evictions: w[2],
        cold_fills: w[3],
        walk_cycles: w[4],
        walk_levels: w[5],
        prefetch_hits: w[6],
        prefetch_drops: w[7],
        prefetch_walks: w[8],
    }
}

fn words_strategy() -> impl Strategy<Value = [u64; 14]> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(a, b, c, d, e, f)| {
            [
                a,
                b,
                c,
                d,
                e,
                f,
                a.wrapping_mul(3),
                b.rotate_left(13),
                c ^ d,
                e.wrapping_add(f),
                a.rotate_right(7),
                d ^ f,
                e.rotate_left(29),
                b.wrapping_sub(c),
            ]
        })
}

fn record_strategy() -> impl Strategy<Value = StoredResult> {
    (
        // Cell coordinates: canonical tail, cores, seed, prefetcher.
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(
                (
                    any::<u64>(),
                    (any::<u8>(), any::<i64>(), any::<u64>())
                        .prop_map(|(t, i, f)| param_from(t, i, f)),
                ),
                0..4,
            ),
            any::<u8>(),
        ),
        // TLB config.
        (
            (
                any::<u8>(),
                any::<u32>(),
                any::<u32>(),
                any::<u64>(),
                any::<u64>(),
            ),
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
        ),
        // Page policies.
        proptest::collection::vec(
            (
                any::<u64>(),
                (any::<u8>(), any::<u64>()).prop_map(|(t, th)| policy_from(t, th)),
            ),
            0..4,
        ),
        // Stats: per-core word blocks + scalar sections.
        proptest::collection::vec(words_strategy(), 0..4),
        (words_strategy(), words_strategy(), any::<u64>()),
    )
        .prop_map(
            |(coords, tlb_cfg, policies, core_words, (pw, tw, runtime))| {
                let (canon_seed, cores, seed, name_seed, params, partial) = coords;
                let mut prefetcher = PrefetcherSpec::new(format!("p{}", word(name_seed, 8)));
                for (i, (k, v)) in params.into_iter().enumerate() {
                    prefetcher.params.insert(format!("k{i}{}", word(k, 6)), v);
                }
                // Roughly a third of cells run unmanaged; managed ones
                // sometimes carry a parameter so both spec shapes
                // round-trip.
                let manager = (seed % 3 != 0).then(|| {
                    let mut m = PrefetcherSpec::new(format!("m{}", word(name_seed, 5)));
                    if partial % 2 == 0 {
                        m.params.insert("floor".to_string(), param_from(2, 0, seed));
                    }
                    m
                });
                let cell = CellKey {
                    workload: format!("w{}", cores % 7),
                    cores,
                    prefetcher,
                    manager,
                    partial: [
                        PartialMode::Off,
                        PartialMode::NocOnly,
                        PartialMode::NocAndDram,
                    ][(partial % 3) as usize],
                    tlb: tlb_from(tlb_cfg.0, tlb_cfg.1),
                    page_policy: policies
                        .into_iter()
                        .enumerate()
                        .map(|(i, (r, p))| (format!("r{i}{}", word(r, 6)), p))
                        .collect(),
                    seed,
                };
                let n = core_words.len();
                let stats = SystemStats {
                    runtime,
                    cores: core_words.iter().map(|w| core_from(*w)).collect(),
                    prefetch: core_words
                        .iter()
                        .map(|w| PrefetchStats {
                            issued_stream: w[0],
                            issued_indirect: w[13],
                            useful: w[5],
                            unused: w[7],
                            late: w[2],
                            covered: w[3],
                            generated_indirect: w[11],
                            ..PrefetchStats::default()
                        })
                        .collect(),
                    tlb: core_words.iter().map(|w| tlb_stats_from(&w[..9])).collect(),
                    tlb_huge: if n % 2 == 0 {
                        Vec::new()
                    } else {
                        core_words
                            .iter()
                            .map(|w| tlb_stats_from(&w[5..14]))
                            .collect()
                    },
                    tlb_l2: tlb_stats_from(&pw[..9]),
                    traffic: TrafficStats {
                        noc_flit_hops: tw[0],
                        noc_messages: tw[1],
                        dram_read_bytes: tw[2],
                        dram_write_bytes: tw[3],
                        dram_accesses: tw[4],
                    },
                };
                StoredResult {
                    canonical: format!("{}|{}|{}", cell.workload, cores, word(canon_seed, 24)),
                    cell,
                    stats,
                }
            },
        )
}

proptest! {
    /// The digest is a pure function of the canonical string: equal
    /// strings digest equal, and the hex form round-trips the value.
    #[test]
    fn digest_is_stable(seed in any::<u64>()) {
        let canonical = word(seed, 64);
        let d1 = cell_digest(&canonical);
        let d2 = cell_digest(&canonical.clone());
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(digest_hex(d1).len(), 16);
        prop_assert_eq!(u64::from_str_radix(&digest_hex(d1), 16).unwrap(), d1);
    }

    /// Arbitrary records survive encode → decode **bit-identically**,
    /// and re-encoding the decode is byte-stable.
    #[test]
    fn impres_roundtrip(record in record_strategy()) {
        let bytes = record.to_bytes();
        let back = StoredResult::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &record);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Any single flipped byte is rejected, never silently accepted:
    /// a corrupted store can only ever cause a re-simulation.
    #[test]
    fn impres_detects_any_single_byte_flip(
        record in record_strategy(),
        flip_at in any::<u64>(),
        flip_bits in 1u8..=255,
    ) {
        let bytes = record.to_bytes();
        let mut bad = bytes.clone();
        let i = (flip_at % bytes.len() as u64) as usize;
        bad[i] ^= flip_bits;
        prop_assert!(StoredResult::from_bytes(&bad).is_err(), "flip at byte {} accepted", i);
    }
}
