//! The on-disk store: a directory of `.impres` records addressed by
//! content digest.

use crate::digest::{cell_digest, digest_hex};
use crate::record::{StoreError, StoredResult};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A content-addressed directory of sweep results.
///
/// Records live under `<root>/<digest[..2]>/<digest>.impres` (the
/// two-hex-digit shard keeps any single directory from growing into the
/// millions). All methods take `&self` and are safe to share across the
/// sweep worker threads: reads are independent, and writes go through a
/// unique temporary file renamed into place, so concurrent writers of
/// the same cell race benignly — last rename wins with identical
/// contents.
///
/// A `get` never trusts the digest alone: the record's stored canonical
/// string must equal the queried one, a checksum mismatch (bit rot,
/// torn write) is a miss, and a record from a newer format version is a
/// miss — the caller re-simulates and overwrites. Only genuine I/O
/// errors (permissions, disk failure) surface as `Err`.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    puts: AtomicU64,
}

/// A snapshot of a store's per-process traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// `get`s served from disk.
    pub hits: u64,
    /// `get`s that found no record.
    pub misses: u64,
    /// `get`s that found a record but refused it (checksum mismatch,
    /// canonical mismatch, unreadable format) — also counted as misses.
    pub rejected: u64,
    /// Records written.
    pub puts: u64,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Filesystem failures creating the root surface as
    /// [`StoreError::Io`].
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ResultStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where the record for `canonical` lives (whether or not it
    /// exists yet): `<root>/<digest[..2]>/<digest>.impres`.
    pub fn path_for(&self, canonical: &str) -> PathBuf {
        let hex = digest_hex(cell_digest(canonical));
        self.root.join(&hex[..2]).join(format!("{hex}.impres"))
    }

    /// Looks the result for `canonical` up.
    ///
    /// Returns `Ok(None)` on a miss — including the *defensive* misses:
    /// a record whose checksum no longer matches, whose format version
    /// is unknown, or whose stored canonical string differs from the
    /// queried one (digest collision or stale canonical scheme). The
    /// caller's contract is simply: `None` ⇒ simulate and `put`.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permission denied, disk errors);
    /// a missing file is a miss, not an error.
    pub fn get(&self, canonical: &str) -> Result<Option<StoredResult>, StoreError> {
        let path = self.path_for(canonical);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        match StoredResult::from_bytes(&bytes) {
            Ok(record) if record.canonical == canonical => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(record))
            }
            // Collision, corruption, or an unreadable version: treat as
            // a miss so the caller re-simulates instead of serving
            // garbage; the subsequent `put` overwrites the bad record.
            Ok(_) | Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    /// Persists `record` under its canonical string's digest.
    ///
    /// The write is atomic at the filesystem level: bytes go to a
    /// unique temporary file in the same shard directory, then rename
    /// into place — a reader never observes a half-written record.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`StoreError::Io`].
    pub fn put(&self, record: &StoredResult) -> Result<PathBuf, StoreError> {
        let path = self.path_for(&record.canonical);
        let dir = path.parent().expect("sharded path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".{}.{}.tmp",
            path.file_name()
                .expect("sharded path has a file name")
                .to_string_lossy(),
            std::process::id(),
        ));
        std::fs::write(&tmp, record.to_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            std::fs::remove_file(&tmp).ok();
            return Err(StoreError::Io(e));
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }

    /// This process's traffic against the store so far.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    /// Number of `.impres` records currently on disk (a directory walk;
    /// meant for manifests and tests, not hot paths).
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`StoreError::Io`].
    pub fn len(&self) -> Result<usize, StoreError> {
        let mut n = 0;
        for shard in std::fs::read_dir(&self.root)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "impres") {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Whether the store holds no records.
    ///
    /// # Errors
    ///
    /// See [`ResultStore::len`].
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::stats::SystemStats;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("impstore-{tag}-{}", std::process::id()))
    }

    fn record(canonical: &str) -> StoredResult {
        StoredResult {
            canonical: canonical.to_string(),
            cell: crate::CellKey {
                workload: "spmv".to_string(),
                cores: 4,
                seed: 1,
                ..crate::CellKey::default()
            },
            stats: SystemStats {
                runtime: 42,
                ..SystemStats::default()
            },
        }
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let dir = scratch("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty().unwrap());
        assert!(store.get("cell-a").unwrap().is_none());

        let rec = record("cell-a");
        let path = store.put(&rec).unwrap();
        assert!(path.starts_with(&dir));
        assert_eq!(store.len().unwrap(), 1);
        assert_eq!(store.get("cell-a").unwrap().as_ref(), Some(&rec));
        assert!(store.get("cell-b").unwrap().is_none());

        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.rejected, c.puts), (1, 2, 0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_reads_as_miss() {
        let dir = scratch("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        let rec = record("cell-x");
        let path = store.put(&rec).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(store.get("cell-x").unwrap(), None);
        assert_eq!(store.counters().rejected, 1);

        // A fresh put repairs it.
        store.put(&rec).unwrap();
        assert_eq!(store.get("cell-x").unwrap().as_ref(), Some(&rec));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn colliding_digest_with_different_canonical_is_a_miss() {
        let dir = scratch("collide");
        let store = ResultStore::open(&dir).unwrap();
        let rec = record("real-canonical");
        // Force a "collision": drop a record for a different canonical
        // at the path `get("impostor")` would look up.
        let impostor_path = store.path_for("impostor");
        std::fs::create_dir_all(impostor_path.parent().unwrap()).unwrap();
        std::fs::write(&impostor_path, rec.to_bytes()).unwrap();

        assert_eq!(store.get("impostor").unwrap(), None);
        assert_eq!(store.counters().rejected, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paths_are_sharded_by_digest_prefix() {
        let dir = scratch("shard");
        let store = ResultStore::open(&dir).unwrap();
        let hex = digest_hex(cell_digest("abc"));
        let path = store.path_for("abc");
        assert_eq!(path, dir.join(&hex[..2]).join(format!("{hex}.impres")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
