//! Content digests: canonical input string → stable 64-bit address.

use imp_common::fnv1a;

/// Digest of a cell's canonical input string.
///
/// FNV-1a over the UTF-8 bytes — cheap, dependency-free, and stable
/// across platforms and runs. Sixty-four bits is plenty as an *address*
/// because the store never trusts it as an *identity*: every `.impres`
/// record carries its canonical string and [`crate::ResultStore::get`]
/// compares it before serving, so a collision degrades to a cache miss.
pub fn cell_digest(canonical: &str) -> u64 {
    fnv1a(canonical.as_bytes())
}

/// The digest as the fixed-width hex string used in store paths and
/// manifests (16 lowercase hex digits, zero-padded).
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_distinguishes() {
        assert_eq!(cell_digest("x"), cell_digest("x"));
        assert_ne!(cell_digest("x"), cell_digest("y"));
        // Pinned value: the digest is part of the on-disk contract.
        assert_eq!(cell_digest(""), 0xcbf29ce484222325);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(digest_hex(0), "0000000000000000");
        assert_eq!(digest_hex(0xdeadbeef), "00000000deadbeef");
        assert_eq!(digest_hex(u64::MAX), "ffffffffffffffff");
    }
}
