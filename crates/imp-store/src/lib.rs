//! # imp-store — the content-addressed sweep result store
//!
//! Every figure in the paper is a sweep grid, and most of a re-run's
//! cells are cells some earlier run already simulated. This crate makes
//! that observation structural: each sweep cell is identified by a
//! stable 64-bit digest of its *canonical input* (the full rendering of
//! everything that determines the simulated outcome — workload, cores,
//! seed, prefetcher spec, TLB config, page policies, partial mode, and
//! the rest of the [`imp_common::SystemConfig`] timing surface), and its
//! [`imp_common::SystemStats`] result persists on disk under
//! `<store>/<digest[..2]>/<digest>.impres`.
//!
//! The `.impres` container follows the same magic + version + FNV-1a
//! checksum discipline as `.imptrace`: corruption is detected on read
//! (and surfaces as a *miss*, never as garbage data), newer versions are
//! rejected, and the canonical string is stored verbatim in the record
//! so a digest collision — or a stale record hashed under an older
//! canonical scheme — is caught by direct comparison, not trusted.
//!
//! ```
//! use imp_store::{cell_digest, digest_hex, CellKey, ResultStore, StoredResult};
//! use imp_common::stats::SystemStats;
//!
//! let dir = std::env::temp_dir().join(format!("impstore-doc-{}", std::process::id()));
//! let store = ResultStore::open(&dir).unwrap();
//!
//! let canonical = "demo-cell-v1";
//! let record = StoredResult {
//!     canonical: canonical.to_string(),
//!     cell: CellKey::default(),
//!     stats: SystemStats::default(),
//! };
//! assert!(store.get(canonical).unwrap().is_none()); // cold
//! store.put(&record).unwrap();
//! let back = store.get(canonical).unwrap().expect("warm");
//! assert_eq!(back.stats, record.stats);
//! assert_eq!(store.path_for(canonical).file_name().unwrap().to_str().unwrap(),
//!            format!("{}.impres", digest_hex(cell_digest(canonical))));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! Higher layers: `imp_experiments::Sweep::store` routes whole sweep
//! grids through a store, and the `imp-sweepd` binary turns that into a
//! long-running service that only ever simulates cells nobody has
//! simulated before.

mod digest;
mod record;
mod store;

pub use digest::{cell_digest, digest_hex};
pub use record::{CellKey, StoreError, StoredResult, MAGIC, VERSION};
pub use store::{ResultStore, StoreCounters};
