//! The versioned binary `.impres` container: one sweep cell's result.
//!
//! ## Layout (all integers little-endian)
//!
//! | section | encoding |
//! |---|---|
//! | magic | 8 bytes, `b"IMPRESLT"` |
//! | version | `u32`, currently 2 |
//! | canonical | `u32` length + UTF-8 bytes |
//! | cell key | workload, cores, seed, prefetcher, manager, partial, TLB, page policies |
//! | stats | runtime + per-core vectors + L2-TLB + traffic, `u64` words |
//! | checksum | `u64` FNV-1a over everything before it |
//!
//! The canonical string is stored *verbatim* (not just its digest) so a
//! reader can verify the record answers the exact question being asked;
//! [`crate::ResultStore::get`] treats any mismatch as a miss. Parameter
//! values in the prefetcher spec carry a type tag byte so `Str("8")`
//! survives the round-trip without collapsing into `Int(8)` — results
//! must come back **bit-identical**, not merely equivalent.

use imp_common::config::{
    PagePolicy, ParamValue, PartialMode, PrefetcherSpec, TlbConfig, TranslationPolicy, WalkModel,
};
use imp_common::fnv1a;
use imp_common::stats::{CoreStats, PrefetchStats, SystemStats, TlbStats, TrafficStats};
use std::fmt;
use std::path::Path;

/// File magic: the first eight bytes of every `.impres` file.
pub const MAGIC: [u8; 8] = *b"IMPRESLT";

/// Current format version written by [`StoredResult::to_bytes`].
///
/// Bump this when a code change alters simulated *timing* without
/// changing any config knob — stale results must become unreadable, not
/// silently wrong.
///
/// History: 1 → 2 added the optional adaptive-manager spec to the cell
/// key (a presence byte followed by a spec when present). Version-1
/// records — all necessarily unmanaged — become cache misses rather
/// than being grandfathered in, keeping the reader single-version.
pub const VERSION: u32 = 2;

/// Why a stored result could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file ended before a section was complete.
    Truncated {
        /// Which section was being read.
        section: &'static str,
        /// Bytes the section needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// A string section is not valid UTF-8.
    BadUtf8(&'static str),
    /// An enum tag byte is out of range.
    BadTag {
        /// Which section held the byte.
        section: &'static str,
        /// The offending value.
        value: u8,
    },
    /// The stored checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the bytes actually read.
        computed: u64,
    },
    /// The file has bytes after the checksum trailer.
    TrailingBytes(usize),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not an .impres file (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(
                f,
                "unsupported .impres version {v} (reader supports {VERSION})"
            ),
            StoreError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "truncated .impres: {section} needs {needed} bytes, {available} left"
            ),
            StoreError::BadUtf8(section) => write!(f, "{section} is not valid UTF-8"),
            StoreError::BadTag { section, value } => {
                write!(f, "unknown {section} tag byte {value:#x}")
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            StoreError::TrailingBytes(n) => {
                write!(f, "{n} unexpected bytes after the checksum trailer")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The sweep-cell coordinates a stored result was simulated under.
///
/// Mirrors `imp_experiments::SweepCell` field for field, but lives here
/// (built only from `imp-common` types) so the store does not depend on
/// the experiment layer. The *identity* of a record is its canonical
/// string; the key is carried so manifests and debugging tools can
/// reconstruct the grid coordinates without re-parsing canonicals.
#[derive(Clone, Debug, PartialEq)]
pub struct CellKey {
    /// Workload name (`Sim::workload` argument).
    pub workload: String,
    /// Simulated core count.
    pub cores: u32,
    /// The prefetcher configuration.
    pub prefetcher: PrefetcherSpec,
    /// Adaptive-management policy spec (`None` = unmanaged).
    pub manager: Option<PrefetcherSpec>,
    /// Partial cacheline accessing mode.
    pub partial: PartialMode,
    /// dTLB / page-walk configuration.
    pub tlb: TlbConfig,
    /// Per-region page-size policy overrides, in application order.
    pub page_policy: Vec<(String, PagePolicy)>,
    /// Workload generation seed.
    pub seed: u64,
}

impl Default for CellKey {
    fn default() -> Self {
        CellKey {
            workload: String::new(),
            cores: 0,
            prefetcher: PrefetcherSpec::default(),
            manager: None,
            partial: PartialMode::default(),
            tlb: TlbConfig::ideal(),
            page_policy: Vec::new(),
            seed: 0,
        }
    }
}

/// One persisted sweep-cell result: the canonical input it answers, the
/// grid coordinates it was simulated at, and the stats it produced.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredResult {
    /// Full canonical input string (the digest preimage).
    pub canonical: String,
    /// Grid coordinates.
    pub cell: CellKey,
    /// The simulation outcome.
    pub stats: SystemStats,
}

impl StoredResult {
    /// Serializes to the `.impres` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.canonical.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_str(&mut out, &self.canonical);
        encode_cell(&self.cell, &mut out);
        encode_stats(&self.stats, &mut out);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses the `.impres` byte layout.
    ///
    /// # Errors
    ///
    /// Any structural defect — wrong magic, newer version, truncation,
    /// invalid tag bytes, checksum mismatch — comes back as the matching
    /// [`StoreError`] variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Truncated {
                section: "checksum trailer",
                needed: 8,
                available: bytes.len(),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader { buf: body, pos: 0 };
        if r.take("magic", MAGIC.len())? != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let canonical = r.string("canonical")?;
        let cell = decode_cell(&mut r)?;
        let stats = decode_stats(&mut r)?;
        if r.pos != body.len() {
            return Err(StoreError::TrailingBytes(body.len() - r.pos));
        }
        Ok(StoredResult {
            canonical,
            cell,
            stats,
        })
    }

    /// Writes the record to `path` (conventionally `*.impres`).
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`StoreError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Reads a record back from `path`.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`StoreError::Io`]; malformed
    /// contents as the other [`StoreError`] variants.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_spec(out: &mut Vec<u8>, spec: &PrefetcherSpec) {
    put_str(out, &spec.name);
    out.extend_from_slice(&(spec.params.len() as u32).to_le_bytes());
    for (key, value) in &spec.params {
        put_str(out, key);
        match value {
            ParamValue::Bool(b) => {
                out.push(0);
                out.push(u8::from(*b));
            }
            ParamValue::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ParamValue::Float(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            ParamValue::Str(s) => {
                out.push(3);
                put_str(out, s);
            }
        }
    }
}

fn encode_cell(cell: &CellKey, out: &mut Vec<u8>) {
    put_str(out, &cell.workload);
    out.extend_from_slice(&cell.cores.to_le_bytes());
    out.extend_from_slice(&cell.seed.to_le_bytes());

    put_spec(out, &cell.prefetcher);
    match &cell.manager {
        None => out.push(0),
        Some(spec) => {
            out.push(1);
            put_spec(out, spec);
        }
    }

    out.push(match cell.partial {
        PartialMode::Off => 0,
        PartialMode::NocOnly => 1,
        PartialMode::NocAndDram => 2,
    });

    let tlb = &cell.tlb;
    out.push(u8::from(tlb.ideal));
    out.extend_from_slice(&tlb.sets.to_le_bytes());
    out.extend_from_slice(&tlb.ways.to_le_bytes());
    out.extend_from_slice(&tlb.page_bytes.to_le_bytes());
    out.extend_from_slice(&tlb.walk_latency.to_le_bytes());
    out.push(match tlb.policy {
        TranslationPolicy::DropOnMiss => 0,
        TranslationPolicy::NonBlockingWalk => 1,
        TranslationPolicy::Ideal => 2,
    });
    out.push(u8::from(tlb.walk_dram_traffic));
    out.extend_from_slice(&tlb.l2_sets.to_le_bytes());
    out.extend_from_slice(&tlb.l2_ways.to_le_bytes());
    out.extend_from_slice(&tlb.l2_latency.to_le_bytes());
    out.push(u8::from(tlb.tlb_prefetch));
    out.push(match tlb.walk_model {
        WalkModel::Flat => 0,
        WalkModel::Cached => 1,
    });
    out.extend_from_slice(&tlb.huge_sets.to_le_bytes());
    out.extend_from_slice(&tlb.huge_ways.to_le_bytes());

    out.extend_from_slice(&(cell.page_policy.len() as u32).to_le_bytes());
    for (region, policy) in &cell.page_policy {
        put_str(out, region);
        match policy {
            PagePolicy::Base4K => out.push(0),
            PagePolicy::Huge2M => out.push(1),
            PagePolicy::Auto { threshold_bytes } => {
                out.push(2);
                out.extend_from_slice(&threshold_bytes.to_le_bytes());
            }
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<PrefetcherSpec, StoreError> {
    let name = r.string("spec name")?;
    let mut spec = PrefetcherSpec::new(name);
    let n_params = r.u32("param count")? as usize;
    for _ in 0..n_params {
        let key = r.string("param key")?;
        let value = match r.byte("param tag")? {
            0 => ParamValue::Bool(r.byte("param bool")? != 0),
            1 => ParamValue::Int(i64::from_le_bytes(
                r.take("param int", 8)?.try_into().expect("8 bytes"),
            )),
            2 => ParamValue::Float(f64::from_bits(r.u64("param float")?)),
            3 => ParamValue::Str(r.string("param string")?),
            value => {
                return Err(StoreError::BadTag {
                    section: "param value",
                    value,
                })
            }
        };
        spec.params.insert(key, value);
    }
    Ok(spec)
}

fn decode_cell(r: &mut Reader<'_>) -> Result<CellKey, StoreError> {
    let workload = r.string("workload")?;
    let cores = r.u32("cores")?;
    let seed = r.u64("seed")?;

    let prefetcher = read_spec(r)?;
    let manager = match r.byte("manager presence")? {
        0 => None,
        1 => Some(read_spec(r)?),
        value => {
            return Err(StoreError::BadTag {
                section: "manager presence",
                value,
            })
        }
    };

    let partial = match r.byte("partial mode")? {
        0 => PartialMode::Off,
        1 => PartialMode::NocOnly,
        2 => PartialMode::NocAndDram,
        value => {
            return Err(StoreError::BadTag {
                section: "partial mode",
                value,
            })
        }
    };

    let tlb = TlbConfig {
        ideal: r.byte("tlb ideal")? != 0,
        sets: r.u32("tlb sets")?,
        ways: r.u32("tlb ways")?,
        page_bytes: r.u64("tlb page bytes")?,
        walk_latency: r.u64("tlb walk latency")?,
        policy: match r.byte("translation policy")? {
            0 => TranslationPolicy::DropOnMiss,
            1 => TranslationPolicy::NonBlockingWalk,
            2 => TranslationPolicy::Ideal,
            value => {
                return Err(StoreError::BadTag {
                    section: "translation policy",
                    value,
                })
            }
        },
        walk_dram_traffic: r.byte("walk dram traffic")? != 0,
        l2_sets: r.u32("l2 tlb sets")?,
        l2_ways: r.u32("l2 tlb ways")?,
        l2_latency: r.u64("l2 tlb latency")?,
        tlb_prefetch: r.byte("tlb prefetch")? != 0,
        walk_model: match r.byte("walk model")? {
            0 => WalkModel::Flat,
            1 => WalkModel::Cached,
            value => {
                return Err(StoreError::BadTag {
                    section: "walk model",
                    value,
                })
            }
        },
        huge_sets: r.u32("huge tlb sets")?,
        huge_ways: r.u32("huge tlb ways")?,
    };

    let n_policies = r.u32("page policy count")? as usize;
    let mut page_policy = Vec::with_capacity(n_policies.min(r.remaining()));
    for _ in 0..n_policies {
        let region = r.string("page policy region")?;
        let policy = match r.byte("page policy tag")? {
            0 => PagePolicy::Base4K,
            1 => PagePolicy::Huge2M,
            2 => PagePolicy::Auto {
                threshold_bytes: r.u64("page policy threshold")?,
            },
            value => {
                return Err(StoreError::BadTag {
                    section: "page policy",
                    value,
                })
            }
        };
        page_policy.push((region, policy));
    }

    Ok(CellKey {
        workload,
        cores,
        prefetcher,
        manager,
        partial,
        tlb,
        page_policy,
        seed,
    })
}

/// `u64` words one [`CoreStats`] occupies on disk.
const CORE_WORDS: usize = 14;
/// `u64` words one [`PrefetchStats`] occupies on disk.
const PREFETCH_WORDS: usize = 14;
/// `u64` words one [`TlbStats`] occupies on disk.
const TLB_WORDS: usize = 9;

fn encode_stats(stats: &SystemStats, out: &mut Vec<u8>) {
    out.extend_from_slice(&stats.runtime.to_le_bytes());

    out.extend_from_slice(&(stats.cores.len() as u32).to_le_bytes());
    for c in &stats.cores {
        for w in [
            c.instructions,
            c.done_cycle,
            c.stall_cycles[0],
            c.stall_cycles[1],
            c.stall_cycles[2],
            c.barrier_cycles,
            c.l1_accesses,
            c.l1_misses[0],
            c.l1_misses[1],
            c.l1_misses[2],
            c.l1_hits,
            c.mem_latency_sum,
            c.mem_latency_count,
            c.walk_stall_cycles,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    out.extend_from_slice(&(stats.prefetch.len() as u32).to_le_bytes());
    for p in &stats.prefetch {
        for w in [
            p.issued_stream,
            p.issued_indirect,
            p.useful,
            p.unused,
            p.late,
            p.covered,
            p.patterns_detected,
            p.detect_failures,
            p.partial_prefetches,
            p.value_unavailable,
            p.deferred_drops,
            p.deferred_retries,
            p.mshr_drops,
            p.generated_indirect,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    out.extend_from_slice(&(stats.tlb.len() as u32).to_le_bytes());
    for t in &stats.tlb {
        encode_tlb(t, out);
    }
    out.extend_from_slice(&(stats.tlb_huge.len() as u32).to_le_bytes());
    for t in &stats.tlb_huge {
        encode_tlb(t, out);
    }
    encode_tlb(&stats.tlb_l2, out);

    for w in [
        stats.traffic.noc_flit_hops,
        stats.traffic.noc_messages,
        stats.traffic.dram_read_bytes,
        stats.traffic.dram_write_bytes,
        stats.traffic.dram_accesses,
    ] {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn encode_tlb(t: &TlbStats, out: &mut Vec<u8>) {
    for w in [
        t.hits,
        t.misses,
        t.evictions,
        t.cold_fills,
        t.walk_cycles,
        t.walk_levels,
        t.prefetch_hits,
        t.prefetch_drops,
        t.prefetch_walks,
    ] {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Result<SystemStats, StoreError> {
    let runtime = r.u64("runtime")?;

    let n_cores = r.u32("core stats count")? as usize;
    let mut cores = Vec::with_capacity(n_cores.min(r.remaining() / (CORE_WORDS * 8)));
    for _ in 0..n_cores {
        cores.push(CoreStats {
            instructions: r.u64("core stats")?,
            done_cycle: r.u64("core stats")?,
            stall_cycles: [
                r.u64("core stats")?,
                r.u64("core stats")?,
                r.u64("core stats")?,
            ],
            barrier_cycles: r.u64("core stats")?,
            l1_accesses: r.u64("core stats")?,
            l1_misses: [
                r.u64("core stats")?,
                r.u64("core stats")?,
                r.u64("core stats")?,
            ],
            l1_hits: r.u64("core stats")?,
            mem_latency_sum: r.u64("core stats")?,
            mem_latency_count: r.u64("core stats")?,
            walk_stall_cycles: r.u64("core stats")?,
        });
    }

    let n_prefetch = r.u32("prefetch stats count")? as usize;
    let mut prefetch = Vec::with_capacity(n_prefetch.min(r.remaining() / (PREFETCH_WORDS * 8)));
    for _ in 0..n_prefetch {
        prefetch.push(PrefetchStats {
            issued_stream: r.u64("prefetch stats")?,
            issued_indirect: r.u64("prefetch stats")?,
            useful: r.u64("prefetch stats")?,
            unused: r.u64("prefetch stats")?,
            late: r.u64("prefetch stats")?,
            covered: r.u64("prefetch stats")?,
            patterns_detected: r.u64("prefetch stats")?,
            detect_failures: r.u64("prefetch stats")?,
            partial_prefetches: r.u64("prefetch stats")?,
            value_unavailable: r.u64("prefetch stats")?,
            deferred_drops: r.u64("prefetch stats")?,
            deferred_retries: r.u64("prefetch stats")?,
            mshr_drops: r.u64("prefetch stats")?,
            generated_indirect: r.u64("prefetch stats")?,
        });
    }

    let n_tlb = r.u32("tlb stats count")? as usize;
    let mut tlb = Vec::with_capacity(n_tlb.min(r.remaining() / (TLB_WORDS * 8)));
    for _ in 0..n_tlb {
        tlb.push(decode_tlb(r)?);
    }
    let n_huge = r.u32("huge tlb stats count")? as usize;
    let mut tlb_huge = Vec::with_capacity(n_huge.min(r.remaining() / (TLB_WORDS * 8)));
    for _ in 0..n_huge {
        tlb_huge.push(decode_tlb(r)?);
    }
    let tlb_l2 = decode_tlb(r)?;

    let traffic = TrafficStats {
        noc_flit_hops: r.u64("traffic stats")?,
        noc_messages: r.u64("traffic stats")?,
        dram_read_bytes: r.u64("traffic stats")?,
        dram_write_bytes: r.u64("traffic stats")?,
        dram_accesses: r.u64("traffic stats")?,
    };

    Ok(SystemStats {
        runtime,
        cores,
        prefetch,
        tlb,
        tlb_huge,
        tlb_l2,
        traffic,
    })
}

fn decode_tlb(r: &mut Reader<'_>) -> Result<TlbStats, StoreError> {
    Ok(TlbStats {
        hits: r.u64("tlb stats")?,
        misses: r.u64("tlb stats")?,
        evictions: r.u64("tlb stats")?,
        cold_fills: r.u64("tlb stats")?,
        walk_cycles: r.u64("tlb stats")?,
        walk_levels: r.u64("tlb stats")?,
        prefetch_hits: r.u64("tlb stats")?,
        prefetch_drops: r.u64("tlb stats")?,
        prefetch_walks: r.u64("tlb stats")?,
    })
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, section: &'static str, n: usize) -> Result<&'a [u8], StoreError> {
        let available = self.remaining();
        if n > available {
            return Err(StoreError::Truncated {
                section,
                needed: n,
                available,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self, section: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(section, 1)?[0])
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(section, 4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(section, 8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self, section: &'static str) -> Result<String, StoreError> {
        // The length is untrusted until checked against the bytes that
        // remain — `take` does that check before any allocation.
        let len = self.u32(section)? as usize;
        Ok(std::str::from_utf8(self.take(section, len)?)
            .map_err(|_| StoreError::BadUtf8(section))?
            .to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> StoredResult {
        let mut stats = SystemStats {
            runtime: 123_456,
            ..SystemStats::default()
        };
        stats.cores.push(CoreStats {
            instructions: 1000,
            done_cycle: 123_456,
            stall_cycles: [10, 20, 30],
            barrier_cycles: 5,
            l1_accesses: 400,
            l1_misses: [1, 2, 3],
            l1_hits: 394,
            mem_latency_sum: 999,
            mem_latency_count: 6,
            walk_stall_cycles: 7,
        });
        stats.prefetch.push(PrefetchStats {
            issued_indirect: 42,
            useful: 40,
            ..PrefetchStats::default()
        });
        stats.tlb.push(TlbStats {
            hits: 100,
            misses: 3,
            ..TlbStats::default()
        });
        stats.traffic = TrafficStats {
            noc_flit_hops: 5000,
            noc_messages: 700,
            dram_read_bytes: 64 * 100,
            dram_write_bytes: 64 * 10,
            dram_accesses: 110,
        };
        StoredResult {
            canonical: "spmv|cores:16|seed:7|...".to_string(),
            cell: CellKey {
                workload: "spmv".to_string(),
                cores: 16,
                prefetcher: PrefetcherSpec::new("imp")
                    .with("pt_size", 64i64)
                    .with("tag", ParamValue::Str("8".to_string()))
                    .with("frac", 0.5f64)
                    .with("on", true),
                manager: Some(PrefetcherSpec::new("throttle").with("floor", 0.4f64)),
                partial: PartialMode::NocAndDram,
                tlb: TlbConfig::finite().with_l2(128, 8),
                page_policy: vec![
                    ("idx".to_string(), PagePolicy::Huge2M),
                    (
                        "val".to_string(),
                        PagePolicy::Auto {
                            threshold_bytes: 1 << 21,
                        },
                    ),
                ],
                seed: 7,
            },
            stats,
        }
    }

    #[test]
    fn byte_roundtrip_is_bit_identical() {
        let rec = sample();
        let bytes = rec.to_bytes();
        let back = StoredResult::from_bytes(&bytes).unwrap();
        assert_eq!(back, rec);
        // Re-serializing the parse is byte-identical too.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn string_params_do_not_collapse_into_ints() {
        let rec = sample();
        let back = StoredResult::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(
            back.cell.prefetcher.get("tag"),
            Some(&ParamValue::Str("8".to_string()))
        );
        assert_eq!(
            back.cell.prefetcher.get("pt_size"),
            Some(&ParamValue::Int(64))
        );
    }

    #[test]
    fn unmanaged_cells_roundtrip() {
        let mut rec = sample();
        rec.cell.manager = None;
        let back = StoredResult::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back.cell.manager, None);
        assert_eq!(back, rec);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().to_bytes();

        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0xff;
        assert!(matches!(
            StoredResult::from_bytes(&bad),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            StoredResult::from_bytes(&bytes[..4]),
            Err(StoreError::Truncated { .. })
        ));

        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        restamp(&mut wrong);
        assert!(matches!(
            StoredResult::from_bytes(&wrong),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            StoredResult::from_bytes(&bytes),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn absurd_lengths_error_instead_of_allocating() {
        let mut bytes = sample().to_bytes();
        // The canonical length field sits right after magic+version.
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            StoredResult::from_bytes(&bytes),
            Err(StoreError::Truncated {
                section: "canonical",
                ..
            })
        ));
    }

    pub(crate) fn restamp(bytes: &mut [u8]) {
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    }
}
