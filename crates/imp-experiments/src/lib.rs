//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (Section 6), plus the motivation figures (Section 2).
//!
//! Each driver runs the necessary simulations and returns a [`Table`]
//! whose rows mirror the paper's figure. Absolute cycle counts will not
//! match the authors' testbed (our substrate is a from-scratch simulator
//! and inputs are scaled), but the *shape* — who wins, by what factor,
//! where crossovers appear — is the reproduction target; see
//! `EXPERIMENTS.md` at the repository root for the full figure-to-driver
//! map and reproduction caveats.
//!
//! Scale selection: set `IMP_SCALE=tiny|small|large` (default `small`).
//!
//! # Example
//!
//! ```no_run
//! let t = imp_experiments::fig09_performance(16);
//! println!("{t}");
//! ```

mod runner;
pub mod service;
pub mod sim;
pub mod sweep;
mod table;

pub use runner::{prewarm, run, run_one, scale_from_env, sim_for, system_config, Config};
pub use service::{RequestError, SweepRequest};
pub use sim::{Sim, SimError};
pub use sweep::{CellOutcome, Sweep, SweepCell, SweepCellError, SweepReport, SweepResult};
pub use table::{RowWidthError, Table};

use imp_common::stats::AccessClass;
use imp_common::SystemConfig;
use imp_prefetch::cost;

/// The paper's application order in every figure.
pub const APPS: [&str; 7] = [
    "pagerank",
    "tri_count",
    "graph500",
    "sgd",
    "lsh",
    "spmv",
    "symgs",
];

/// Core counts evaluated in the paper.
pub const CORE_COUNTS: [u32; 3] = [16, 64, 256];

/// Figure 1: L1 cache-miss breakdown (indirect / stream / other) on the
/// Baseline at 64 cores.
pub fn fig01_miss_breakdown(cores: u32) -> Table {
    prewarm(&APPS, cores, &[Config::Base]);
    let mut t = Table::new(
        format!("Fig 1: L1 miss breakdown, Baseline, {cores} cores"),
        vec!["indirect", "stream", "other"],
    );
    let mut avg = [0.0f64; 3];
    for app in APPS {
        let s = run(app, cores, Config::Base);
        let m = s.misses_by_class();
        let total: u64 = m.iter().sum::<u64>().max(1);
        let fr: Vec<f64> = m.iter().map(|&x| x as f64 / total as f64).collect();
        for (a, f) in avg.iter_mut().zip(fr.iter()) {
            *a += f / APPS.len() as f64;
        }
        t.row(app, fr);
    }
    t.row("avg", avg.to_vec());
    t
}

/// Figure 2: runtime normalized to Ideal, split into indirect-stall and
/// everything-else, plus the Perfect Prefetching bar.
pub fn fig02_motivation(cores: u32) -> Table {
    prewarm(
        &APPS,
        cores,
        &[Config::Ideal, Config::Base, Config::PerfPref],
    );
    let mut t = Table::new(
        format!("Fig 2: runtime normalized to Ideal, {cores} cores"),
        vec!["indirect-stall", "other", "total", "PerfPref"],
    );
    for app in APPS {
        let ideal = run(app, cores, Config::Ideal);
        let base = run(app, cores, Config::Base);
        let perf = run(app, cores, Config::PerfPref);
        let norm = base.runtime as f64 / ideal.runtime.max(1) as f64;
        let ind_stall: u64 = base
            .cores
            .iter()
            .map(|c| c.stall_cycles[AccessClass::Indirect.index()])
            .sum();
        let all_cycles: u64 = base.cores.iter().map(|c| c.done_cycle).sum::<u64>().max(1);
        let ind_frac = ind_stall as f64 / all_cycles as f64;
        t.row(
            app,
            vec![
                norm * ind_frac,
                norm * (1.0 - ind_frac),
                norm,
                perf.runtime as f64 / ideal.runtime.max(1) as f64,
            ],
        );
    }
    t
}

/// Figure 9: throughput of Baseline, IMP and Software Prefetching
/// normalized to Perfect Prefetching, at the given core count.
pub fn fig09_performance(cores: u32) -> Table {
    prewarm(
        &APPS,
        cores,
        &[Config::PerfPref, Config::Base, Config::Imp, Config::SwPref],
    );
    let mut t = Table::new(
        format!("Fig 9: normalized throughput vs PerfPref, {cores} cores"),
        vec!["PerfPref", "Base", "IMP", "SW Pref"],
    );
    let mut sums = [0.0f64; 4];
    for app in APPS {
        let perf = run(app, cores, Config::PerfPref).runtime as f64;
        let base = run(app, cores, Config::Base).runtime as f64;
        let imp = run(app, cores, Config::Imp).runtime as f64;
        let sw = run(app, cores, Config::SwPref).runtime as f64;
        let vals = vec![1.0, perf / base, perf / imp, perf / sw];
        for (s, v) in sums.iter_mut().zip(vals.iter()) {
            *s += v / APPS.len() as f64;
        }
        t.row(app, vals);
    }
    t.row("avg", sums.to_vec());
    t
}

/// Table 3: prefetch coverage, accuracy and relative memory latency for
/// the stream prefetcher alone vs stream + IMP.
pub fn table3_effectiveness(cores: u32) -> Table {
    prewarm(&APPS, cores, &[Config::PerfPref, Config::Base, Config::Imp]);
    let mut t = Table::new(
        format!("Table 3: prefetch effectiveness, {cores} cores"),
        vec![
            "strm Cov", "strm Acc", "strm Lat", "IMP Cov", "IMP Acc", "IMP Lat",
        ],
    );
    let mut sums = [0.0f64; 6];
    for app in APPS {
        let perf = run(app, cores, Config::PerfPref);
        let perf_lat = perf.avg_memory_latency(1.0).max(1e-9);
        let base = run(app, cores, Config::Base);
        let imp = run(app, cores, Config::Imp);
        let vals = vec![
            base.coverage(),
            base.accuracy(),
            base.avg_memory_latency(1.0) / perf_lat,
            imp.coverage(),
            imp.accuracy(),
            imp.avg_memory_latency(1.0) / perf_lat,
        ];
        for (s, v) in sums.iter_mut().zip(vals.iter()) {
            *s += v / APPS.len() as f64;
        }
        t.row(app, vals);
    }
    t.row("avg", sums.to_vec());
    t
}

/// Figure 10: instruction overhead of software prefetching (instruction
/// counts normalized to Baseline).
pub fn fig10_sw_overhead(cores: u32) -> Table {
    prewarm(&APPS, cores, &[Config::Base, Config::Imp, Config::SwPref]);
    let mut t = Table::new(
        format!("Fig 10: instructions normalized to Baseline, {cores} cores"),
        vec!["Base", "IMP", "SW Pref"],
    );
    for app in APPS {
        let base = run(app, cores, Config::Base).total_instructions() as f64;
        let imp = run(app, cores, Config::Imp).total_instructions() as f64;
        let sw = run(app, cores, Config::SwPref).total_instructions() as f64;
        t.row(app, vec![1.0, imp / base, sw / base]);
    }
    t
}

/// Figure 11: IMP with partial cacheline accessing (NoC only, then NoC +
/// DRAM) normalized to Perfect Prefetching, with Ideal for reference.
pub fn fig11_partial(cores: u32) -> Table {
    prewarm(
        &APPS,
        cores,
        &[
            Config::PerfPref,
            Config::Imp,
            Config::ImpPartialNoc,
            Config::ImpPartialNocDram,
            Config::Ideal,
        ],
    );
    let mut t = Table::new(
        format!("Fig 11: partial cacheline accessing, {cores} cores"),
        vec!["IMP", "Partial NoC", "Partial NoC+DRAM", "Ideal"],
    );
    for app in APPS {
        let perf = run(app, cores, Config::PerfPref).runtime as f64;
        let imp = run(app, cores, Config::Imp).runtime as f64;
        let pn = run(app, cores, Config::ImpPartialNoc).runtime as f64;
        let pnd = run(app, cores, Config::ImpPartialNocDram).runtime as f64;
        let ideal = run(app, cores, Config::Ideal).runtime as f64;
        t.row(app, vec![perf / imp, perf / pn, perf / pnd, perf / ideal]);
    }
    t
}

/// Figure 12: NoC and DRAM traffic of partial cacheline accessing
/// normalized to full-line IMP.
pub fn fig12_traffic(cores: u32) -> Table {
    prewarm(&APPS, cores, &[Config::Imp, Config::ImpPartialNocDram]);
    let mut t = Table::new(
        format!("Fig 12: traffic of partial accessing vs full lines, {cores} cores"),
        vec!["NoC traffic", "DRAM traffic"],
    );
    let mut sums = [0.0f64; 2];
    for app in APPS {
        let full = run(app, cores, Config::Imp);
        let part = run(app, cores, Config::ImpPartialNocDram);
        let vals = vec![
            part.traffic.noc_flit_hops as f64 / full.traffic.noc_flit_hops.max(1) as f64,
            part.traffic.dram_bytes() as f64 / full.traffic.dram_bytes().max(1) as f64,
        ];
        for (s, v) in sums.iter_mut().zip(vals.iter()) {
            *s += v / APPS.len() as f64;
        }
        t.row(app, vals);
    }
    t.row("avg", sums.to_vec());
    t
}

/// Figure 13: in-order vs out-of-order cores (32-entry ROB) for one
/// memory-bound and one compute-bound application, normalized to the
/// out-of-order Baseline.
pub fn fig13_ooo(cores: u32) -> Table {
    prewarm(
        &["pagerank", "sgd"],
        cores,
        &[
            Config::BaseOoo,
            Config::Base,
            Config::Imp,
            Config::ImpOoo,
            Config::ImpPartialNocDram,
            Config::ImpPartialOoo,
        ],
    );
    let mut t = Table::new(
        format!("Fig 13: in-order vs OoO cores, {cores} cores"),
        vec![
            "Base io",
            "Base ooo",
            "IMP io",
            "IMP ooo",
            "Partial io",
            "Partial ooo",
        ],
    );
    for app in ["pagerank", "sgd"] {
        let base_ooo = run(app, cores, Config::BaseOoo).runtime as f64;
        let vals = vec![
            base_ooo / run(app, cores, Config::Base).runtime as f64,
            1.0,
            base_ooo / run(app, cores, Config::Imp).runtime as f64,
            base_ooo / run(app, cores, Config::ImpOoo).runtime as f64,
            base_ooo / run(app, cores, Config::ImpPartialNocDram).runtime as f64,
            base_ooo / run(app, cores, Config::ImpPartialOoo).runtime as f64,
        ];
        t.row(app, vals);
    }
    t
}

/// Figures 14/15/16: sensitivity to PT size, IPD size and max prefetch
/// distance. `param` selects which knob; values are the paper's sweep.
pub fn sensitivity(cores: u32, param: SweepParam) -> Table {
    let (name, values) = match param {
        SweepParam::PtSize => ("PT size", vec![8u32, 16, 32]),
        SweepParam::IpdSize => ("IPD size", vec![2, 4, 8]),
        SweepParam::Distance => ("max prefetch distance", vec![4, 8, 16, 32]),
    };
    let headers: Vec<String> = values.iter().map(|v| format!("{name}={v}")).collect();
    let mut t = Table::new(
        format!("Sensitivity to {name}, {cores} cores (normalized to default)"),
        headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    prewarm(&APPS, cores, &[Config::Imp]);
    // The swept knob lives inside ImpConfig, so the cells run as explicit
    // configurations fanned across threads rather than as a Sweep axis.
    let grid: Vec<(&str, u32)> = APPS
        .iter()
        .flat_map(|&app| values.iter().map(move |&v| (app, v)))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let runtimes = sweep::fanout(grid.len(), threads, |i| {
        let (app, v) = grid[i];
        let mut cfg = runner::system_config(cores, Config::Imp);
        match param {
            SweepParam::PtSize => cfg.imp.pt_entries = v as usize,
            SweepParam::IpdSize => cfg.imp.ipd_entries = v as usize,
            SweepParam::Distance => cfg.imp.max_prefetch_distance = v,
        }
        run_one(app, cfg).runtime as f64
    });
    for (a, app) in APPS.iter().enumerate() {
        let reference = run(app, cores, Config::Imp).runtime as f64;
        let row: Vec<f64> = (0..values.len())
            .map(|j| reference / runtimes[a * values.len() + j])
            .collect();
        t.row(app, row);
    }
    t
}

/// Which hardware knob [`sensitivity`] sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepParam {
    /// Figure 14.
    PtSize,
    /// Figure 15.
    IpdSize,
    /// Figure 16.
    Distance,
}

/// Section 6.1's GHB comparison: a correlation prefetcher on top of the
/// stream prefetcher provides no benefit on these workloads.
pub fn ghb_comparison(cores: u32) -> Table {
    prewarm(&APPS, cores, &[Config::Base, Config::Ghb, Config::Imp]);
    let mut t = Table::new(
        format!("GHB vs Baseline vs IMP, {cores} cores (throughput vs Base)"),
        vec!["Base", "GHB", "IMP"],
    );
    for app in APPS {
        let base = run(app, cores, Config::Base).runtime as f64;
        let ghb = run(app, cores, Config::Ghb).runtime as f64;
        let imp = run(app, cores, Config::Imp).runtime as f64;
        t.row(app, vec![1.0, base / ghb, base / imp]);
    }
    t
}

/// Section 6.1's no-harm check: IMP on a dense regular workload.
pub fn no_harm(cores: u32) -> Table {
    let mut t = Table::new(
        format!("No-harm check on dense workload, {cores} cores"),
        vec!["Base runtime", "IMP runtime", "IMP/Base"],
    );
    let base = run("dense", cores, Config::Base);
    let imp = run("dense", cores, Config::Imp);
    t.row(
        "dense",
        vec![
            base.runtime as f64,
            imp.runtime as f64,
            imp.runtime as f64 / base.runtime.max(1) as f64,
        ],
    );
    t
}

/// Section 6.4: storage cost of IMP and the Granularity Predictor.
pub fn storage_cost_table() -> Table {
    let sys = SystemConfig::paper_default(64);
    let c = cost::storage_cost(&sys.imp, &sys.mem);
    let mut t = Table::new(
        "Section 6.4: storage cost".to_string(),
        vec!["bits", "Kbits", "bytes"],
    );
    t.row(
        "PT indirect half",
        vec![
            c.pt_bits as f64,
            c.pt_bits as f64 / 1024.0,
            c.pt_bits as f64 / 8.0,
        ],
    );
    t.row(
        "IPD",
        vec![
            c.ipd_bits as f64,
            c.ipd_bits as f64 / 1024.0,
            c.ipd_bits as f64 / 8.0,
        ],
    );
    t.row(
        "IMP total",
        vec![c.imp_bits() as f64, c.imp_kbits(), c.imp_bytes() as f64],
    );
    t.row(
        "GP",
        vec![c.gp_bits as f64, c.gp_kbits(), c.gp_bits as f64 / 8.0],
    );
    t.row(
        "L1 sector masks (%)",
        vec![
            c.l1_mask_bits as f64,
            c.l1_mask_bits as f64 / 1024.0,
            100.0 * cost::mask_overhead_fraction(8, 64),
        ],
    );
    t.row(
        "L2 sector masks (%)",
        vec![
            c.l2_mask_bits as f64,
            c.l2_mask_bits as f64 / 1024.0,
            100.0 * cost::mask_overhead_fraction(2, 64),
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_table_has_all_rows() {
        let t = storage_cost_table();
        assert_eq!(t.rows(), 6);
    }

    #[test]
    fn tiny_fig01_sums_to_one() {
        std::env::set_var("IMP_SCALE", "tiny");
        let t = fig01_miss_breakdown(16);
        for (label, vals) in t.iter_rows() {
            let sum: f64 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{label}: {sum}");
        }
    }
}
