//! Plain-text result tables mirroring the paper's figures.

use std::fmt;

/// A labelled table of f64 values with a title and column headers.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(title: String, headers: Vec<S>) -> Self {
        Table {
            title,
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the headers.
    pub fn row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.headers.len(), "row width mismatch");
        self.rows.push((label.to_string(), values));
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Iterates `(label, values)` rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.rows.iter().map(|(l, v)| (l.as_str(), v.as_slice()))
    }

    /// Value at (row label, column header), if present.
    pub fn get(&self, label: &str, header: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == header)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == label)?;
        vals.get(col).copied()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:12}", "")?;
        for h in &self.headers {
            write!(f, " {h:>18}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:12}")?;
            for v in vals {
                if v.abs() >= 10_000.0 {
                    write!(f, " {v:>18.0}")?;
                } else {
                    write!(f, " {v:>18.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_lookup() {
        let mut t = Table::new("demo".into(), vec!["a", "b"]);
        t.row("x", vec![1.0, 2.0]);
        t.row("y", vec![3.0, 40000.0]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains('x'));
        assert_eq!(t.get("y", "a"), Some(3.0));
        assert_eq!(t.get("y", "nope"), None);
        assert_eq!(t.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("bad".into(), vec!["a"]);
        t.row("x", vec![1.0, 2.0]);
    }
}
