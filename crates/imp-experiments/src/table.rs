//! Plain-text result tables mirroring the paper's figures, with CSV and
//! JSON export for downstream tooling.

use std::fmt;

/// A row whose value count does not match the table's headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowWidthError {
    /// Label of the offending row.
    pub label: String,
    /// Values the row carried.
    pub got: usize,
    /// Values the headers demand.
    pub expected: usize,
}

impl fmt::Display for RowWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row width mismatch: row {:?} has {} values but the table has {} headers",
            self.label, self.got, self.expected
        )
    }
}

impl std::error::Error for RowWidthError {}

/// A labelled table of f64 values with a title and column headers.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(title: String, headers: Vec<S>) -> Self {
        Table {
            title,
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row, rejecting one whose width does not match the
    /// headers.
    ///
    /// # Errors
    ///
    /// Returns [`RowWidthError`] (and leaves the table unchanged) on a
    /// width mismatch.
    pub fn try_row(&mut self, label: &str, values: Vec<f64>) -> Result<(), RowWidthError> {
        if values.len() != self.headers.len() {
            return Err(RowWidthError {
                label: label.to_string(),
                got: values.len(),
                expected: self.headers.len(),
            });
        }
        self.rows.push((label.to_string(), values));
        Ok(())
    }

    /// Appends a row (the infallible shim over [`Table::try_row`] the
    /// figure drivers use — their widths are static).
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the headers.
    pub fn row(&mut self, label: &str, values: Vec<f64>) {
        self.try_row(label, values)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Iterates `(label, values)` rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.rows.iter().map(|(l, v)| (l.as_str(), v.as_slice()))
    }

    /// Value at (row label, column header), if present.
    pub fn get(&self, label: &str, header: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == header)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == label)?;
        vals.get(col).copied()
    }

    /// Renders the table as RFC-4180-style CSV: a `label,<headers...>`
    /// header line, then one line per row. Fields containing commas,
    /// quotes or newlines are quoted; values print with Rust's shortest
    /// round-trip float formatting, and non-finite values (NaN, ±inf)
    /// export as empty fields — CSV's conventional null, matching
    /// [`Table::to_json`]'s `null`.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::from("label");
        for h in &self.headers {
            out.push(',');
            out.push_str(&field(h));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&field(label));
            for v in vals {
                out.push(',');
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object:
    /// `{"title": ..., "headers": [...], "rows": [{"label": ...,
    /// "values": [...]}]}`. Non-finite values (NaN, ±inf) become
    /// `null`, matching JSON's number grammar.
    pub fn to_json(&self) -> String {
        fn string(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn number(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let headers: Vec<String> = self.headers.iter().map(|h| string(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(label, vals)| {
                let values: Vec<String> = vals.iter().map(|&v| number(v)).collect();
                format!(
                    "{{\"label\":{},\"values\":[{}]}}",
                    string(label),
                    values.join(",")
                )
            })
            .collect();
        format!(
            "{{\"title\":{},\"headers\":[{}],\"rows\":[{}]}}",
            string(&self.title),
            headers.join(","),
            rows.join(",")
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:12}", "")?;
        for h in &self.headers {
            write!(f, " {h:>18}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:12}")?;
            for v in vals {
                if v.abs() >= 10_000.0 {
                    write!(f, " {v:>18.0}")?;
                } else {
                    write!(f, " {v:>18.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_lookup() {
        let mut t = Table::new("demo".into(), vec!["a", "b"]);
        t.row("x", vec![1.0, 2.0]);
        t.row("y", vec![3.0, 40000.0]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains('x'));
        assert_eq!(t.get("y", "a"), Some(3.0));
        assert_eq!(t.get("y", "nope"), None);
        assert_eq!(t.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("bad".into(), vec!["a"]);
        t.row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn try_row_reports_instead_of_panicking() {
        let mut t = Table::new("bad".into(), vec!["a"]);
        let err = t.try_row("x", vec![1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            RowWidthError {
                label: "x".to_string(),
                got: 2,
                expected: 1,
            }
        );
        assert!(err.to_string().contains("2 values"), "{err}");
        assert_eq!(t.rows(), 0, "failed rows are not half-appended");
        t.try_row("y", vec![3.0]).unwrap();
        assert_eq!(t.rows(), 1);
    }

    #[test]
    fn csv_quotes_and_round_trips_values() {
        let mut t = Table::new("demo".into(), vec!["plain", "needs,quote"]);
        t.row("a \"b\"", vec![1.5, 40000.0]);
        t.row("gaps", vec![f64::NAN, f64::INFINITY]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,plain,\"needs,quote\""));
        assert_eq!(lines.next(), Some("\"a \"\"b\"\"\",1.5,40000"));
        assert_eq!(lines.next(), Some("gaps,,"), "non-finite exports empty");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_escapes_and_nulls_non_finite() {
        let mut t = Table::new("q\"t".into(), vec!["a", "b"]);
        t.row("x\n", vec![0.5, f64::NAN]);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"title\":\"q\\\"t\",\"headers\":[\"a\",\"b\"],\
             \"rows\":[{\"label\":\"x\\n\",\"values\":[0.5,null]}]}"
        );
    }
}
