//! The fluent simulation facade: one chained expression from a workload
//! name to a finished [`SystemStats`].
//!
//! [`Sim`] replaces the hand-assembled `by_name → build → SystemConfig →
//! System::new → run` pipeline every experiment used to repeat:
//!
//! ```
//! use imp_experiments::Sim;
//! use imp_common::config::PartialMode;
//! use imp_workloads::Scale;
//!
//! let stats = Sim::workload("spmv")
//!     .scale(Scale::Tiny)
//!     .cores(16)
//!     .prefetcher("imp")
//!     .partial(PartialMode::NocAndDram)
//!     .run()
//!     .unwrap();
//! assert!(stats.runtime > 0);
//! ```
//!
//! Prefetchers are named registry specs (see `imp_prefetch::registry`),
//! so a custom prefetcher registered from *outside* the simulator crates
//! runs through `Sim` exactly like the stock ones.

use imp_adapt::ManagerError;
use imp_common::config::{
    CoreModel, DramModelKind, MemMode, PagePolicy, PartialMode, PrefetcherSpec, TlbConfig,
    TranslationPolicy, WalkModel,
};
use imp_common::{ImpConfig, MemRegion, SystemConfig, SystemStats};
use imp_obs::{ObsConfig, ObsReport, Probe};
use imp_sim::{BuildError, RegistryError, RunError, System, VmConfigError};
use imp_trace::BarrierMismatch;
use imp_workloads::{by_name, BuiltArtifact, ChainSpec, Scale, WorkloadError, WorkloadParams};
use std::fmt;

/// Why a [`Sim`] (or a `Sweep` cell) could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// No workload generator has this name.
    UnknownWorkload(String),
    /// The mesh requires a positive perfect-square core count.
    InvalidCores(u32),
    /// A prefetcher spec string passed to the builder did not parse.
    InvalidSpec(String),
    /// The prefetcher spec did not resolve or rejected a parameter.
    Prefetcher(RegistryError),
    /// The manager spec named an unknown policy or rejected a
    /// parameter.
    Manager(ManagerError),
    /// The workload could not build (a `trace:<path>` replay failed;
    /// the message is the underlying `WorkloadError`).
    Build(String),
    /// The program's cores disagree on barrier counts.
    Barrier(BarrierMismatch),
    /// The TLB configuration is invalid (zero sets/ways, bad page
    /// size).
    Tlb(VmConfigError),
    /// A `page_policy` override names a region (or glob) no workload
    /// region matches.
    UnknownRegion(String),
    /// The program (or artifact) was generated for a different core
    /// count than the configuration describes.
    CoreMismatch {
        /// Cores the program was generated for.
        program: usize,
        /// Cores the configuration describes.
        config: u32,
    },
    /// The result store could not be opened or read (a genuine I/O
    /// failure — a missing or corrupt record is a cache miss, never an
    /// error).
    Store(String),
    /// The run exceeded its event budget (see [`Sim::event_budget`])
    /// before finishing; a runaway sweep cell fails this way instead of
    /// aborting the process. Carries the statistics collected up to the
    /// cutoff.
    EventBudgetExceeded {
        /// Events processed when the budget ran out.
        events: u64,
        /// Partial statistics at the cutoff.
        stats: Box<SystemStats>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownWorkload(name) => {
                // A `chain:` name that resolved to nothing is a malformed
                // spec — re-derive the grammar error so the caller sees
                // *why* instead of a generic name list.
                match name.strip_prefix("chain:").map(ChainSpec::parse) {
                    Some(Err(why)) => write!(f, "bad chain workload {name:?}: {why}"),
                    _ => write!(
                        f,
                        "unknown workload {name:?}; try pagerank, tri_count, graph500, \
                         sgd, lsh, spmv, symgs, dense, gather2, hashjoin, skiplist, \
                         btree, chain:<spec>, or trace:<path>"
                    ),
                }
            }
            SimError::InvalidCores(n) => {
                write!(f, "core count {n} is not a positive perfect square")
            }
            SimError::InvalidSpec(e) => write!(f, "{e}"),
            SimError::Prefetcher(e) => write!(f, "{e}"),
            SimError::Manager(e) => write!(f, "{e}"),
            SimError::Build(e) => write!(f, "{e}"),
            SimError::Barrier(e) => write!(f, "{e}"),
            SimError::Tlb(e) => write!(f, "{e}"),
            SimError::UnknownRegion(name) => write!(
                f,
                "page-policy override {name:?} matches no workload region \
                 (region names are recorded in the built artifact; a \
                 trailing '*' globs a family)"
            ),
            SimError::CoreMismatch { program, config } => write!(
                f,
                "program was generated for {program} cores but the configuration has {config}"
            ),
            SimError::Store(e) => write!(f, "result store failure: {e}"),
            SimError::EventBudgetExceeded { events, .. } => {
                write!(f, "simulation exceeded event budget ({events} events)")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<RegistryError> for SimError {
    fn from(e: RegistryError) -> Self {
        SimError::Prefetcher(e)
    }
}

impl From<BuildError> for SimError {
    fn from(e: BuildError) -> Self {
        match e {
            BuildError::Registry(e) => SimError::Prefetcher(e),
            BuildError::Barrier(e) => SimError::Barrier(e),
            BuildError::CoreCountMismatch { program, config } => {
                SimError::CoreMismatch { program, config }
            }
            BuildError::Vm(e) => SimError::Tlb(e),
            BuildError::Manager(e) => SimError::Manager(e),
        }
    }
}

/// A fluent builder for one simulation run.
///
/// Defaults mirror the paper's 16-core Baseline at `Scale::Small`; every
/// knob is a chainable setter. `run()` validates, builds the workload,
/// resolves the prefetcher against the plugin registry, and executes.
#[derive(Clone, Debug)]
pub struct Sim {
    workload: String,
    cores: u32,
    scale: Scale,
    seed: u64,
    sw_prefetch: Option<u64>,
    prefetcher: PrefetcherSpec,
    manager: Option<PrefetcherSpec>,
    partial: PartialMode,
    mem_mode: MemMode,
    core_model: CoreModel,
    dram: DramModelKind,
    imp: ImpConfig,
    tlb: TlbConfig,
    page_policies: Vec<(String, PagePolicy)>,
    base_config: Option<SystemConfig>,
    spec_error: Option<String>,
    event_budget: Option<u64>,
    observe: Option<ObsConfig>,
}

impl Sim {
    /// Starts a builder for the named workload (the paper's seven
    /// kernels plus the `dense` control).
    pub fn workload(name: impl Into<String>) -> Self {
        Sim {
            workload: name.into(),
            cores: 16,
            scale: Scale::Small,
            seed: 42,
            sw_prefetch: None,
            prefetcher: PrefetcherSpec::default(),
            manager: None,
            partial: PartialMode::Off,
            mem_mode: MemMode::Realistic,
            core_model: CoreModel::InOrder,
            dram: DramModelKind::Simple,
            imp: ImpConfig::paper_default(),
            tlb: TlbConfig::ideal(),
            page_policies: Vec::new(),
            base_config: None,
            spec_error: None,
            event_budget: None,
            observe: None,
        }
    }

    /// Starts a builder from a fully explicit [`SystemConfig`] — the
    /// escape hatch for experiments that tweak fields the fluent surface
    /// does not cover (cache geometry, ROB size, DRAM timings, ...).
    ///
    /// The config seeds the builder's state; fluent setters still apply
    /// on top of it, so a `Sweep` can vary axes of a `from_config` base.
    /// Changing [`Sim::cores`] afterwards rebuilds the mesh-dependent
    /// geometry (L2 slices, memory controllers) at paper defaults for
    /// the new count, preserving every non-geometry field.
    pub fn from_config(workload: impl Into<String>, cfg: SystemConfig) -> Self {
        let mut s = Sim::workload(workload);
        s.cores = cfg.cores;
        s.prefetcher = cfg.prefetcher.clone();
        s.manager = cfg.manager.clone();
        s.partial = cfg.partial;
        s.mem_mode = cfg.mem_mode;
        s.core_model = cfg.core_model;
        s.dram = cfg.mem.dram;
        s.imp = cfg.imp.clone();
        s.tlb = cfg.tlb;
        s.base_config = Some(cfg);
        s
    }

    /// Core/tile count (a positive perfect square: 16, 64, 256, ...).
    #[must_use]
    pub fn cores(mut self, n: u32) -> Self {
        self.cores = n;
        self
    }

    /// Input scale preset.
    #[must_use]
    pub fn scale(mut self, s: Scale) -> Self {
        self.scale = s;
        self
    }

    /// Workload-generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Prefetcher registry spec: a [`PrefetcherSpec`], a
    /// `PrefetcherKind`, or a string such as `"imp"`,
    /// `"stream:distance=8"` or `"hybrid:components=stream+imp"`.
    ///
    /// A malformed spec string does not panic; it surfaces as
    /// [`SimError::InvalidSpec`] when the builder runs.
    #[must_use]
    pub fn prefetcher<S>(mut self, spec: S) -> Self
    where
        S: TryInto<PrefetcherSpec>,
        S::Error: fmt::Display,
    {
        match spec.try_into() {
            Ok(s) => self.prefetcher = s,
            Err(e) => self.spec_error = Some(e.to_string()),
        }
        self
    }

    /// Adaptive-management policy spec (see `imp_adapt::Manager`):
    /// `"static"`, `"throttle:accuracy_floor=0.4"`, or
    /// `"tree:spec=(acc<0.5?mask:pass)"`, each optionally with an
    /// `epoch=<cycles>` parameter. `None` (the default) runs unmanaged
    /// and keeps the canonical input byte-identical to pre-manager
    /// builds.
    ///
    /// A malformed spec string does not panic; it surfaces as
    /// [`SimError::InvalidSpec`] when the builder runs. A well-formed
    /// spec naming an unknown policy or a bad parameter surfaces as
    /// [`SimError::Manager`].
    #[must_use]
    pub fn manager<S>(mut self, spec: S) -> Self
    where
        S: TryInto<PrefetcherSpec>,
        S::Error: fmt::Display,
    {
        match spec.try_into() {
            Ok(s) => self.manager = Some(s),
            Err(e) => self.spec_error = Some(e.to_string()),
        }
        self
    }

    /// Installs (or clears) the manager directly. The sweep's manager
    /// axis needs this: the fluent [`Sim::manager`] setter can only
    /// install a spec, while a `"none"` axis value must *clear* the
    /// template's manager for its cells.
    pub(crate) fn set_manager(mut self, spec: Option<PrefetcherSpec>) -> Self {
        self.manager = spec;
        self
    }

    /// Caps the number of simulator events a run may process before it
    /// fails with [`SimError::EventBudgetExceeded`] (partial statistics
    /// attached). Inherited by every cell of a `Sweep` built from this
    /// base, so one runaway configuration fails its cell instead of
    /// aborting the whole sweep.
    ///
    /// A *guard rail*, not a timing knob: it is deliberately excluded
    /// from [`Sim::canonical_input`] — a run that finishes within
    /// budget is bit-identical at any budget value.
    #[must_use]
    pub fn event_budget(mut self, events: u64) -> Self {
        self.event_budget = Some(events);
        self
    }

    /// Partial cacheline accessing mode (Section 4).
    #[must_use]
    pub fn partial(mut self, mode: PartialMode) -> Self {
        self.partial = mode;
        self
    }

    /// Memory-subsystem mode (Realistic / PerfectPrefetch / Ideal).
    #[must_use]
    pub fn mem_mode(mut self, mode: MemMode) -> Self {
        self.mem_mode = mode;
        self
    }

    /// Core microarchitecture model.
    #[must_use]
    pub fn core_model(mut self, model: CoreModel) -> Self {
        self.core_model = model;
        self
    }

    /// DRAM timing model.
    #[must_use]
    pub fn dram(mut self, model: DramModelKind) -> Self {
        self.dram = model;
        self
    }

    /// Replaces the whole dTLB / page-walk configuration (see
    /// [`TlbConfig`]); the default is ideal, zero-cost translation.
    #[must_use]
    pub fn tlb(mut self, cfg: TlbConfig) -> Self {
        self.tlb = cfg;
        self
    }

    /// Translation page size in bytes. Upgrades an ideal TLB to the
    /// finite [`TlbConfig::finite`] defaults first, so
    /// `.page_size(65536)` alone enables a realistic dTLB at 64 KB
    /// pages.
    #[must_use]
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.tlb = self.tlb.finite_or_self().with_page_bytes(bytes);
        self
    }

    /// dTLB associativity (ways per set). Upgrades an ideal TLB to
    /// finite defaults first.
    #[must_use]
    pub fn tlb_ways(mut self, ways: u32) -> Self {
        self.tlb = self.tlb.finite_or_self().with_ways(ways);
        self
    }

    /// How prefetch addresses are translated on a dTLB miss. Upgrades
    /// an ideal TLB to finite defaults first.
    #[must_use]
    pub fn translation_policy(mut self, policy: TranslationPolicy) -> Self {
        self.tlb = self.tlb.finite_or_self().with_policy(policy);
        self
    }

    /// Puts a shared L2 TLB of `sets` x `ways` entries behind the
    /// per-core dTLBs (`l2_tlb(0, 0)` removes it). Upgrades an ideal
    /// TLB to finite defaults first.
    #[must_use]
    pub fn l2_tlb(mut self, sets: u32, ways: u32) -> Self {
        self.tlb = self.tlb.finite_or_self().with_l2(sets, ways);
        self
    }

    /// Translation prefetching: let IMP's value-derived predictions
    /// prefill L2-TLB entries for their target pages, so indirect
    /// prefetches survive `DropOnMiss`. Upgrades an ideal TLB to finite
    /// defaults first.
    #[must_use]
    pub fn tlb_prefetch(mut self, on: bool) -> Self {
        self.tlb = self.tlb.finite_or_self().with_tlb_prefetch(on);
        self
    }

    /// How page walks are timed: a flat per-level latency, or PTE reads
    /// routed through the shared cache hierarchy (`WalkModel::Cached`).
    /// Upgrades an ideal TLB to finite defaults first.
    #[must_use]
    pub fn walk_model(mut self, model: WalkModel) -> Self {
        self.tlb = self.tlb.finite_or_self().with_walk_model(model);
        self
    }

    /// Geometry of the per-core huge-page sub-TLB (the split dTLB's
    /// 2 MB structure). Upgrades an ideal TLB to finite defaults first.
    #[must_use]
    pub fn huge_tlb(mut self, sets: u32, ways: u32) -> Self {
        self.tlb = self.tlb.finite_or_self().with_huge_tlb(sets, ways);
        self
    }

    /// Overrides the page-size policy of the workload region named
    /// `region` — the simulated `madvise(MADV_HUGEPAGE)`. The name must
    /// match a region the workload's generator recorded (`"adj"`,
    /// `"pr0"`, ...); a trailing `*` globs a family (`"bits*"`), and
    /// `"*"` alone re-policies every region. Later overrides win over
    /// earlier ones; regions without an override keep the policy they
    /// declared. Upgrades an ideal TLB to finite defaults first (an
    /// ideal TLB never translates, so placement would be meaningless).
    #[must_use]
    pub fn page_policy(mut self, region: impl Into<String>, policy: PagePolicy) -> Self {
        self.tlb = self.tlb.finite_or_self();
        self.page_policies.push((region.into(), policy));
        self
    }

    /// Replaces the whole page-policy override list (what a `Sweep`'s
    /// `page_policies` axis applies per cell). A non-empty list
    /// upgrades an ideal TLB to finite defaults, like
    /// [`Sim::page_policy`].
    #[must_use]
    pub fn page_policies<I, S>(mut self, overrides: I) -> Self
    where
        I: IntoIterator<Item = (S, PagePolicy)>,
        S: Into<String>,
    {
        self.page_policies = overrides
            .into_iter()
            .map(|(name, policy)| (name.into(), policy))
            .collect();
        if !self.page_policies.is_empty() {
            self.tlb = self.tlb.finite_or_self();
        }
        self
    }

    /// The page-policy override list in effect.
    pub fn page_policy_overrides(&self) -> &[(String, PagePolicy)] {
        &self.page_policies
    }

    /// Sets what [`Sim::run_observed`] records: histograms and the
    /// timeliness ledger always, plus an event trace and/or epoch
    /// sampler per the config. Like [`Sim::event_budget`], observation
    /// is a lens, not a timing knob — it is deliberately excluded from
    /// [`Sim::canonical_input`], and an observed run's statistics are
    /// bit-identical to an unobserved one. Plain [`Sim::run`] ignores
    /// this setting entirely.
    #[must_use]
    pub fn observe(mut self, cfg: ObsConfig) -> Self {
        self.observe = Some(cfg);
        self
    }

    /// Inserts Mowry-style software prefetches `distance` elements ahead
    /// (the paper's *Software Prefetching* configuration).
    #[must_use]
    pub fn software_prefetch(mut self, distance: u64) -> Self {
        self.sw_prefetch = Some(distance);
        self
    }

    /// Adjusts the IMP hardware parameter block (Table 2) in place.
    #[must_use]
    pub fn tune_imp(mut self, f: impl FnOnce(&mut ImpConfig)) -> Self {
        f(&mut self.imp);
        self
    }

    /// The workload name this builder targets.
    pub fn workload_name(&self) -> &str {
        &self.workload
    }

    /// Returns a copy targeting a different workload.
    #[must_use]
    pub fn with_workload(mut self, name: impl Into<String>) -> Self {
        self.workload = name.into();
        self
    }

    /// The configured workload-generation seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The canonical input string the result store digests: a stable
    /// rendering of *everything* that determines this run's statistics
    /// — the workload name, generation seed, input scale,
    /// software-prefetch distance, the full resolved
    /// [`SystemConfig::canonical`] timing surface (cores, prefetcher
    /// spec, partial mode, TLB, cache/NoC/DRAM geometry, IMP knobs),
    /// and the page-policy overrides in application order.
    ///
    /// Two builders with equal canonical inputs produce bit-identical
    /// [`imp_common::SystemStats`]; any knob difference changes the
    /// string. New timing-relevant fields must be *appended* to
    /// [`SystemConfig::canonical`] — changing the rendering of existing
    /// fields silently invalidates every stored digest, which is safe
    /// but wasteful.
    ///
    /// # Errors
    ///
    /// The configuration must resolve ([`Sim::config`]); an invalid
    /// grid cell has no canonical form.
    pub fn canonical_input(&self) -> Result<String, SimError> {
        let cfg = self.config()?;
        let mut s = format!(
            "w:{};seed:{};scale:{:?};swpf:{:?};{}",
            self.workload,
            self.seed,
            self.scale,
            self.sw_prefetch,
            cfg.canonical()
        );
        for (region, policy) in &self.page_policies {
            s.push_str(&format!(";pp:{}={}", region, policy.canonical()));
        }
        Ok(s)
    }

    /// Resolves the builder into the [`SystemConfig`] it will run.
    pub fn config(&self) -> Result<SystemConfig, SimError> {
        if let Some(e) = &self.spec_error {
            return Err(SimError::InvalidSpec(e.clone()));
        }
        let side = (self.cores as f64).sqrt() as u32;
        if self.cores == 0 || side * side != self.cores {
            return Err(SimError::InvalidCores(self.cores));
        }
        let mut cfg = match &self.base_config {
            // An explicit base keeps its full geometry as long as the
            // core count still matches; a changed count rebuilds the
            // mesh-dependent fields at paper defaults.
            Some(base) if base.cores == self.cores => base.clone(),
            Some(base) => {
                let mut fresh = SystemConfig::paper_default(self.cores);
                fresh.rob_entries = base.rob_entries;
                fresh.perfpref_lead = base.perfpref_lead;
                fresh
            }
            None => SystemConfig::paper_default(self.cores),
        };
        cfg.prefetcher = self.prefetcher.clone();
        cfg.manager = self.manager.clone();
        cfg.partial = self.partial;
        cfg.mem_mode = self.mem_mode;
        cfg.core_model = self.core_model;
        cfg.mem.dram = self.dram;
        cfg.imp = self.imp.clone();
        cfg.tlb = self.tlb;
        // Surface invalid TLB geometry (zero sets, bad page sizes) at
        // config-resolve time instead of deep inside the system build.
        imp_sim::validate_tlb_config(&cfg.tlb).map_err(SimError::Tlb)?;
        Ok(cfg)
    }

    /// Resolves this builder's page-policy overrides against the
    /// workload's recorded regions into the huge `(base, bytes)`
    /// extents the simulator places on huge pages.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownRegion`] when an override matches no region.
    fn resolve_huge_regions(&self, regions: &[MemRegion]) -> Result<Vec<(u64, u64)>, SimError> {
        for (pattern, _) in &self.page_policies {
            if !regions.iter().any(|r| glob_match(pattern, &r.name)) {
                return Err(SimError::UnknownRegion(pattern.clone()));
            }
        }
        Ok(regions
            .iter()
            .filter_map(|r| {
                let policy = self
                    .page_policies
                    .iter()
                    .rev()
                    .find(|(pattern, _)| glob_match(pattern, &r.name))
                    .map_or(r.policy, |&(_, policy)| policy);
                policy.is_huge_for(r.bytes).then_some((r.base, r.bytes))
            })
            .collect())
    }

    /// Builds the workload into a shareable [`BuiltArtifact`] without
    /// running it.
    ///
    /// The artifact is what [`Sim::run_on`] consumes; building once and
    /// fanning many configurations over it (`Sweep` does this
    /// automatically) skips the generator on every run but the first,
    /// with bit-identical statistics.
    ///
    /// # Errors
    ///
    /// Unknown workload names, invalid core counts, and failed
    /// `trace:<path>` replays surface as the matching [`SimError`].
    pub fn build_artifact(&self) -> Result<BuiltArtifact, SimError> {
        let cfg = self.config()?;
        let workload = by_name(&self.workload)
            .ok_or_else(|| SimError::UnknownWorkload(self.workload.clone()))?;
        let mut params = WorkloadParams::new(cfg.cores as usize, self.scale);
        params.seed = self.seed;
        if let Some(d) = self.sw_prefetch {
            params = params.with_software_prefetch(d);
        }
        let built = workload.try_build(&params).map_err(|e| match e {
            // Keep the typed twin of the run_on-path error; the
            // remaining replay failures (I/O, corruption) wrap
            // non-cloneable sources and stay stringly.
            WorkloadError::CoreCountMismatch { trace, requested } => SimError::CoreMismatch {
                program: trace,
                config: requested as u32,
            },
            other => SimError::Build(other.to_string()),
        })?;
        Ok(BuiltArtifact::from(built))
    }

    /// Runs this builder's configuration over an already-built artifact.
    ///
    /// The artifact's streams and memory image are shared into the
    /// system (`Arc` clones), so this is the cheap path for running many
    /// prefetcher/partial-mode configurations against one generated
    /// input. Statistics are bit-identical to [`Sim::run`] with the same
    /// knobs — the simulator only ever reads the artifact.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoreMismatch`] when the artifact was
    /// generated for a different core count than this builder targets,
    /// plus the usual configuration errors.
    pub fn run_on(&self, artifact: &BuiltArtifact) -> Result<SystemStats, SimError> {
        self.run_probed_on(artifact, None)
    }

    fn run_probed_on(
        &self,
        artifact: &BuiltArtifact,
        probe: Option<&Probe>,
    ) -> Result<SystemStats, SimError> {
        let cfg = self.config()?;
        let huge = self.resolve_huge_regions(artifact.regions())?;
        let mut system = System::try_new_placed(
            cfg,
            artifact.program().clone(),
            artifact.mem().clone(),
            &huge,
        )?;
        if let Some(p) = probe {
            system.attach_probe(p.clone());
        }
        if let Some(budget) = self.event_budget {
            system.set_event_budget(budget);
        }
        system.try_run().map_err(|e| match e {
            RunError::EventBudgetExceeded { events, stats } => {
                SimError::EventBudgetExceeded { events, stats }
            }
            // Barrier balance is validated at build time, so a drained
            // queue with unfinished cores is a simulator bug — keep the
            // historical panic rather than inventing an error users
            // would have to handle.
            RunError::Deadlock { unfinished, cores } => panic!(
                "event queue drained with {unfinished} of {cores} cores unfinished (deadlock)"
            ),
        })
    }

    /// Builds the workload and runs the simulation.
    pub fn run(&self) -> Result<SystemStats, SimError> {
        self.run_on(&self.build_artifact()?)
    }

    /// [`Sim::run_on`] with observation: attaches a probe at the level
    /// set by [`Sim::observe`] (defaulting to
    /// [`ObsConfig::metrics`] when unset or explicitly off) and returns
    /// the harvested [`ObsReport`] next to the statistics. The
    /// statistics are bit-identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sim::run_on`].
    pub fn run_observed_on(
        &self,
        artifact: &BuiltArtifact,
    ) -> Result<(SystemStats, ObsReport), SimError> {
        let obs = self
            .observe
            .filter(ObsConfig::enabled)
            .unwrap_or_else(ObsConfig::metrics);
        let probe = Probe::new(&obs);
        let stats = self.run_probed_on(artifact, Some(&probe))?;
        let report = probe
            .finish_into_report(stats.runtime)
            .expect("probe built from an enabled config");
        Ok((stats, report))
    }

    /// Builds the workload and runs with observation; see
    /// [`Sim::run_observed_on`].
    pub fn run_observed(&self) -> Result<(SystemStats, ObsReport), SimError> {
        self.run_observed_on(&self.build_artifact()?)
    }
}

/// Matches a page-policy override pattern against a region name: exact
/// match, or prefix match when the pattern ends in `*` (so `"*"` alone
/// matches everything).
fn glob_match(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_config() {
        let cfg = Sim::workload("spmv")
            .cores(64)
            .prefetcher("imp")
            .partial(PartialMode::NocOnly)
            .core_model(CoreModel::OutOfOrder)
            .tune_imp(|i| i.max_prefetch_distance = 8)
            .config()
            .unwrap();
        assert_eq!(cfg.cores, 64);
        assert_eq!(cfg.prefetcher.name, "imp");
        assert_eq!(cfg.partial, PartialMode::NocOnly);
        assert_eq!(cfg.core_model, CoreModel::OutOfOrder);
        assert_eq!(cfg.imp.max_prefetch_distance, 8);
    }

    #[test]
    fn event_budget_fails_typed_with_partial_stats() {
        let base = Sim::workload("spmv").scale(Scale::Tiny).cores(16);
        match base.clone().event_budget(100).run() {
            Err(SimError::EventBudgetExceeded { events, stats }) => {
                assert_eq!(events, 100);
                // The cutoff snapshot is a real (if partial) stats
                // object, not a placeholder.
                assert_eq!(stats.cores.len(), 16);
            }
            other => panic!("expected EventBudgetExceeded, got {other:?}"),
        }
        // The budget is a guard rail, not a timing knob: it stays out
        // of the canonical input (store digests must not change).
        assert_eq!(
            base.canonical_input().unwrap(),
            base.clone().event_budget(100).canonical_input().unwrap()
        );
        // A run that fits the budget is unaffected by it.
        let free = base.run().unwrap();
        let capped = base.clone().event_budget(u64::MAX).run().unwrap();
        assert_eq!(free, capped);
    }

    #[test]
    fn invalid_inputs_surface_as_errors() {
        assert_eq!(
            Sim::workload("spmv").cores(48).run().unwrap_err(),
            SimError::InvalidCores(48)
        );
        assert_eq!(
            Sim::workload("not-a-kernel").cores(16).run().unwrap_err(),
            SimError::UnknownWorkload("not-a-kernel".to_string())
        );
        match Sim::workload("spmv")
            .scale(Scale::Tiny)
            .prefetcher("definitely-unregistered")
            .run()
        {
            Err(SimError::Prefetcher(RegistryError::UnknownPrefetcher { name, .. })) => {
                assert_eq!(name, "definitely-unregistered");
            }
            other => panic!("expected unknown-prefetcher error, got {other:?}"),
        }
    }

    #[test]
    fn tlb_knobs_upgrade_an_ideal_base_and_apply() {
        let cfg = Sim::workload("spmv")
            .page_size(1 << 16)
            .tlb_ways(8)
            .translation_policy(TranslationPolicy::NonBlockingWalk)
            .config()
            .unwrap();
        assert!(!cfg.tlb.ideal, "setting a TLB knob enables the dTLB");
        assert_eq!(cfg.tlb.page_bytes, 1 << 16);
        assert_eq!(cfg.tlb.ways, 8);
        assert_eq!(cfg.tlb.policy, TranslationPolicy::NonBlockingWalk);
        // Untouched builders stay ideal (bit-identical to the seed).
        assert!(Sim::workload("spmv").config().unwrap().tlb.ideal);
        // Invalid page sizes surface as a typed error, not a panic.
        let err = Sim::workload("spmv")
            .scale(Scale::Tiny)
            .page_size(3000)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Tlb(_)), "{err:?}");
    }

    #[test]
    fn l2_tlb_knobs_upgrade_and_surface_typed_errors() {
        let cfg = Sim::workload("spmv")
            .l2_tlb(128, 8)
            .tlb_prefetch(true)
            .walk_model(WalkModel::Cached)
            .config()
            .unwrap();
        assert!(!cfg.tlb.ideal, "setting an L2 knob enables the dTLB");
        assert_eq!((cfg.tlb.l2_sets, cfg.tlb.l2_ways), (128, 8));
        assert!(cfg.tlb.tlb_prefetch);
        assert_eq!(cfg.tlb.walk_model, WalkModel::Cached);
        // A half-configured L2 TLB surfaces as a typed error, not a
        // panic.
        let err = Sim::workload("spmv")
            .scale(Scale::Tiny)
            .l2_tlb(128, 0)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Tlb(_)), "{err:?}");
    }

    #[test]
    fn page_policy_overrides_resolve_and_validate() {
        let base = Sim::workload("pagerank")
            .scale(Scale::Tiny)
            .prefetcher("imp")
            .tlb(TlbConfig::finite());
        let all4k = base.clone().run().unwrap();
        assert_eq!(all4k.tlb_huge_total(), Default::default());

        // Moving the indirect-target arrays to 2 MB pages routes their
        // translations through the huge sub-TLB (own ledger, shallower
        // walks) without touching data results.
        let huge = base
            .clone()
            .page_policy("pr0", PagePolicy::Huge2M)
            .page_policy("pr1", PagePolicy::Huge2M)
            .page_policy("deg", PagePolicy::Huge2M)
            .run()
            .unwrap();
        let h = huge.tlb_huge_total();
        assert!(h.lookups() > 0, "huge sub-TLB ran: {h:?}");
        assert_eq!(h.walk_levels, 3 * h.misses, "2 MB walks are 3 levels");
        assert!(
            huge.tlb_total().misses < all4k.tlb_total().misses,
            "huge pages shrink the miss stream: {} vs {}",
            huge.tlb_total().misses,
            all4k.tlb_total().misses
        );

        // Globs re-policy families; later overrides win.
        let all_huge = base
            .clone()
            .page_policy("*", PagePolicy::Huge2M)
            .run()
            .unwrap();
        assert_eq!(
            all_huge.tlb_base_total().lookups(),
            0,
            "every demand access translates huge"
        );
        let back_to_base = base
            .clone()
            .page_policy("*", PagePolicy::Huge2M)
            .page_policy("*", PagePolicy::Base4K)
            .run()
            .unwrap();
        assert_eq!(back_to_base, all4k, "later override wins, bit-identically");

        // Auto thresholds resolve per region size.
        let auto = base
            .clone()
            .page_policy(
                "*",
                PagePolicy::Auto {
                    threshold_bytes: u64::MAX,
                },
            )
            .run()
            .unwrap();
        assert_eq!(auto, all4k, "an unsatisfied Auto threshold is all-4K");

        // Unknown names are typed errors, not silent no-ops.
        assert_eq!(
            base.clone()
                .page_policy("no-such-array", PagePolicy::Huge2M)
                .run()
                .unwrap_err(),
            SimError::UnknownRegion("no-such-array".to_string())
        );

        // A policy override on an ideal TLB upgrades it to finite.
        assert!(
            !Sim::workload("pagerank")
                .page_policy("pr0", PagePolicy::Huge2M)
                .config()
                .unwrap()
                .tlb
                .ideal
        );
    }

    #[test]
    fn canonical_input_tracks_every_knob() {
        let base = Sim::workload("spmv").scale(Scale::Tiny);
        let c = base.canonical_input().unwrap();
        assert_eq!(base.canonical_input().unwrap(), c, "deterministic");
        for variant in [
            base.clone().with_workload("pagerank"),
            base.clone().seed(7),
            base.clone().scale(Scale::Small),
            base.clone().software_prefetch(16),
            base.clone().cores(64),
            base.clone().prefetcher("imp"),
            base.clone().manager("static"),
            base.clone().manager("throttle:accuracy_floor=0.4"),
            base.clone().partial(PartialMode::NocAndDram),
            base.clone().tlb(TlbConfig::finite()),
            base.clone().page_policy("ind", PagePolicy::Huge2M),
            base.clone().tune_imp(|i| i.max_prefetch_distance = 8),
        ] {
            assert_ne!(
                variant.canonical_input().unwrap(),
                c,
                "knob must change the canonical: {variant:?}"
            );
        }
        // An unresolvable configuration has no canonical form.
        assert!(base.clone().cores(48).canonical_input().is_err());
    }

    #[test]
    fn runs_match_the_manual_pipeline() {
        let fluent = Sim::workload("spmv")
            .scale(Scale::Tiny)
            .prefetcher("imp")
            .run()
            .unwrap();
        let manual = {
            let params = WorkloadParams::new(16, Scale::Tiny);
            let built = by_name("spmv").unwrap().build(&params);
            let cfg = SystemConfig::paper_default(16).with_prefetcher("imp");
            System::new(cfg, built.program, built.mem).run()
        };
        assert_eq!(fluent.runtime, manual.runtime);
        assert_eq!(fluent.traffic, manual.traffic);
    }

    #[test]
    fn malformed_spec_string_surfaces_as_error_not_panic() {
        match Sim::workload("spmv").prefetcher("stream:distance").run() {
            Err(SimError::InvalidSpec(msg)) => assert!(msg.contains("key=value"), "{msg}"),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn manager_spec_errors_surface_not_panic() {
        // A syntactically bad spec string fails like any other spec.
        match Sim::workload("spmv")
            .manager("throttle:accuracy_floor")
            .run()
        {
            Err(SimError::InvalidSpec(msg)) => assert!(msg.contains("key=value"), "{msg}"),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        // A well-formed spec naming an unknown policy fails at build.
        match Sim::workload("spmv")
            .scale(Scale::Tiny)
            .manager("nope")
            .run()
        {
            Err(SimError::Manager(e)) => assert!(e.to_string().contains("nope"), "{e}"),
            other => panic!("expected Manager, got {other:?}"),
        }
        // And so does a known policy with an out-of-range parameter.
        match Sim::workload("spmv")
            .scale(Scale::Tiny)
            .manager("throttle:accuracy_floor=1.5")
            .run()
        {
            Err(SimError::Manager(e)) => assert!(e.to_string().contains("floor"), "{e}"),
            other => panic!("expected Manager, got {other:?}"),
        }
    }

    #[test]
    fn from_config_seeds_state_and_fluent_setters_still_apply() {
        let mut cfg = SystemConfig::paper_default(16).with_prefetcher("ghb");
        cfg.mem.hop_latency = 5; // a field the fluent surface can't reach
        cfg.rob_entries = 64;

        // Untouched: the explicit config round-trips exactly.
        assert_eq!(Sim::from_config("spmv", cfg.clone()).config().unwrap(), cfg);

        // Fluent setters apply on top (so Sweep axes are never ignored).
        let got = Sim::from_config("spmv", cfg.clone())
            .prefetcher("imp")
            .partial(PartialMode::NocOnly)
            .config()
            .unwrap();
        assert_eq!(got.prefetcher.name, "imp");
        assert_eq!(got.partial, PartialMode::NocOnly);
        assert_eq!(got.mem.hop_latency, 5, "non-fluent fields preserved");

        // Changing cores rebuilds geometry at paper defaults but keeps
        // non-geometry fields.
        let scaled = Sim::from_config("spmv", cfg).cores(64).config().unwrap();
        assert_eq!(scaled.cores, 64);
        assert_eq!(
            scaled.mem.mem_controllers, 8,
            "geometry rebuilt for 64 cores"
        );
        assert_eq!(scaled.rob_entries, 64, "non-geometry field preserved");
        assert_eq!(scaled.prefetcher.name, "ghb");
    }
}
