//! The resumable experiment service: declarative sweep *request files*
//! executed against a shared [`ResultStore`].
//!
//! A request is a `key = value` text file describing a sweep grid
//! (see [`SweepRequest::parse`] for the grammar). [`serve_dir`] scans a
//! directory for `*.sweep` files, runs each grid through
//! [`Sweep::run_with`] — so cells already in the store are served from
//! disk and only new cells simulate — writes a JSON manifest next to
//! the request, and renames the request `.sweep.done`. Re-submitting
//! the same request is therefore free, and a request that died halfway
//! resumes from exactly the cells it had finished: the store, not the
//! service, is the source of truth.
//!
//! The `imp-sweepd` binary is a thin loop over [`serve_dir`].
//!
//! ```
//! use imp_experiments::SweepRequest;
//!
//! let req = SweepRequest::parse(
//!     "demo",
//!     "workloads = spmv\nprefetchers = none, imp\nscale = tiny\n",
//! )
//! .unwrap();
//! assert_eq!(req.to_sweep().cells().len(), 2);
//! ```

use crate::sim::Sim;
use crate::sweep::Sweep;
use crate::table::Table;
use imp_common::config::PartialMode;
use imp_obs::ObsConfig;
use imp_store::{digest_hex, ResultStore, StoreCounters};
use imp_workloads::Scale;
use std::fmt;
use std::path::{Path, PathBuf};

/// A parsed sweep request: the axes of one [`Sweep`] grid plus
/// execution knobs. Unset axes fall back to the template defaults,
/// exactly as the corresponding [`Sweep`] builder methods do.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRequest {
    /// Request name (the file stem); names the manifest.
    pub name: String,
    /// `workloads = spmv, pagerank` — required, at least one.
    pub workloads: Vec<String>,
    /// `cores = 16, 64`.
    pub cores: Vec<u32>,
    /// `prefetchers = none, stream, imp` (spec strings allowed).
    pub prefetchers: Vec<String>,
    /// `partials = off, noc, noc+dram`.
    pub partials: Vec<PartialMode>,
    /// `page_sizes = 4096, 2097152` (bytes).
    pub page_sizes: Vec<u64>,
    /// `tlb_ways = 2, 4, 8`.
    pub tlb_ways: Vec<u32>,
    /// `scale = tiny | small | large` (default `tiny`).
    pub scale: Scale,
    /// `seed = 7` (default 42, the [`Sim`] default — so a request over
    /// a grid the fluent API already ran shares its store entries).
    pub seed: u64,
    /// `threads = 4` — worker cap (default: available parallelism).
    pub threads: Option<usize>,
    /// `observe = on` — attach the metrics probe to every freshly
    /// simulated cell and add its summary columns to the manifest
    /// (default off). Cached cells keep `null` there: the store serves
    /// stats, not observations, and observing never re-simulates.
    pub observe: bool,
}

/// Why a request file could not be parsed or served.
#[derive(Debug)]
pub enum RequestError {
    /// Filesystem failure reading/writing the request directory.
    Io(std::io::Error),
    /// A malformed line in the request text.
    Parse {
        /// Request name.
        name: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "request i/o failure: {e}"),
            RequestError::Parse {
                name,
                line,
                message,
            } => write!(f, "request {name}, line {line}: {message}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// What [`serve_dir`] did with one request file.
#[derive(Debug)]
pub struct ServedRequest {
    /// The request file as found (before the `.done`/`.failed` rename).
    pub request: PathBuf,
    /// The manifest written next to it (absent if the request failed
    /// before producing one).
    pub manifest: Option<PathBuf>,
    /// Cells served from the store.
    pub cached: usize,
    /// Cells simulated (and persisted) by this request.
    pub simulated: usize,
    /// Cells that failed.
    pub failed: usize,
    /// This request's traffic against the store (counter delta across
    /// the run), absent if the request failed before running.
    pub store: Option<StoreCounters>,
    /// Why the request as a whole failed, if it did.
    pub error: Option<String>,
}

impl SweepRequest {
    /// Parses request text. Grammar: one `key = value` per line, `#`
    /// starts a comment, blank lines ignored; list values are
    /// comma-separated. Keys: `workloads` (required), `cores`,
    /// `prefetchers`, `partials` (`off` / `noc` / `noc+dram`),
    /// `page_sizes`, `tlb_ways`, `scale` (`tiny` / `small` / `large`),
    /// `seed`, `threads`, `observe` (`on` / `off`).
    ///
    /// # Errors
    ///
    /// [`RequestError::Parse`] with the offending line for an unknown
    /// key, an unparsable value, a repeated key, or a missing
    /// `workloads`.
    pub fn parse(name: &str, text: &str) -> Result<Self, RequestError> {
        let mut req = SweepRequest {
            name: name.to_string(),
            workloads: Vec::new(),
            cores: Vec::new(),
            prefetchers: Vec::new(),
            partials: Vec::new(),
            page_sizes: Vec::new(),
            tlb_ways: Vec::new(),
            scale: Scale::Tiny,
            seed: 42,
            threads: None,
            observe: false,
        };
        let fail = |line: usize, message: String| RequestError::Parse {
            name: name.to_string(),
            line,
            message,
        };
        let mut seen: Vec<String> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let (key, value) = stripped
                .split_once('=')
                .ok_or_else(|| fail(line, format!("expected `key = value`, got `{stripped}`")))?;
            let (key, value) = (key.trim(), value.trim());
            if seen.iter().any(|k| k == key) {
                return Err(fail(line, format!("key `{key}` given twice")));
            }
            seen.push(key.to_string());
            match key {
                "workloads" => req.workloads = list(value).map(str::to_string).collect(),
                "prefetchers" => req.prefetchers = list(value).map(str::to_string).collect(),
                "cores" => req.cores = numbers(value).map_err(|m| fail(line, m))?,
                "page_sizes" => req.page_sizes = numbers(value).map_err(|m| fail(line, m))?,
                "tlb_ways" => req.tlb_ways = numbers(value).map_err(|m| fail(line, m))?,
                "seed" => req.seed = one_number(value).map_err(|m| fail(line, m))?,
                "threads" => req.threads = Some(one_number(value).map_err(|m| fail(line, m))?),
                "observe" => {
                    req.observe = match value {
                        "on" | "true" => true,
                        "off" | "false" => false,
                        other => {
                            return Err(fail(
                                line,
                                format!("unknown observe value `{other}` (on / off)"),
                            ))
                        }
                    };
                }
                "partials" => {
                    req.partials = list(value)
                        .map(|p| match p {
                            "off" => Ok(PartialMode::Off),
                            "noc" => Ok(PartialMode::NocOnly),
                            "noc+dram" => Ok(PartialMode::NocAndDram),
                            other => Err(fail(
                                line,
                                format!("unknown partial mode `{other}` (off / noc / noc+dram)"),
                            )),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "scale" => {
                    req.scale = match value {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "large" => Scale::Large,
                        other => {
                            return Err(fail(
                                line,
                                format!("unknown scale `{other}` (tiny / small / large)"),
                            ))
                        }
                    };
                }
                other => return Err(fail(line, format!("unknown key `{other}`"))),
            }
        }
        if req.workloads.is_empty() {
            return Err(fail(0, "`workloads` is required".to_string()));
        }
        Ok(req)
    }

    /// Reads and parses a request file; the name is the file stem.
    ///
    /// # Errors
    ///
    /// I/O reading the file, or any [`SweepRequest::parse`] error.
    pub fn from_file(path: &Path) -> Result<Self, RequestError> {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "request".to_string());
        SweepRequest::parse(&name, &std::fs::read_to_string(path)?)
    }

    /// The [`Sweep`] this request describes.
    pub fn to_sweep(&self) -> Sweep {
        let mut sweep = Sweep::from(
            Sim::workload(&self.workloads[0])
                .scale(self.scale)
                .seed(self.seed),
        )
        .workloads(self.workloads.iter().cloned())
        .cores(self.cores.iter().copied())
        .partials(self.partials.iter().copied())
        .page_sizes(self.page_sizes.iter().copied())
        .tlb_ways(self.tlb_ways.iter().copied());
        if !self.prefetchers.is_empty() {
            sweep = sweep.prefetchers(self.prefetchers.iter().map(String::as_str));
        }
        if let Some(n) = self.threads {
            sweep = sweep.threads(n);
        }
        if self.observe {
            sweep = sweep.observe(ObsConfig::metrics());
        }
        sweep
    }

    /// Runs the request against `store` and renders the manifest: one
    /// row per cell in grid order, labelled
    /// `<digest> <workload>@<cores> <prefetcher> <status>` with status
    /// `hit`, `sim`, or `fail`, and columns for the runtime and the
    /// hit/simulated/failed flags. Failed cells keep their row (runtime
    /// 0) so the manifest always has exactly one row per grid cell.
    /// With `observe = on` the table grows summary columns
    /// (`demand_p50`/`demand_p99`/`pf_used`/`pf_late`/`pf_unused`)
    /// filled on freshly simulated cells and `null` on cached or
    /// failed ones.
    ///
    /// # Errors
    ///
    /// A malformed grid or an unreadable store
    /// ([`crate::SimError::Store`]), stringified — per-cell failures
    /// are rows, not errors.
    pub fn process(
        &self,
        store: &ResultStore,
    ) -> Result<(Table, crate::sweep::SweepReport), String> {
        let mut headers = vec!["runtime", "cached", "simulated", "failed"];
        if self.observe {
            headers.extend([
                "demand_p50",
                "demand_p99",
                "pf_used",
                "pf_late",
                "pf_unused",
            ]);
        }
        let mut table = Table::new(self.name.clone(), headers);
        let report = self
            .to_sweep()
            .run_with(store, |outcome| {
                let (status, runtime, ok) = match &outcome.result {
                    Ok(r) => (
                        if outcome.cached { "hit" } else { "sim" },
                        r.stats.runtime as f64,
                        true,
                    ),
                    Err(_) => ("fail", 0.0, false),
                };
                let cell = match &outcome.result {
                    Ok(r) => &r.cell,
                    Err(e) => &e.cell,
                };
                let label = format!(
                    "{} {}@{} {} {}",
                    digest_hex(outcome.digest),
                    cell.workload,
                    cell.cores,
                    cell.prefetcher,
                    status
                );
                let hit = f64::from(u8::from(outcome.cached));
                let sim = f64::from(u8::from(ok && !outcome.cached));
                let fail = f64::from(u8::from(!ok));
                let mut values = vec![runtime, hit, sim, fail];
                if self.observe {
                    // Cached and failed cells carry no observation; NaN
                    // exports as JSON `null` / an empty CSV field.
                    let obs = outcome.result.as_ref().ok().and_then(|r| r.obs.as_ref());
                    let quantile = |q: Option<u64>| q.map_or(f64::NAN, |v| v as f64);
                    let count = |c: Option<u64>| c.map_or(f64::NAN, |v| v as f64);
                    values.extend([
                        quantile(obs.and_then(|o| o.demand_p50)),
                        quantile(obs.and_then(|o| o.demand_p99)),
                        count(obs.map(|o| o.ledger.used)),
                        count(obs.map(|o| o.ledger.late)),
                        count(obs.map(|o| o.ledger.evicted_unused)),
                    ]);
                }
                table.row(&label, values);
            })
            .map_err(|e| e.to_string())?;
        Ok((table, report))
    }
}

/// Comma-separated list items, trimmed, empties dropped.
fn list(value: &str) -> impl Iterator<Item = &str> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn numbers<T: std::str::FromStr>(value: &str) -> Result<Vec<T>, String> {
    list(value)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("`{v}` is not a valid number"))
        })
        .collect()
}

fn one_number<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("`{value}` is not a valid number"))
}

/// Serves every `*.sweep` request in `dir` once, in name order:
/// parse → run against `store` (cached cells free) → write
/// `<name>.manifest.json` → rename the request `<name>.sweep.done`.
/// A request that fails is renamed `<name>.sweep.failed` with the
/// error in `<name>.error.txt`; other requests still run. Daemons
/// (`imp-sweepd`) call this in a loop — renaming is what makes each
/// pass idempotent.
///
/// # Errors
///
/// Only directory-level I/O (the listing itself); per-request failures
/// come back in their [`ServedRequest::error`] slots.
pub fn serve_dir(dir: &Path, store: &ResultStore) -> Result<Vec<ServedRequest>, RequestError> {
    let mut requests: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "sweep"))
        .collect();
    requests.sort();
    let mut served = Vec::with_capacity(requests.len());
    for request in requests {
        served.push(serve_one(&request, store));
    }
    Ok(served)
}

/// The manifest JSON: the table object extended with a `"store"` key
/// holding this request's counter delta against the result store.
fn manifest_json(table: &Table, store: &StoreCounters) -> String {
    let mut json = table.to_json();
    debug_assert!(json.ends_with('}'));
    json.pop();
    json.push_str(&format!(
        ",\"store\":{{\"hits\":{},\"misses\":{},\"rejected\":{},\"puts\":{}}}}}",
        store.hits, store.misses, store.rejected, store.puts
    ));
    json
}

fn serve_one(request: &Path, store: &ResultStore) -> ServedRequest {
    let mut served = ServedRequest {
        request: request.to_path_buf(),
        manifest: None,
        cached: 0,
        simulated: 0,
        failed: 0,
        store: None,
        error: None,
    };
    let before = store.counters();
    let outcome = SweepRequest::from_file(request)
        .map_err(|e| e.to_string())
        .and_then(|req| req.process(store));
    match outcome {
        Ok((table, report)) => {
            // Counters are per-process and shared across requests; the
            // delta across this run is this request's own traffic.
            let after = store.counters();
            let delta = StoreCounters {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                rejected: after.rejected - before.rejected,
                puts: after.puts - before.puts,
            };
            served.store = Some(delta);
            let manifest = request.with_extension("manifest.json");
            served.cached = report.cached;
            served.simulated = report.simulated;
            served.failed = report.failed;
            if let Err(e) = std::fs::write(&manifest, manifest_json(&table, &delta)) {
                served.error = Some(format!("writing manifest: {e}"));
            } else {
                served.manifest = Some(manifest);
            }
            if let Some(e) = report.store_error {
                served.error.get_or_insert(format!("store write: {e}"));
            }
        }
        Err(e) => served.error = Some(e),
    }
    let suffix = if served.error.is_none() {
        "sweep.done"
    } else {
        let _ = std::fs::write(
            request.with_extension("error.txt"),
            served.error.as_deref().unwrap_or(""),
        );
        "sweep.failed"
    };
    if let Err(e) = std::fs::rename(request, request.with_extension(suffix)) {
        served
            .error
            .get_or_insert(format!("renaming processed request: {e}"));
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("imp-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_reads_every_key_and_rejects_junk() {
        let req = SweepRequest::parse(
            "r",
            "# grid\nworkloads = spmv, pagerank\ncores = 16, 64\n\
             prefetchers = none, imp\npartials = off, noc+dram\n\
             page_sizes = 4096\ntlb_ways = 4, 8\nscale = small\n\
             seed = 7\nthreads = 2 # cap\nobserve = on\n",
        )
        .unwrap();
        assert_eq!(req.workloads, ["spmv", "pagerank"]);
        assert_eq!(req.cores, [16, 64]);
        assert_eq!(req.partials, [PartialMode::Off, PartialMode::NocAndDram]);
        assert_eq!(
            (req.scale, req.seed, req.threads, req.observe),
            (Scale::Small, 7, Some(2), true)
        );
        assert_eq!(req.to_sweep().cells().len(), 2 * 2 * 2 * 2 * 2);

        for (text, what) in [
            ("cores = 16", "workloads is required"),
            ("workloads = spmv\nbogus = 1", "unknown key"),
            ("workloads = spmv\ncores = many", "bad number"),
            ("workloads = spmv\npartials = sideways", "bad partial"),
            ("workloads = spmv\nscale = huge", "bad scale"),
            ("workloads = spmv\nobserve = maybe", "bad observe"),
            ("workloads = spmv\nseed = 1\nseed = 2", "repeated key"),
            ("workloads = spmv\nno equals", "missing ="),
        ] {
            let err = SweepRequest::parse("r", text).unwrap_err();
            assert!(matches!(err, RequestError::Parse { .. }), "{what}: {err}");
        }
    }

    #[test]
    fn serve_dir_writes_manifests_and_resumes_from_the_store() {
        let dir = scratch("dir");
        let store = ResultStore::open(dir.join("store")).unwrap();
        std::fs::write(
            dir.join("a.sweep"),
            "workloads = spmv\nprefetchers = none, imp\nthreads = 2\nobserve = on\n",
        )
        .unwrap();
        std::fs::write(dir.join("bad.sweep"), "cores = 16\n").unwrap();

        let served = serve_dir(&dir, &store).unwrap();
        assert_eq!(served.len(), 2);
        let a = &served[0];
        assert_eq!((a.cached, a.simulated, a.failed), (0, 2, 0));
        assert!(a.error.is_none());
        let delta = a.store.unwrap();
        assert_eq!((delta.hits, delta.misses, delta.puts), (0, 2, 2));
        let manifest = std::fs::read_to_string(a.manifest.as_ref().unwrap()).unwrap();
        assert!(manifest.contains("\"a\""), "titled by request: {manifest}");
        assert!(manifest.contains(" sim\""), "cold cells marked sim");
        assert!(
            manifest.contains("\"store\":{\"hits\":0,\"misses\":2,\"rejected\":0,\"puts\":2}"),
            "store delta embedded: {manifest}"
        );
        assert!(manifest.contains("\"demand_p99\""), "obs columns present");
        assert!(dir.join("a.sweep.done").exists());
        let bad = &served[1];
        assert!(bad.error.as_ref().unwrap().contains("workloads"));
        assert!(dir.join("bad.sweep.failed").exists());
        assert!(dir.join("bad.error.txt").exists());

        // Resubmitting the same grid is served entirely from the store.
        std::fs::rename(dir.join("a.sweep.done"), dir.join("a.sweep")).unwrap();
        let again = serve_dir(&dir, &store).unwrap();
        assert_eq!(again.len(), 1, "failed request not rescanned");
        assert_eq!((again[0].cached, again[0].simulated), (2, 0));
        let warm_delta = again[0].store.unwrap();
        assert_eq!((warm_delta.hits, warm_delta.puts), (2, 0));
        let warm = std::fs::read_to_string(again[0].manifest.as_ref().unwrap()).unwrap();
        assert!(warm.contains(" hit\""), "warm cells marked hit");
        assert!(
            warm.contains("\"hits\":2") && warm.contains("\"puts\":0"),
            "warm run served from the store: {warm}"
        );
        // Cached cells carry no observation: their obs columns are null.
        assert!(warm.contains("null"), "cached cells have null obs columns");
        std::fs::remove_dir_all(&dir).ok();
    }
}
