//! Parameter sweeps: fan a grid of simulation cells across threads and
//! collect structured results.
//!
//! A [`Sweep`] starts from a template [`Sim`] and varies any axis —
//! workloads, core counts, prefetcher specs, partial-accessing modes,
//! and the translation sub-grid (page sizes, dTLB ways, translation
//! policies, L2-TLB geometries, translation prefetching, walk models,
//! per-region page placements).
//! Cells are enumerated in a deterministic cross-product order and
//! executed by a scoped worker pool; each cell derives its
//! workload-generation seed from the template seed and the cell's
//! (workload, cores) coordinates — never from scheduling — so results are
//! identical whatever the thread count, and cells that differ only in
//! prefetcher or partial mode run the *same* generated input (the
//! comparison the paper's figures make).
//!
//! Cells sharing an input do not rebuild it: the grid is grouped by its
//! distinct (workload, cores, seed) coordinates — scale and
//! software-prefetch settings come from the template and are constant
//! across the grid — each group's [`imp_workloads::BuiltArtifact`] is
//! built exactly once, and the prefetcher × partial cells fan out over
//! the shared artifact ([`Sim::run_on`]). Because artifacts are
//! immutable to the simulator, the statistics are bit-identical to
//! rebuilding per cell; only the wall-clock changes.
//!
//! ```
//! use imp_experiments::{Sim, Sweep};
//! use imp_workloads::Scale;
//!
//! let results = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
//!     .prefetchers(["stream", "imp"])
//!     .cores([16])
//!     .run()
//!     .unwrap();
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.stats.runtime > 0));
//! ```

use crate::sim::{Sim, SimError};
use imp_common::config::{
    PagePolicy, PartialMode, PrefetcherSpec, TlbConfig, TranslationPolicy, WalkModel,
};
use imp_common::{fnv1a, SplitMix64, SystemStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point of the sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Workload name.
    pub workload: String,
    /// Core count.
    pub cores: u32,
    /// Prefetcher spec.
    pub prefetcher: PrefetcherSpec,
    /// Partial cacheline accessing mode.
    pub partial: PartialMode,
    /// dTLB / page-walk configuration (ideal unless a TLB axis is
    /// swept or the template enables one).
    pub tlb: TlbConfig,
    /// Page-policy overrides this cell applies to the workload's
    /// regions (empty = every region keeps its declared policy).
    /// Placement is translation-only, so cells differing only here
    /// share one generated input.
    pub page_policy: Vec<(String, PagePolicy)>,
    /// Workload-generation seed this cell ran with.
    pub seed: u64,
}

/// A finished cell: where it ran and what came back.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The grid point.
    pub cell: SweepCell,
    /// The simulation statistics.
    pub stats: SystemStats,
}

/// A failed cell: where it was and why it failed.
#[derive(Clone, Debug)]
pub struct SweepCellError {
    /// The grid point.
    pub cell: SweepCell,
    /// What went wrong.
    pub error: SimError,
}

impl std::fmt::Display for SweepCellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{} [{} / {:?}]: {}",
            self.cell.workload,
            self.cell.cores,
            self.cell.prefetcher,
            self.cell.partial,
            self.error
        )
    }
}

impl std::error::Error for SweepCellError {}

/// A config-grid runner over a template [`Sim`]. See the module docs.
#[derive(Clone, Debug)]
pub struct Sweep {
    base: Sim,
    workloads: Vec<String>,
    cores: Vec<u32>,
    prefetchers: Vec<PrefetcherSpec>,
    partials: Vec<PartialMode>,
    page_sizes: Vec<u64>,
    tlb_ways: Vec<u32>,
    policies: Vec<TranslationPolicy>,
    l2_tlbs: Vec<(u32, u32)>,
    tlb_prefetches: Vec<bool>,
    walk_models: Vec<WalkModel>,
    page_policies: Vec<Vec<(String, PagePolicy)>>,
    threads: Option<usize>,
    spec_error: Option<String>,
}

impl From<Sim> for Sweep {
    fn from(base: Sim) -> Self {
        Sweep {
            workloads: vec![base.workload_name().to_string()],
            cores: Vec::new(),
            prefetchers: Vec::new(),
            partials: Vec::new(),
            page_sizes: Vec::new(),
            tlb_ways: Vec::new(),
            policies: Vec::new(),
            l2_tlbs: Vec::new(),
            tlb_prefetches: Vec::new(),
            walk_models: Vec::new(),
            page_policies: Vec::new(),
            threads: None,
            spec_error: None,
            base,
        }
    }
}

impl Sweep {
    /// A sweep whose unvaried axes come from the template `base`.
    pub fn new(base: Sim) -> Self {
        Sweep::from(base)
    }

    /// Varies the workload axis.
    #[must_use]
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    /// Varies the core-count axis.
    #[must_use]
    pub fn cores<I: IntoIterator<Item = u32>>(mut self, counts: I) -> Self {
        self.cores = counts.into_iter().collect();
        self
    }

    /// Varies the prefetcher axis (specs, kinds, or spec strings). A
    /// malformed spec string surfaces as [`SimError::InvalidSpec`] from
    /// [`Sweep::run`] rather than panicking here.
    #[must_use]
    pub fn prefetchers<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: TryInto<PrefetcherSpec>,
        S::Error: std::fmt::Display,
    {
        self.prefetchers = Vec::new();
        for spec in specs {
            match spec.try_into() {
                Ok(s) => self.prefetchers.push(s),
                Err(e) => self.spec_error = Some(e.to_string()),
            }
        }
        self
    }

    /// Varies the partial-accessing axis.
    #[must_use]
    pub fn partials<I: IntoIterator<Item = PartialMode>>(mut self, modes: I) -> Self {
        self.partials = modes.into_iter().collect();
        self
    }

    /// Varies the translation page size (bytes per page). Setting any
    /// TLB axis upgrades an ideal template TLB to the
    /// [`TlbConfig::finite`] defaults, then applies the swept knob.
    #[must_use]
    pub fn page_sizes<I: IntoIterator<Item = u64>>(mut self, sizes: I) -> Self {
        self.page_sizes = sizes.into_iter().collect();
        self
    }

    /// Varies the dTLB associativity (ways per set); see
    /// [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn tlb_ways<I: IntoIterator<Item = u32>>(mut self, ways: I) -> Self {
        self.tlb_ways = ways.into_iter().collect();
        self
    }

    /// Varies the prefetch-translation policy; see
    /// [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn translation_policies<I: IntoIterator<Item = TranslationPolicy>>(
        mut self,
        policies: I,
    ) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Varies the shared L2-TLB geometry as `(sets, ways)` pairs
    /// (`(0, 0)` is the no-L2 point); see [`Sweep::page_sizes`] for how
    /// an ideal template upgrades.
    #[must_use]
    pub fn l2_tlbs<I: IntoIterator<Item = (u32, u32)>>(mut self, geometries: I) -> Self {
        self.l2_tlbs = geometries.into_iter().collect();
        self
    }

    /// Varies the translation-prefetching knob; see
    /// [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn tlb_prefetches<I: IntoIterator<Item = bool>>(mut self, settings: I) -> Self {
        self.tlb_prefetches = settings.into_iter().collect();
        self
    }

    /// Varies the walk-timing model; see [`Sweep::page_sizes`] for how
    /// an ideal template upgrades.
    #[must_use]
    pub fn walk_models<I: IntoIterator<Item = WalkModel>>(mut self, models: I) -> Self {
        self.walk_models = models.into_iter().collect();
        self
    }

    /// Varies the per-region page placement: each axis value is one
    /// `Sim::page_policy`-style override set applied to the workload's
    /// regions (an empty set keeps every declared policy — the all-4K
    /// baseline). Placement is translation-only, so the whole axis
    /// shares one built artifact per (workload, cores, seed) input;
    /// see [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn page_policies<I, O, S>(mut self, sets: I) -> Self
    where
        I: IntoIterator<Item = O>,
        O: IntoIterator<Item = (S, PagePolicy)>,
        S: Into<String>,
    {
        self.page_policies = sets
            .into_iter()
            .map(|set| {
                set.into_iter()
                    .map(|(name, policy)| (name.into(), policy))
                    .collect()
            })
            .collect();
        self
    }

    /// Caps the worker-thread count (default: available parallelism).
    /// `threads(1)` runs the grid inline on the calling thread.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Enumerates the grid in its deterministic execution order
    /// (workload-major, then cores, prefetchers, partial modes).
    pub fn cells(&self) -> Vec<SweepCell> {
        let one_cfg;
        let (cores, prefetchers, partials) = {
            one_cfg = (
                vec![self.base_cores()],
                vec![self.base_prefetcher()],
                vec![self.base_partial()],
            );
            (
                if self.cores.is_empty() {
                    &one_cfg.0
                } else {
                    &self.cores
                },
                if self.prefetchers.is_empty() {
                    &one_cfg.1
                } else {
                    &self.prefetchers
                },
                if self.partials.is_empty() {
                    &one_cfg.2
                } else {
                    &self.partials
                },
            )
        };
        let tlbs = self.tlb_variants();
        let base_policies = vec![self.base.page_policy_overrides().to_vec()];
        let policy_sets = if self.page_policies.is_empty() {
            &base_policies
        } else {
            &self.page_policies
        };
        let mut cells = Vec::new();
        for w in &self.workloads {
            for &n in cores {
                for p in prefetchers {
                    for &m in partials {
                        for &tlb in &tlbs {
                            for pp in policy_sets {
                                cells.push(SweepCell {
                                    workload: w.clone(),
                                    cores: n,
                                    prefetcher: p.clone(),
                                    partial: m,
                                    tlb,
                                    page_policy: pp.clone(),
                                    seed: cell_seed(self.base_seed(), w, n),
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The translation sub-grid: the cross product of every swept TLB
    /// axis (page sizes, dTLB ways, translation policies, L2-TLB
    /// geometries, translation prefetching, walk models), in that
    /// nesting order with the walk model varying fastest. Any swept
    /// TLB knob upgrades an ideal template to the finite defaults;
    /// with no TLB axis swept this is exactly the template's TLB.
    fn tlb_variants(&self) -> Vec<TlbConfig> {
        let tlb_swept = !(self.page_sizes.is_empty()
            && self.tlb_ways.is_empty()
            && self.policies.is_empty()
            && self.l2_tlbs.is_empty()
            && self.tlb_prefetches.is_empty()
            && self.walk_models.is_empty()
            && self.page_policies.is_empty());
        let base = if tlb_swept {
            self.base_tlb().finite_or_self()
        } else {
            self.base_tlb()
        };
        let one = (
            vec![base.page_bytes],
            vec![base.ways],
            vec![base.policy],
            vec![(base.l2_sets, base.l2_ways)],
            vec![base.tlb_prefetch],
            vec![base.walk_model],
        );
        let page_sizes = if self.page_sizes.is_empty() {
            &one.0
        } else {
            &self.page_sizes
        };
        let tlb_ways = if self.tlb_ways.is_empty() {
            &one.1
        } else {
            &self.tlb_ways
        };
        let policies = if self.policies.is_empty() {
            &one.2
        } else {
            &self.policies
        };
        let l2s = if self.l2_tlbs.is_empty() {
            &one.3
        } else {
            &self.l2_tlbs
        };
        let tps = if self.tlb_prefetches.is_empty() {
            &one.4
        } else {
            &self.tlb_prefetches
        };
        let wms = if self.walk_models.is_empty() {
            &one.5
        } else {
            &self.walk_models
        };
        let mut out = Vec::new();
        for &ps in page_sizes {
            for &ways in tlb_ways {
                for &policy in policies {
                    for &(l2s_n, l2w) in l2s {
                        for &tp in tps {
                            for &wm in wms {
                                out.push(
                                    base.with_page_bytes(ps)
                                        .with_ways(ways)
                                        .with_policy(policy)
                                        .with_l2(l2s_n, l2w)
                                        .with_tlb_prefetch(tp)
                                        .with_walk_model(wm),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs every cell and returns results in [`Sweep::cells`] order.
    /// The first failing cell's error is returned; completed work for
    /// other cells is discarded — use [`Sweep::run_partial`] to keep
    /// the grid when individual cells fail.
    pub fn run(&self) -> Result<Vec<SweepResult>, SimError> {
        self.run_partial()?
            .into_iter()
            .map(|r| r.map_err(|e| e.error))
            .collect()
    }

    /// Runs every cell, returning a per-cell `Result` in
    /// [`Sweep::cells`] order: one bad cell (an unresolvable prefetcher,
    /// a failed `trace:` replay, an invalid core count) no longer throws
    /// away the completed rest of the grid.
    ///
    /// Each distinct (workload, cores, seed) input is built exactly once
    /// and shared read-only across the cells that use it; a failed build
    /// is reported by every cell of its group.
    ///
    /// # Errors
    ///
    /// The outer `Err` is reserved for a malformed grid — an axis spec
    /// string that did not parse — where no cells can be enumerated at
    /// all. Everything that goes wrong *inside* a cell comes back in
    /// that cell's slot.
    // A cell's error carries its (string-heavy) grid coordinates by
    // design; boxing would just push the size into every caller match.
    #[allow(clippy::type_complexity, clippy::result_large_err)]
    pub fn run_partial(&self) -> Result<Vec<Result<SweepResult, SweepCellError>>, SimError> {
        if let Some(e) = &self.spec_error {
            return Err(SimError::InvalidSpec(e.clone()));
        }
        let cells = self.cells();
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1)
            })
            .min(cells.len().max(1));

        // Group cells by distinct generated input. Scale and
        // software-prefetch settings come from the template, so within
        // one sweep the input is determined by (workload, cores, seed).
        let mut groups: Vec<(String, u32, u64)> = Vec::new();
        let group_of: Vec<usize> = cells
            .iter()
            .map(|cell| {
                let key = (cell.workload.clone(), cell.cores, cell.seed);
                groups.iter().position(|g| *g == key).unwrap_or_else(|| {
                    groups.push(key);
                    groups.len() - 1
                })
            })
            .collect();

        // Build each distinct artifact exactly once, in parallel.
        let artifacts = fanout(groups.len(), threads.min(groups.len()), |g| {
            let (workload, cores, seed) = &groups[g];
            self.base
                .clone()
                .with_workload(workload)
                .cores(*cores)
                .seed(*seed)
                .build_artifact()
        });

        // Fan the configuration cells out over the shared artifacts.
        let outcomes = fanout(cells.len(), threads, |i| {
            let cell = &cells[i];
            let artifact = artifacts[group_of[i]].as_ref().map_err(Clone::clone)?;
            self.base
                .clone()
                .with_workload(&cell.workload)
                .cores(cell.cores)
                .prefetcher(cell.prefetcher.clone())
                .partial(cell.partial)
                .tlb(cell.tlb)
                .page_policies(cell.page_policy.clone())
                .seed(cell.seed)
                .run_on(artifact)
        });
        Ok(cells
            .into_iter()
            .zip(outcomes)
            .map(|(cell, outcome)| match outcome {
                Ok(stats) => Ok(SweepResult { cell, stats }),
                Err(error) => Err(SweepCellError { cell, error }),
            })
            .collect())
    }

    fn base_cores(&self) -> u32 {
        self.base.config().map(|c| c.cores).unwrap_or(16)
    }

    fn base_prefetcher(&self) -> PrefetcherSpec {
        self.base.config().map(|c| c.prefetcher).unwrap_or_default()
    }

    fn base_partial(&self) -> PartialMode {
        self.base.config().map(|c| c.partial).unwrap_or_default()
    }

    fn base_tlb(&self) -> TlbConfig {
        self.base.config().map(|c| c.tlb).unwrap_or_default()
    }

    fn base_seed(&self) -> u64 {
        self.base.seed_value()
    }
}

/// Mixes the template seed with the cell's input coordinates (workload
/// and core count). Cells differing only in prefetcher or partial mode
/// share a seed — and therefore the generated input — while different
/// inputs decorrelate; nothing depends on scheduling.
fn cell_seed(base: u64, workload: &str, cores: u32) -> u64 {
    let h = fnv1a(workload.as_bytes());
    SplitMix64::new(base ^ h ^ u64::from(cores)).next_u64()
}

/// Runs `f(0..n)` on up to `threads` scoped workers; results come back
/// in index order.
pub(crate) fn fanout<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("fanout slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fanout slot")
                .expect("worker filled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_workloads::Scale;

    #[test]
    fn cells_enumerate_the_cross_product_in_order() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .workloads(["spmv", "pagerank"])
            .cores([16, 64])
            .prefetchers(["stream", "imp"]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload, "spmv");
        assert_eq!(cells[0].cores, 16);
        assert_eq!(cells[0].prefetcher.name, "stream");
        assert_eq!(cells[1].prefetcher.name, "imp");
        assert_eq!(cells[2].cores, 64);
        assert_eq!(cells[4].workload, "pagerank");
        // Seeds are reproducible, shared across prefetcher-only
        // differences (same generated input), distinct across inputs.
        let again = sweep.cells();
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.seed, b.seed);
        }
        assert_eq!(cells[0].seed, cells[1].seed, "stream vs imp: same input");
        assert_ne!(cells[0].seed, cells[2].seed, "16 vs 64 cores: new input");
        assert_ne!(cells[0].seed, cells[4].seed, "spmv vs pagerank: new input");
    }

    #[test]
    fn tlb_axes_extend_the_grid_and_share_inputs() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["imp"])
            .page_sizes([4096, 1 << 16])
            .tlb_ways([2, 4])
            .translation_policies([
                TranslationPolicy::DropOnMiss,
                TranslationPolicy::NonBlockingWalk,
            ]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert!(
            cells.iter().all(|c| !c.tlb.ideal),
            "sweeping a TLB knob enables the dTLB"
        );
        assert_eq!(cells[0].tlb.page_bytes, 4096);
        assert_eq!(cells[0].tlb.ways, 2);
        assert_eq!(cells[0].tlb.policy, TranslationPolicy::DropOnMiss);
        assert_eq!(cells[7].tlb.page_bytes, 1 << 16);
        assert_eq!(cells[7].tlb.ways, 4);
        assert_eq!(cells[7].tlb.policy, TranslationPolicy::NonBlockingWalk);
        assert_eq!(
            cells[0].seed, cells[7].seed,
            "TLB axes never change the generated input"
        );
        // Without TLB axes, cells keep the template's (ideal) TLB.
        assert!(Sweep::from(Sim::workload("spmv")).cells()[0].tlb.ideal);
    }

    #[test]
    fn l2_and_prefetch_axes_extend_the_translation_subgrid() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .l2_tlbs([(0, 0), (128, 8)])
            .tlb_prefetches([false, true])
            .walk_models([WalkModel::Flat, WalkModel::Cached]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert!(
            cells.iter().all(|c| !c.tlb.ideal),
            "sweeping any translation knob enables the dTLB"
        );
        // Walk model varies fastest, then tlb_prefetch, then L2.
        assert_eq!(cells[0].tlb.walk_model, WalkModel::Flat);
        assert_eq!(cells[1].tlb.walk_model, WalkModel::Cached);
        assert!(!cells[0].tlb.tlb_prefetch);
        assert!(cells[2].tlb.tlb_prefetch);
        assert!(!cells[0].tlb.has_l2());
        assert!(cells[4].tlb.has_l2());
        assert_eq!((cells[7].tlb.l2_sets, cells[7].tlb.l2_ways), (128, 8));
        assert!(cells[7].tlb.tlb_prefetch);
        assert_eq!(cells[7].tlb.walk_model, WalkModel::Cached);
        // One generated input across the whole translation sub-grid.
        assert!(cells.iter().all(|c| c.seed == cells[0].seed));
    }

    #[test]
    fn page_policy_axis_extends_the_grid_and_shares_inputs() {
        let sweep = Sweep::from(
            Sim::workload("pagerank")
                .scale(Scale::Tiny)
                .prefetcher("imp"),
        )
        .page_policies([vec![], vec![("pr0".to_string(), PagePolicy::Huge2M)]]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 2);
        assert!(
            cells.iter().all(|c| !c.tlb.ideal),
            "sweeping placement enables the dTLB"
        );
        assert!(cells[0].page_policy.is_empty());
        assert_eq!(cells[1].page_policy[0].0, "pr0");
        assert_eq!(
            cells[0].seed, cells[1].seed,
            "placement never changes the generated input"
        );
        let results = sweep.run().unwrap();
        assert_eq!(results[0].stats.tlb_huge_total(), Default::default());
        assert!(results[1].stats.tlb_huge_total().lookups() > 0);
        // Without the axis, cells inherit the template's overrides.
        let inherited =
            Sweep::from(Sim::workload("pagerank").page_policy("pr0", PagePolicy::Huge2M)).cells();
        assert_eq!(inherited[0].page_policy.len(), 1);
    }

    #[test]
    fn fanout_preserves_index_order() {
        let out = fanout(17, 4, |i| i * 3);
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(fanout(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fanout(3, 1, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn errors_propagate_from_cells() {
        let err = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream", "no-such-prefetcher"])
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Prefetcher(_)), "{err:?}");
    }

    #[test]
    fn run_partial_keeps_the_rest_of_the_grid() {
        // One bad axis value (an unregistered prefetcher) fails only its
        // own cells; `run()` on the same grid discards everything.
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny)).prefetchers([
            "stream",
            "no-such-prefetcher",
            "imp",
        ]);
        let outcomes = sweep.run_partial().unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok(), "stream cell survives");
        assert!(outcomes[2].is_ok(), "imp cell survives");
        let err = outcomes[1].as_ref().unwrap_err();
        assert!(matches!(err.error, SimError::Prefetcher(_)), "{err}");
        assert_eq!(err.cell.prefetcher.name, "no-such-prefetcher");
        assert!(sweep.run().is_err(), "run() still fails the whole grid");
    }

    #[test]
    fn malformed_axis_specs_fail_the_whole_grid_even_partially() {
        let err = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream:distance"])
            .run_partial()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidSpec(_)), "{err:?}");
    }
}
