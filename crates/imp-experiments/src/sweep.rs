//! Parameter sweeps: fan a grid of simulation cells across threads and
//! collect structured results.
//!
//! A [`Sweep`] starts from a template [`Sim`] and varies any axis —
//! workloads, core counts, prefetcher specs, partial-accessing modes,
//! and the translation sub-grid (page sizes, dTLB ways, translation
//! policies, L2-TLB geometries, translation prefetching, walk models,
//! per-region page placements).
//! Cells are enumerated in a deterministic cross-product order and
//! executed by a scoped worker pool; each cell derives its
//! workload-generation seed from the template seed and the cell's
//! (workload, cores) coordinates — never from scheduling — so results are
//! identical whatever the thread count, and cells that differ only in
//! prefetcher or partial mode run the *same* generated input (the
//! comparison the paper's figures make).
//!
//! Cells sharing an input do not rebuild it: the grid is grouped by its
//! distinct (workload, cores, seed) coordinates — scale and
//! software-prefetch settings come from the template and are constant
//! across the grid — each group's [`imp_workloads::BuiltArtifact`] is
//! built exactly once, and the prefetcher × partial cells fan out over
//! the shared artifact ([`Sim::run_on`]). Because artifacts are
//! immutable to the simulator, the statistics are bit-identical to
//! rebuilding per cell; only the wall-clock changes.
//!
//! ```
//! use imp_experiments::{Sim, Sweep};
//! use imp_workloads::Scale;
//!
//! let results = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
//!     .prefetchers(["stream", "imp"])
//!     .cores([16])
//!     .run()
//!     .unwrap();
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.stats.runtime > 0));
//! ```

use crate::sim::{Sim, SimError};
use imp_common::config::{
    PagePolicy, ParamValue, PartialMode, PrefetcherSpec, TlbConfig, TranslationPolicy, WalkModel,
};
use imp_common::{fnv1a, SplitMix64, SystemStats};
use imp_obs::{ObsConfig, ObsSummary};
use imp_store::{cell_digest, CellKey, ResultStore, StoredResult};
use imp_workloads::BuiltArtifact;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point of the sweep grid.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Workload name.
    pub workload: String,
    /// Core count.
    pub cores: u32,
    /// Prefetcher spec.
    pub prefetcher: PrefetcherSpec,
    /// Adaptive-management policy spec (`None` = unmanaged).
    pub manager: Option<PrefetcherSpec>,
    /// Partial cacheline accessing mode.
    pub partial: PartialMode,
    /// dTLB / page-walk configuration (ideal unless a TLB axis is
    /// swept or the template enables one).
    pub tlb: TlbConfig,
    /// Page-policy overrides this cell applies to the workload's
    /// regions (empty = every region keeps its declared policy).
    /// Placement is translation-only, so cells differing only here
    /// share one generated input.
    pub page_policy: Vec<(String, PagePolicy)>,
    /// Workload-generation seed this cell ran with.
    pub seed: u64,
}

/// A finished cell: where it ran and what came back.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The grid point.
    pub cell: SweepCell,
    /// The simulation statistics.
    pub stats: SystemStats,
    /// Observability summary, when the sweep ran with
    /// [`Sweep::observe`] and this cell was freshly simulated. Cells
    /// served from the result store carry `None` — the store holds
    /// statistics only, and observation never re-runs a cached cell.
    pub obs: Option<ObsSummary>,
}

/// A failed cell: where it was and why it failed.
#[derive(Clone, Debug)]
pub struct SweepCellError {
    /// The grid point.
    pub cell: SweepCell,
    /// The cell's canonical input string (the same rendering the result
    /// store digests, [`Sim::canonical_input`]) — every axis value that
    /// produced the failure, so one bad cell in a 10k-cell grid is
    /// diagnosable from the error alone. Cells whose configuration did
    /// not resolve carry an `<unresolved config: ...>` placeholder.
    pub canonical: String,
    /// What went wrong.
    pub error: SimError,
}

impl std::fmt::Display for SweepCellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{} [{} / {:?}]: {} (cell input: {})",
            self.cell.workload,
            self.cell.cores,
            self.cell.prefetcher,
            self.cell.partial,
            self.error,
            self.canonical
        )
    }
}

impl std::error::Error for SweepCellError {}

/// One delivered cell of a [`Sweep::run_with`] streaming run.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Position in [`Sweep::cells`] order.
    pub index: usize,
    /// The cell's canonical input string (the digest preimage).
    pub canonical: String,
    /// The content digest addressing this cell in the store.
    pub digest: u64,
    /// Whether the result was served from the store (`true`) or
    /// simulated this run (`false`; failed cells are also `false`).
    pub cached: bool,
    /// The cell's result.
    pub result: Result<SweepResult, SweepCellError>,
}

/// What a [`Sweep::run_with`] run did, cell by cell.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-cell results in [`Sweep::cells`] order.
    pub results: Vec<Result<SweepResult, SweepCellError>>,
    /// Cells served from the store without simulating.
    pub cached: usize,
    /// Cells simulated (and persisted) this run.
    pub simulated: usize,
    /// Cells that failed.
    pub failed: usize,
    /// First failure *writing* a freshly simulated result back to the
    /// store, if any. Results are still returned — the cost of a failed
    /// write is a re-simulation next run, never lost work.
    pub store_error: Option<String>,
}

/// A config-grid runner over a template [`Sim`]. See the module docs.
#[derive(Clone, Debug)]
pub struct Sweep {
    base: Sim,
    workloads: Vec<String>,
    cores: Vec<u32>,
    prefetchers: Vec<PrefetcherSpec>,
    depths: Vec<u32>,
    managers: Vec<Option<PrefetcherSpec>>,
    partials: Vec<PartialMode>,
    page_sizes: Vec<u64>,
    tlb_ways: Vec<u32>,
    policies: Vec<TranslationPolicy>,
    l2_tlbs: Vec<(u32, u32)>,
    tlb_prefetches: Vec<bool>,
    walk_models: Vec<WalkModel>,
    page_policies: Vec<Vec<(String, PagePolicy)>>,
    threads: Option<usize>,
    store_path: Option<PathBuf>,
    spec_error: Option<String>,
    observe: Option<ObsConfig>,
}

impl From<Sim> for Sweep {
    fn from(base: Sim) -> Self {
        Sweep {
            workloads: vec![base.workload_name().to_string()],
            cores: Vec::new(),
            prefetchers: Vec::new(),
            depths: Vec::new(),
            managers: Vec::new(),
            partials: Vec::new(),
            page_sizes: Vec::new(),
            tlb_ways: Vec::new(),
            policies: Vec::new(),
            l2_tlbs: Vec::new(),
            tlb_prefetches: Vec::new(),
            walk_models: Vec::new(),
            page_policies: Vec::new(),
            threads: None,
            store_path: None,
            spec_error: None,
            observe: None,
            base,
        }
    }
}

impl Sweep {
    /// A sweep whose unvaried axes come from the template `base`.
    pub fn new(base: Sim) -> Self {
        Sweep::from(base)
    }

    /// Varies the workload axis.
    #[must_use]
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    /// Varies the core-count axis.
    #[must_use]
    pub fn cores<I: IntoIterator<Item = u32>>(mut self, counts: I) -> Self {
        self.cores = counts.into_iter().collect();
        self
    }

    /// Varies the prefetcher axis (specs, kinds, or spec strings). A
    /// malformed spec string surfaces as [`SimError::InvalidSpec`] from
    /// [`Sweep::run`] rather than panicking here.
    #[must_use]
    pub fn prefetchers<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: TryInto<PrefetcherSpec>,
        S::Error: std::fmt::Display,
    {
        self.prefetchers = Vec::new();
        for spec in specs {
            match spec.try_into() {
                Ok(s) => self.prefetchers.push(s),
                Err(e) => self.spec_error = Some(e.to_string()),
            }
        }
        self
    }

    /// Varies the chained-indirection depth: every prefetcher cell is
    /// cloned per depth with its `depth` parameter overridden (the
    /// `imp:depth=N` knob — data prefetches chase up to `N + 1` hops).
    /// Depth varies fastest within a prefetcher, and never changes the
    /// generated input, so a `depths([1, 2, 3])` sweep compares chain
    /// depths on byte-identical workloads. Prefetchers that do not
    /// accept a `depth` parameter fail their cells the same way any
    /// invalid parameter does; with no depth axis, specs pass through
    /// untouched (a spec's own `depth=` still applies).
    #[must_use]
    pub fn depths<I: IntoIterator<Item = u32>>(mut self, depths: I) -> Self {
        self.depths = depths.into_iter().collect();
        self
    }

    /// Varies the adaptive-management axis (see `imp_adapt::Manager`).
    /// The spec `"none"` means *unmanaged* — a cell whose canonical
    /// input is byte-identical to a pre-manager build — so one sweep
    /// can compare managed against unmanaged cells directly:
    ///
    /// ```ignore
    /// Sweep::from(base).managers(["none", "static", "throttle:accuracy_floor=0.4"])
    /// ```
    ///
    /// A malformed spec string surfaces as [`SimError::InvalidSpec`]
    /// from [`Sweep::run`]; an unknown policy name fails its cells with
    /// [`SimError::Manager`].
    #[must_use]
    pub fn managers<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: TryInto<PrefetcherSpec>,
        S::Error: std::fmt::Display,
    {
        self.managers = Vec::new();
        for spec in specs {
            match spec.try_into() {
                Ok(s) if s.name == "none" => self.managers.push(None),
                Ok(s) => self.managers.push(Some(s)),
                Err(e) => self.spec_error = Some(e.to_string()),
            }
        }
        self
    }

    /// Varies the partial-accessing axis.
    #[must_use]
    pub fn partials<I: IntoIterator<Item = PartialMode>>(mut self, modes: I) -> Self {
        self.partials = modes.into_iter().collect();
        self
    }

    /// Varies the translation page size (bytes per page). Setting any
    /// TLB axis upgrades an ideal template TLB to the
    /// [`TlbConfig::finite`] defaults, then applies the swept knob.
    #[must_use]
    pub fn page_sizes<I: IntoIterator<Item = u64>>(mut self, sizes: I) -> Self {
        self.page_sizes = sizes.into_iter().collect();
        self
    }

    /// Varies the dTLB associativity (ways per set); see
    /// [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn tlb_ways<I: IntoIterator<Item = u32>>(mut self, ways: I) -> Self {
        self.tlb_ways = ways.into_iter().collect();
        self
    }

    /// Varies the prefetch-translation policy; see
    /// [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn translation_policies<I: IntoIterator<Item = TranslationPolicy>>(
        mut self,
        policies: I,
    ) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Varies the shared L2-TLB geometry as `(sets, ways)` pairs
    /// (`(0, 0)` is the no-L2 point); see [`Sweep::page_sizes`] for how
    /// an ideal template upgrades.
    #[must_use]
    pub fn l2_tlbs<I: IntoIterator<Item = (u32, u32)>>(mut self, geometries: I) -> Self {
        self.l2_tlbs = geometries.into_iter().collect();
        self
    }

    /// Varies the translation-prefetching knob; see
    /// [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn tlb_prefetches<I: IntoIterator<Item = bool>>(mut self, settings: I) -> Self {
        self.tlb_prefetches = settings.into_iter().collect();
        self
    }

    /// Varies the walk-timing model; see [`Sweep::page_sizes`] for how
    /// an ideal template upgrades.
    #[must_use]
    pub fn walk_models<I: IntoIterator<Item = WalkModel>>(mut self, models: I) -> Self {
        self.walk_models = models.into_iter().collect();
        self
    }

    /// Varies the per-region page placement: each axis value is one
    /// `Sim::page_policy`-style override set applied to the workload's
    /// regions (an empty set keeps every declared policy — the all-4K
    /// baseline). Placement is translation-only, so the whole axis
    /// shares one built artifact per (workload, cores, seed) input;
    /// see [`Sweep::page_sizes`] for how an ideal template upgrades.
    #[must_use]
    pub fn page_policies<I, O, S>(mut self, sets: I) -> Self
    where
        I: IntoIterator<Item = O>,
        O: IntoIterator<Item = (S, PagePolicy)>,
        S: Into<String>,
    {
        self.page_policies = sets
            .into_iter()
            .map(|set| {
                set.into_iter()
                    .map(|(name, policy)| (name.into(), policy))
                    .collect()
            })
            .collect();
        self
    }

    /// Caps the worker-thread count (default: available parallelism).
    /// `threads(1)` runs the grid inline on the calling thread.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Observes every freshly simulated cell at the given level and
    /// attaches the resulting [`ObsSummary`] to its [`SweepResult`].
    /// Observation is a lens: cell statistics (and store digests) are
    /// bit-identical with or without it, and cells served from the
    /// result store are never re-simulated just to observe them (their
    /// `obs` stays `None`).
    #[must_use]
    pub fn observe(mut self, cfg: ObsConfig) -> Self {
        self.observe = Some(cfg);
        self
    }

    /// Routes this sweep through the content-addressed result store at
    /// `path`: [`Sweep::run`] and [`Sweep::run_partial`] serve cells
    /// already on disk without simulating (checksum- and
    /// canonical-verified; corrupt records re-simulate), and persist
    /// every freshly simulated cell. A warm re-run simulates nothing
    /// and is bit-identical to the cold run.
    #[must_use]
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    /// Enumerates the grid in its deterministic execution order
    /// (workload-major, then cores, prefetchers, managers, partial
    /// modes).
    pub fn cells(&self) -> Vec<SweepCell> {
        let one_cfg;
        let (cores, prefetchers, managers, partials) = {
            one_cfg = (
                vec![self.base_cores()],
                vec![self.base_prefetcher()],
                vec![self.base_manager()],
                vec![self.base_partial()],
            );
            (
                if self.cores.is_empty() {
                    &one_cfg.0
                } else {
                    &self.cores
                },
                if self.prefetchers.is_empty() {
                    &one_cfg.1
                } else {
                    &self.prefetchers
                },
                if self.managers.is_empty() {
                    &one_cfg.2
                } else {
                    &self.managers
                },
                if self.partials.is_empty() {
                    &one_cfg.3
                } else {
                    &self.partials
                },
            )
        };
        // The depth axis multiplies the prefetcher axis: one spec per
        // (prefetcher, depth) with the `depth` parameter overridden.
        let prefetchers: Vec<PrefetcherSpec> = if self.depths.is_empty() {
            prefetchers.clone()
        } else {
            prefetchers
                .iter()
                .flat_map(|p| {
                    self.depths.iter().map(|&d| {
                        let mut p = p.clone();
                        p.params
                            .insert("depth".to_string(), ParamValue::Int(i64::from(d)));
                        p
                    })
                })
                .collect()
        };
        let tlbs = self.tlb_variants();
        let base_policies = vec![self.base.page_policy_overrides().to_vec()];
        let policy_sets = if self.page_policies.is_empty() {
            &base_policies
        } else {
            &self.page_policies
        };
        let mut cells = Vec::new();
        for w in &self.workloads {
            for &n in cores {
                for p in &prefetchers {
                    for mgr in managers {
                        for &m in partials {
                            for &tlb in &tlbs {
                                for pp in policy_sets {
                                    cells.push(SweepCell {
                                        workload: w.clone(),
                                        cores: n,
                                        prefetcher: p.clone(),
                                        manager: mgr.clone(),
                                        partial: m,
                                        tlb,
                                        page_policy: pp.clone(),
                                        seed: cell_seed(self.base_seed(), w, n),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The translation sub-grid: the cross product of every swept TLB
    /// axis (page sizes, dTLB ways, translation policies, L2-TLB
    /// geometries, translation prefetching, walk models), in that
    /// nesting order with the walk model varying fastest. Any swept
    /// TLB knob upgrades an ideal template to the finite defaults;
    /// with no TLB axis swept this is exactly the template's TLB.
    fn tlb_variants(&self) -> Vec<TlbConfig> {
        let tlb_swept = !(self.page_sizes.is_empty()
            && self.tlb_ways.is_empty()
            && self.policies.is_empty()
            && self.l2_tlbs.is_empty()
            && self.tlb_prefetches.is_empty()
            && self.walk_models.is_empty()
            && self.page_policies.is_empty());
        let base = if tlb_swept {
            self.base_tlb().finite_or_self()
        } else {
            self.base_tlb()
        };
        let one = (
            vec![base.page_bytes],
            vec![base.ways],
            vec![base.policy],
            vec![(base.l2_sets, base.l2_ways)],
            vec![base.tlb_prefetch],
            vec![base.walk_model],
        );
        let page_sizes = if self.page_sizes.is_empty() {
            &one.0
        } else {
            &self.page_sizes
        };
        let tlb_ways = if self.tlb_ways.is_empty() {
            &one.1
        } else {
            &self.tlb_ways
        };
        let policies = if self.policies.is_empty() {
            &one.2
        } else {
            &self.policies
        };
        let l2s = if self.l2_tlbs.is_empty() {
            &one.3
        } else {
            &self.l2_tlbs
        };
        let tps = if self.tlb_prefetches.is_empty() {
            &one.4
        } else {
            &self.tlb_prefetches
        };
        let wms = if self.walk_models.is_empty() {
            &one.5
        } else {
            &self.walk_models
        };
        let mut out = Vec::new();
        for &ps in page_sizes {
            for &ways in tlb_ways {
                for &policy in policies {
                    for &(l2s_n, l2w) in l2s {
                        for &tp in tps {
                            for &wm in wms {
                                out.push(
                                    base.with_page_bytes(ps)
                                        .with_ways(ways)
                                        .with_policy(policy)
                                        .with_l2(l2s_n, l2w)
                                        .with_tlb_prefetch(tp)
                                        .with_walk_model(wm),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs every cell and returns results in [`Sweep::cells`] order.
    /// The first failing cell's error is returned; completed work for
    /// other cells is discarded — use [`Sweep::run_partial`] to keep
    /// the grid when individual cells fail.
    pub fn run(&self) -> Result<Vec<SweepResult>, SimError> {
        self.run_partial()?
            .into_iter()
            .map(|r| r.map_err(|e| e.error))
            .collect()
    }

    /// Runs every cell, returning a per-cell `Result` in
    /// [`Sweep::cells`] order: one bad cell (an unresolvable prefetcher,
    /// a failed `trace:` replay, an invalid core count) no longer throws
    /// away the completed rest of the grid.
    ///
    /// Each distinct (workload, cores, seed) input is built exactly once
    /// and shared read-only across the cells that use it; a failed build
    /// is reported by every cell of its group.
    ///
    /// # Errors
    ///
    /// The outer `Err` is reserved for a malformed grid — an axis spec
    /// string that did not parse — where no cells can be enumerated at
    /// all. Everything that goes wrong *inside* a cell comes back in
    /// that cell's slot.
    // A cell's error carries its (string-heavy) grid coordinates by
    // design; boxing would just push the size into every caller match.
    #[allow(clippy::type_complexity, clippy::result_large_err)]
    pub fn run_partial(&self) -> Result<Vec<Result<SweepResult, SweepCellError>>, SimError> {
        if let Some(path) = &self.store_path {
            let store = ResultStore::open(path).map_err(|e| SimError::Store(e.to_string()))?;
            return Ok(self.run_with(&store, |_| {})?.results);
        }
        if let Some(e) = &self.spec_error {
            return Err(SimError::InvalidSpec(e.clone()));
        }
        let cells = self.cells();
        let threads = self.thread_count(cells.len());

        // Group cells by distinct generated input. Scale and
        // software-prefetch settings come from the template, so within
        // one sweep the input is determined by (workload, cores, seed).
        let (groups, group_of) = input_groups(cells.iter());

        // Build each distinct artifact exactly once, in parallel.
        let artifacts = fanout(groups.len(), threads.min(groups.len()), |g| {
            let (workload, cores, seed) = &groups[g];
            self.base
                .clone()
                .with_workload(workload)
                .cores(*cores)
                .seed(*seed)
                .build_artifact()
        });

        // Fan the configuration cells out over the shared artifacts.
        let outcomes = fanout(cells.len(), threads, |i| {
            let cell = &cells[i];
            let artifact = artifacts[group_of[i]].as_ref().map_err(Clone::clone)?;
            self.run_cell(cell, artifact)
        });
        Ok(cells
            .into_iter()
            .zip(outcomes)
            .map(|(cell, outcome)| match outcome {
                Ok((stats, obs)) => Ok(SweepResult { cell, stats, obs }),
                Err(error) => {
                    let canonical = self.cell_canonical(&cell);
                    Err(SweepCellError {
                        cell,
                        canonical,
                        error,
                    })
                }
            })
            .collect())
    }

    /// Runs the grid against `store`, streaming each cell's outcome to
    /// `on_cell` in deterministic [`Sweep::cells`] order as it becomes
    /// available: cached cells are served from disk (verified by
    /// checksum *and* canonical string; anything suspect re-simulates),
    /// only missing cells are simulated, and every fresh result is
    /// persisted. Workloads whose cells are all cached are never even
    /// built — a fully warm run touches only the store.
    ///
    /// The returned [`SweepReport`] carries the same per-cell results
    /// [`Sweep::run_partial`] would, plus hit/miss accounting.
    ///
    /// # Errors
    ///
    /// A malformed grid (axis spec that did not parse) or a store that
    /// cannot be *read* (I/O, not corruption) fails the whole run;
    /// per-cell simulation failures come back in their result slots.
    #[allow(clippy::result_large_err)]
    pub fn run_with<F>(&self, store: &ResultStore, mut on_cell: F) -> Result<SweepReport, SimError>
    where
        F: FnMut(&CellOutcome),
    {
        if let Some(e) = &self.spec_error {
            return Err(SimError::InvalidSpec(e.clone()));
        }
        let cells = self.cells();
        let n = cells.len();

        // Probe phase: resolve each cell's canonical input and look it
        // up. Sequential and cheap — config resolution plus one read
        // per cell; no workload is built here.
        type CellRun = Result<(SystemStats, Option<ObsSummary>), SimError>;
        let mut canonicals: Vec<String> = Vec::with_capacity(n);
        let mut slots: Vec<Option<CellRun>> = Vec::with_capacity(n);
        let mut cached_flags = vec![false; n];
        let mut missing: Vec<usize> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            match self.sim_for(cell).canonical_input() {
                Ok(canonical) => {
                    let hit = store
                        .get(&canonical)
                        .map_err(|e| SimError::Store(e.to_string()))?;
                    match hit {
                        Some(record) => {
                            cached_flags[i] = true;
                            slots.push(Some(Ok((record.stats, None))));
                        }
                        None => {
                            missing.push(i);
                            slots.push(None);
                        }
                    }
                    canonicals.push(canonical);
                }
                Err(e) => {
                    // The configuration itself is invalid: the cell can
                    // never be cached, and simulating would fail the
                    // same way. Fail it now without touching the store.
                    canonicals.push(format!("<unresolved config: {e}>"));
                    slots.push(Some(Err(e)));
                }
            }
        }

        // Build phase: only the groups that still have missing cells.
        let threads = self.thread_count(missing.len());
        let (groups, group_of) = input_groups(missing.iter().map(|&i| &cells[i]));
        let artifacts = fanout(groups.len(), threads.min(groups.len().max(1)), |g| {
            let (workload, cores, seed) = &groups[g];
            self.base
                .clone()
                .with_workload(workload)
                .cores(*cores)
                .seed(*seed)
                .build_artifact()
        });

        // Simulate the missing cells across workers while the calling
        // thread delivers outcomes in deterministic cell order; a
        // reorder slot buffers cells that finish early.
        let store_error: Mutex<Option<String>> = Mutex::new(None);
        let mut report = SweepReport {
            results: Vec::with_capacity(n),
            cached: cached_flags.iter().filter(|&&c| c).count(),
            simulated: 0,
            failed: 0,
            store_error: None,
        };
        let (tx, rx) = std::sync::mpsc::channel::<(usize, CellRun)>();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let cells = &cells;
            let canonicals = &canonicals;
            let missing = &missing;
            let artifacts = &artifacts;
            let group_of = &group_of;
            let next = &next;
            let store_error = &store_error;
            for _ in 0..threads.min(missing.len()) {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= missing.len() {
                        break;
                    }
                    let i = missing[k];
                    let cell = &cells[i];
                    let outcome = artifacts[group_of[k]]
                        .as_ref()
                        .map_err(Clone::clone)
                        .and_then(|artifact| self.run_cell(cell, artifact));
                    if let Ok((stats, _)) = &outcome {
                        let record = StoredResult {
                            canonical: canonicals[i].clone(),
                            cell: cell_key(cell),
                            stats: stats.clone(),
                        };
                        if let Err(e) = store.put(&record) {
                            store_error
                                .lock()
                                .expect("store-error slot")
                                .get_or_insert_with(|| e.to_string());
                        }
                    }
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut delivered = 0;
            while delivered < n {
                if slots[delivered].is_none() {
                    // Wait for workers; any cell may arrive, only the
                    // next-in-order one unblocks delivery.
                    let (i, outcome) = rx.recv().expect("workers outlive the channel");
                    slots[i] = Some(outcome);
                    continue;
                }
                let cell = cells[delivered].clone();
                let result = match slots[delivered].take().expect("slot filled") {
                    Ok((stats, obs)) => {
                        if !cached_flags[delivered] {
                            report.simulated += 1;
                        }
                        Ok(SweepResult { cell, stats, obs })
                    }
                    Err(error) => {
                        report.failed += 1;
                        Err(SweepCellError {
                            canonical: canonicals[delivered].clone(),
                            cell,
                            error,
                        })
                    }
                };
                let outcome = CellOutcome {
                    index: delivered,
                    canonical: canonicals[delivered].clone(),
                    digest: cell_digest(&canonicals[delivered]),
                    cached: cached_flags[delivered],
                    result,
                };
                on_cell(&outcome);
                report.results.push(outcome.result);
                delivered += 1;
            }
        });
        report.store_error = store_error.into_inner().expect("store-error slot");
        Ok(report)
    }

    /// Runs one cell over its shared artifact, observing when
    /// [`Sweep::observe`] asked for it. Statistics are identical either
    /// way; only the summary is extra.
    fn run_cell(
        &self,
        cell: &SweepCell,
        artifact: &BuiltArtifact,
    ) -> Result<(SystemStats, Option<ObsSummary>), SimError> {
        match self.observe.filter(ObsConfig::enabled) {
            Some(cfg) => {
                let (stats, report) = self.sim_for(cell).observe(cfg).run_observed_on(artifact)?;
                Ok((stats, Some(report.summary())))
            }
            None => Ok((self.sim_for(cell).run_on(artifact)?, None)),
        }
    }

    /// The per-cell [`Sim`] builder (the template with the cell's axis
    /// values applied, in the same order `run_partial` always used).
    fn sim_for(&self, cell: &SweepCell) -> Sim {
        self.base
            .clone()
            .with_workload(&cell.workload)
            .cores(cell.cores)
            .prefetcher(cell.prefetcher.clone())
            .set_manager(cell.manager.clone())
            .partial(cell.partial)
            .tlb(cell.tlb)
            .page_policies(cell.page_policy.clone())
            .seed(cell.seed)
    }

    /// The cell's canonical input, or a deterministic placeholder for a
    /// cell whose configuration does not resolve.
    fn cell_canonical(&self, cell: &SweepCell) -> String {
        self.sim_for(cell)
            .canonical_input()
            .unwrap_or_else(|e| format!("<unresolved config: {e}>"))
    }

    fn thread_count(&self, work: usize) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1)
            })
            .min(work.max(1))
    }

    fn base_cores(&self) -> u32 {
        self.base.config().map(|c| c.cores).unwrap_or(16)
    }

    fn base_prefetcher(&self) -> PrefetcherSpec {
        self.base.config().map(|c| c.prefetcher).unwrap_or_default()
    }

    fn base_manager(&self) -> Option<PrefetcherSpec> {
        self.base.config().ok().and_then(|c| c.manager)
    }

    fn base_partial(&self) -> PartialMode {
        self.base.config().map(|c| c.partial).unwrap_or_default()
    }

    fn base_tlb(&self) -> TlbConfig {
        self.base.config().map(|c| c.tlb).unwrap_or_default()
    }

    fn base_seed(&self) -> u64 {
        self.base.seed_value()
    }
}

/// Mixes the template seed with the cell's input coordinates (workload
/// and core count). Cells differing only in prefetcher or partial mode
/// share a seed — and therefore the generated input — while different
/// inputs decorrelate; nothing depends on scheduling.
fn cell_seed(base: u64, workload: &str, cores: u32) -> u64 {
    let h = fnv1a(workload.as_bytes());
    SplitMix64::new(base ^ h ^ u64::from(cores)).next_u64()
}

/// Groups cells by distinct generated input (workload, cores, seed).
/// Returns the distinct groups and, per input cell, the group index.
fn input_groups<'a, I>(cells: I) -> (Vec<(String, u32, u64)>, Vec<usize>)
where
    I: Iterator<Item = &'a SweepCell>,
{
    let mut groups: Vec<(String, u32, u64)> = Vec::new();
    let group_of = cells
        .map(|cell| {
            let key = (cell.workload.clone(), cell.cores, cell.seed);
            groups.iter().position(|g| *g == key).unwrap_or_else(|| {
                groups.push(key);
                groups.len() - 1
            })
        })
        .collect();
    (groups, group_of)
}

/// The store's mirror of a [`SweepCell`] (same fields, `imp-common`
/// types only, so `imp-store` stays below the experiment layer).
fn cell_key(cell: &SweepCell) -> CellKey {
    CellKey {
        workload: cell.workload.clone(),
        cores: cell.cores,
        prefetcher: cell.prefetcher.clone(),
        manager: cell.manager.clone(),
        partial: cell.partial,
        tlb: cell.tlb,
        page_policy: cell.page_policy.clone(),
        seed: cell.seed,
    }
}

/// Runs `f(0..n)` on up to `threads` scoped workers; results come back
/// in index order.
pub(crate) fn fanout<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("fanout slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fanout slot")
                .expect("worker filled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_workloads::Scale;

    #[test]
    fn cells_enumerate_the_cross_product_in_order() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .workloads(["spmv", "pagerank"])
            .cores([16, 64])
            .prefetchers(["stream", "imp"]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload, "spmv");
        assert_eq!(cells[0].cores, 16);
        assert_eq!(cells[0].prefetcher.name, "stream");
        assert_eq!(cells[1].prefetcher.name, "imp");
        assert_eq!(cells[2].cores, 64);
        assert_eq!(cells[4].workload, "pagerank");
        // Seeds are reproducible, shared across prefetcher-only
        // differences (same generated input), distinct across inputs.
        let again = sweep.cells();
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.seed, b.seed);
        }
        assert_eq!(cells[0].seed, cells[1].seed, "stream vs imp: same input");
        assert_ne!(cells[0].seed, cells[2].seed, "16 vs 64 cores: new input");
        assert_ne!(cells[0].seed, cells[4].seed, "spmv vs pagerank: new input");
    }

    #[test]
    fn depth_axis_multiplies_the_prefetcher_axis_and_shares_inputs() {
        let sweep = Sweep::from(Sim::workload("hashjoin").scale(Scale::Tiny))
            .prefetchers(["imp", "hybrid"])
            .depths([1, 2, 3]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 6);
        // Depth varies fastest within a prefetcher.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.prefetcher.name, ["imp", "hybrid"][i / 3]);
            assert_eq!(
                cell.prefetcher.params.get("depth").and_then(|v| v.as_u64()),
                Some(1 + (i % 3) as u64)
            );
        }
        // The depth knob never changes the generated input.
        assert!(cells.iter().all(|c| c.seed == cells[0].seed));
        // Distinct depths are distinct cells to the result store.
        assert_ne!(
            sweep.cell_canonical(&cells[0]),
            sweep.cell_canonical(&cells[1])
        );
        // Without the axis, specs pass through untouched.
        let plain = Sweep::from(Sim::workload("hashjoin").scale(Scale::Tiny))
            .prefetchers(["imp"])
            .cells();
        assert!(!plain[0].prefetcher.params.contains_key("depth"));
    }

    #[test]
    fn manager_axis_extends_the_grid_and_none_means_unmanaged() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream", "imp"])
            .managers(["none", "static", "throttle:accuracy_floor=0.4"]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 6);
        // Managers vary within a prefetcher, in the order given.
        assert_eq!(cells[0].prefetcher.name, "stream");
        assert_eq!(cells[0].manager, None);
        assert_eq!(cells[1].manager.as_ref().unwrap().name, "static");
        assert_eq!(cells[2].manager.as_ref().unwrap().name, "throttle");
        assert_eq!(cells[3].prefetcher.name, "imp");
        // The manager never changes the generated input.
        assert_eq!(cells[0].seed, cells[2].seed);
        // An unmanaged cell's canonical is byte-identical to a
        // managerless sweep's; a managed cell's differs.
        let plain = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream"])
            .cells();
        assert_eq!(
            sweep.cell_canonical(&cells[0]),
            sweep.cell_canonical(&plain[0])
        );
        assert_ne!(
            sweep.cell_canonical(&cells[1]),
            sweep.cell_canonical(&cells[0])
        );
        assert_ne!(
            sweep.cell_canonical(&cells[1]),
            sweep.cell_canonical(&cells[2])
        );
    }

    #[test]
    fn manager_axis_overrides_a_managed_template() {
        // A template with a manager: the "none" axis value clears it.
        let base = Sim::workload("spmv").scale(Scale::Tiny).manager("static");
        let swept = Sweep::from(base.clone()).managers(["none"]).cells();
        assert_eq!(swept[0].manager, None);
        // And with no axis, every cell inherits the template's manager.
        let inherited = Sweep::from(base).cells();
        assert_eq!(inherited[0].manager.as_ref().unwrap().name, "static");
    }

    #[test]
    fn tlb_axes_extend_the_grid_and_share_inputs() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["imp"])
            .page_sizes([4096, 1 << 16])
            .tlb_ways([2, 4])
            .translation_policies([
                TranslationPolicy::DropOnMiss,
                TranslationPolicy::NonBlockingWalk,
            ]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert!(
            cells.iter().all(|c| !c.tlb.ideal),
            "sweeping a TLB knob enables the dTLB"
        );
        assert_eq!(cells[0].tlb.page_bytes, 4096);
        assert_eq!(cells[0].tlb.ways, 2);
        assert_eq!(cells[0].tlb.policy, TranslationPolicy::DropOnMiss);
        assert_eq!(cells[7].tlb.page_bytes, 1 << 16);
        assert_eq!(cells[7].tlb.ways, 4);
        assert_eq!(cells[7].tlb.policy, TranslationPolicy::NonBlockingWalk);
        assert_eq!(
            cells[0].seed, cells[7].seed,
            "TLB axes never change the generated input"
        );
        // Without TLB axes, cells keep the template's (ideal) TLB.
        assert!(Sweep::from(Sim::workload("spmv")).cells()[0].tlb.ideal);
    }

    #[test]
    fn l2_and_prefetch_axes_extend_the_translation_subgrid() {
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .l2_tlbs([(0, 0), (128, 8)])
            .tlb_prefetches([false, true])
            .walk_models([WalkModel::Flat, WalkModel::Cached]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 8);
        assert!(
            cells.iter().all(|c| !c.tlb.ideal),
            "sweeping any translation knob enables the dTLB"
        );
        // Walk model varies fastest, then tlb_prefetch, then L2.
        assert_eq!(cells[0].tlb.walk_model, WalkModel::Flat);
        assert_eq!(cells[1].tlb.walk_model, WalkModel::Cached);
        assert!(!cells[0].tlb.tlb_prefetch);
        assert!(cells[2].tlb.tlb_prefetch);
        assert!(!cells[0].tlb.has_l2());
        assert!(cells[4].tlb.has_l2());
        assert_eq!((cells[7].tlb.l2_sets, cells[7].tlb.l2_ways), (128, 8));
        assert!(cells[7].tlb.tlb_prefetch);
        assert_eq!(cells[7].tlb.walk_model, WalkModel::Cached);
        // One generated input across the whole translation sub-grid.
        assert!(cells.iter().all(|c| c.seed == cells[0].seed));
    }

    #[test]
    fn page_policy_axis_extends_the_grid_and_shares_inputs() {
        let sweep = Sweep::from(
            Sim::workload("pagerank")
                .scale(Scale::Tiny)
                .prefetcher("imp"),
        )
        .page_policies([vec![], vec![("pr0".to_string(), PagePolicy::Huge2M)]]);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 2);
        assert!(
            cells.iter().all(|c| !c.tlb.ideal),
            "sweeping placement enables the dTLB"
        );
        assert!(cells[0].page_policy.is_empty());
        assert_eq!(cells[1].page_policy[0].0, "pr0");
        assert_eq!(
            cells[0].seed, cells[1].seed,
            "placement never changes the generated input"
        );
        let results = sweep.run().unwrap();
        assert_eq!(results[0].stats.tlb_huge_total(), Default::default());
        assert!(results[1].stats.tlb_huge_total().lookups() > 0);
        // Without the axis, cells inherit the template's overrides.
        let inherited =
            Sweep::from(Sim::workload("pagerank").page_policy("pr0", PagePolicy::Huge2M)).cells();
        assert_eq!(inherited[0].page_policy.len(), 1);
    }

    #[test]
    fn fanout_preserves_index_order() {
        let out = fanout(17, 4, |i| i * 3);
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(fanout(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fanout(3, 1, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn errors_propagate_from_cells() {
        let err = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream", "no-such-prefetcher"])
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Prefetcher(_)), "{err:?}");
    }

    #[test]
    fn run_partial_keeps_the_rest_of_the_grid() {
        // One bad axis value (an unregistered prefetcher) fails only its
        // own cells; `run()` on the same grid discards everything.
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny)).prefetchers([
            "stream",
            "no-such-prefetcher",
            "imp",
        ]);
        let outcomes = sweep.run_partial().unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok(), "stream cell survives");
        assert!(outcomes[2].is_ok(), "imp cell survives");
        let err = outcomes[1].as_ref().unwrap_err();
        assert!(matches!(err.error, SimError::Prefetcher(_)), "{err}");
        assert_eq!(err.cell.prefetcher.name, "no-such-prefetcher");
        assert!(sweep.run().is_err(), "run() still fails the whole grid");
    }

    #[test]
    fn store_serves_warm_cells_without_simulating() {
        let dir = std::env::temp_dir().join(format!("imp-sweep-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sweep =
            Sweep::from(Sim::workload("spmv").scale(Scale::Tiny)).prefetchers(["none", "imp"]);
        let store = ResultStore::open(&dir).unwrap();

        let cold = sweep.run_with(&store, |_| {}).unwrap();
        assert_eq!((cold.cached, cold.simulated, cold.failed), (0, 2, 0));
        assert!(cold.store_error.is_none());

        // Warm: zero cells simulated, outcomes stream in cell order
        // with cached=true, and the grid is bit-identical.
        let mut seen = Vec::new();
        let warm = sweep
            .run_with(&store, |o| seen.push((o.index, o.cached)))
            .unwrap();
        assert_eq!((warm.cached, warm.simulated, warm.failed), (2, 0, 0));
        assert_eq!(seen, vec![(0, true), (1, true)]);
        for (c, w) in cold.results.iter().zip(&warm.results) {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(c.cell, w.cell);
            assert_eq!(c.stats, w.stats, "warm run must be bit-identical");
        }

        // The store path is bit-identical to the storeless one.
        let plain = sweep.run().unwrap();
        for (s, p) in warm.results.iter().zip(&plain) {
            assert_eq!(s.as_ref().unwrap().stats, p.stats);
        }

        // Extending one axis simulates only the new cells.
        let extended = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["none", "imp", "stream"]);
        let r = extended.run_with(&store, |_| {}).unwrap();
        assert_eq!((r.cached, r.simulated, r.failed), (2, 1, 0));

        // `.store(path)` routes run()/run_partial() the same way.
        let routed = extended.clone().store(&dir).run().unwrap();
        for (a, b) in routed.iter().zip(r.results.iter()) {
            assert_eq!(a.stats, b.as_ref().unwrap().stats);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_cells_carry_their_canonical_input_and_are_not_stored() {
        let dir = std::env::temp_dir().join(format!("imp-sweep-badcell-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let sweep = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream", "no-such-prefetcher"]);
        let report = sweep.run_with(&store, |_| {}).unwrap();
        assert_eq!((report.cached, report.simulated, report.failed), (0, 1, 1));
        let err = report.results[1].as_ref().unwrap_err();
        assert!(
            err.canonical.contains("no-such-prefetcher"),
            "canonical names the failing axis value: {}",
            err.canonical
        );
        assert!(format!("{err}").contains(&err.canonical));
        assert_eq!(store.len().unwrap(), 1, "only the good cell persisted");
        // The storeless path attaches the canonical too.
        let outcomes = sweep.run_partial().unwrap();
        assert!(outcomes[1]
            .as_ref()
            .unwrap_err()
            .canonical
            .contains("no-such-prefetcher"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_axis_specs_fail_the_whole_grid_even_partially() {
        let err = Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
            .prefetchers(["stream:distance"])
            .run_partial()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidSpec(_)), "{err:?}");
    }
}
