//! Shared simulation runner: maps the paper's named configurations onto
//! the fluent [`Sim`] builder, runs them, and caches results within a
//! process (several figures reuse the same runs). [`prewarm`] fans a
//! figure's whole config grid across threads before the driver reads
//! the cache.

use crate::sim::Sim;
use crate::sweep::fanout;
use imp_common::config::{CoreModel, MemMode, PartialMode, PrefetcherKind};
use imp_common::{SystemConfig, SystemStats};
use imp_workloads::Scale;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// The paper's evaluated configurations (Section 5.4 plus Section 4/6.3
/// variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Config {
    /// All accesses hit in L1 (Section 5.4 *Ideal*).
    Ideal,
    /// Magic prefetcher under finite bandwidth (*Perfect Prefetching*).
    PerfPref,
    /// Stream prefetcher only (*Baseline*).
    Base,
    /// Stream + IMP.
    Imp,
    /// IMP + partial cacheline accessing in the NoC only.
    ImpPartialNoc,
    /// IMP + partial accessing in NoC and DRAM.
    ImpPartialNocDram,
    /// Baseline hardware + Mowry-style software prefetching.
    SwPref,
    /// Stream + GHB correlation prefetcher.
    Ghb,
    /// Baseline on the out-of-order core.
    BaseOoo,
    /// IMP on the out-of-order core.
    ImpOoo,
    /// IMP + partial accessing on the out-of-order core.
    ImpPartialOoo,
}

/// Builds the [`SystemConfig`] for a paper configuration at `cores`.
pub fn system_config(cores: u32, c: Config) -> SystemConfig {
    let base = SystemConfig::paper_default(cores);
    match c {
        Config::Ideal => base.with_mem_mode(MemMode::Ideal),
        Config::PerfPref => base.with_mem_mode(MemMode::PerfectPrefetch),
        Config::Base | Config::SwPref => base,
        Config::Imp => base.with_prefetcher(PrefetcherKind::Imp),
        Config::ImpPartialNoc => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocOnly),
        Config::ImpPartialNocDram => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram),
        Config::Ghb => base.with_prefetcher(PrefetcherKind::Ghb),
        Config::BaseOoo => base.with_core_model(CoreModel::OutOfOrder),
        Config::ImpOoo => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_core_model(CoreModel::OutOfOrder),
        Config::ImpPartialOoo => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram)
            .with_core_model(CoreModel::OutOfOrder),
    }
}

/// Input scale from the `IMP_SCALE` environment variable.
pub fn scale_from_env() -> Scale {
    match std::env::var("IMP_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("large") => Scale::Large,
        _ => Scale::Small,
    }
}

/// Per-process result cache, keyed by (app, cores, config, scale tag).
type RunCache = Mutex<HashMap<(String, u32, Config, u8), SystemStats>>;

fn cache() -> &'static RunCache {
    static CACHE: std::sync::OnceLock<RunCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn scale_tag(s: Scale) -> u8 {
    match s {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Large => 2,
    }
}

/// The [`Sim`] builder for `app` at `cores` under the paper
/// configuration `config`, at the `IMP_SCALE` input scale.
pub fn sim_for(app: &str, cores: u32, config: Config) -> Sim {
    let mut sim = Sim::from_config(app, system_config(cores, config)).scale(scale_from_env());
    if config == Config::SwPref {
        sim = sim.software_prefetch(16);
    }
    sim
}

/// Runs `app` at `cores` under configuration `config` (cached per
/// process, keyed by scale as well).
///
/// # Panics
///
/// Panics if the workload name is unknown.
pub fn run(app: &str, cores: u32, config: Config) -> SystemStats {
    let scale = scale_from_env();
    let key = (app.to_string(), cores, config, scale_tag(scale));
    // A sweep thread that panicked mid-`run` (a bad workload, an
    // assertion in a driver) poisons the cache mutex; the map itself is
    // never left half-written (insert/get are the only operations), so
    // recover the guard instead of wedging every later cached run.
    if let Some(hit) = cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return hit.clone();
    }
    let stats = sim_for(app, cores, config)
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, stats.clone());
    stats
}

/// Runs every (app, config) pair of a figure's grid in parallel, filling
/// the cache the drivers then read sequentially. Already-cached cells
/// cost nothing; the speedup is bounded by the slowest cell.
pub fn prewarm(apps: &[&str], cores: u32, configs: &[Config]) {
    let grid: Vec<(&str, Config)> = apps
        .iter()
        .flat_map(|&app| configs.iter().map(move |&c| (app, c)))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    fanout(grid.len(), threads, |i| {
        let (app, config) = grid[i];
        run(app, cores, config);
    });
}

/// Runs `app` under an explicit (possibly customized) system
/// configuration; not cached.
pub fn run_one(app: &str, cfg: SystemConfig) -> SystemStats {
    Sim::from_config(app, cfg)
        .scale(scale_from_env())
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_map_to_expected_modes() {
        assert_eq!(system_config(16, Config::Ideal).mem_mode, MemMode::Ideal);
        assert_eq!(system_config(16, Config::Base).prefetcher.name, "stream");
        assert_eq!(system_config(16, Config::Imp).prefetcher.name, "imp");
        assert_eq!(
            system_config(16, Config::ImpPartialNocDram).partial,
            PartialMode::NocAndDram
        );
        assert_eq!(
            system_config(16, Config::ImpOoo).core_model,
            CoreModel::OutOfOrder
        );
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        std::env::set_var("IMP_SCALE", "tiny");
        // Panic while holding the cache lock, as a crashed sweep thread
        // would.
        let _ = std::thread::spawn(|| {
            let _guard = cache().lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poisoning the result cache on purpose");
        })
        .join();
        // Cached runs must still work afterwards.
        let a = run("dense", 4, Config::Ideal);
        let b = run("dense", 4, Config::Ideal);
        assert_eq!(a.runtime, b.runtime);
        assert!(a.runtime > 0);
    }

    #[test]
    fn run_caches_identical_requests() {
        std::env::set_var("IMP_SCALE", "tiny");
        let a = run("dense", 4, Config::Ideal);
        let b = run("dense", 4, Config::Ideal);
        assert_eq!(a.runtime, b.runtime);
    }
}
