//! Shared simulation runner: builds a workload, configures the system
//! for one of the paper's configurations, runs it, and caches results
//! within a process (several figures reuse the same runs).

use imp_common::config::{CoreModel, MemMode, PartialMode, PrefetcherKind};
use imp_common::{SystemConfig, SystemStats};
use imp_sim::System;
use imp_workloads::{by_name, Scale, WorkloadParams};
use std::collections::HashMap;
use std::sync::Mutex;

/// The paper's evaluated configurations (Section 5.4 plus Section 4/6.3
/// variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Config {
    /// All accesses hit in L1 (Section 5.4 *Ideal*).
    Ideal,
    /// Magic prefetcher under finite bandwidth (*Perfect Prefetching*).
    PerfPref,
    /// Stream prefetcher only (*Baseline*).
    Base,
    /// Stream + IMP.
    Imp,
    /// IMP + partial cacheline accessing in the NoC only.
    ImpPartialNoc,
    /// IMP + partial accessing in NoC and DRAM.
    ImpPartialNocDram,
    /// Baseline hardware + Mowry-style software prefetching.
    SwPref,
    /// Stream + GHB correlation prefetcher.
    Ghb,
    /// Baseline on the out-of-order core.
    BaseOoo,
    /// IMP on the out-of-order core.
    ImpOoo,
    /// IMP + partial accessing on the out-of-order core.
    ImpPartialOoo,
}

/// Builds the [`SystemConfig`] for a paper configuration at `cores`.
pub fn system_config(cores: u32, c: Config) -> SystemConfig {
    let base = SystemConfig::paper_default(cores);
    match c {
        Config::Ideal => base.with_mem_mode(MemMode::Ideal),
        Config::PerfPref => base.with_mem_mode(MemMode::PerfectPrefetch),
        Config::Base | Config::SwPref => base,
        Config::Imp => base.with_prefetcher(PrefetcherKind::Imp),
        Config::ImpPartialNoc => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocOnly),
        Config::ImpPartialNocDram => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram),
        Config::Ghb => base.with_prefetcher(PrefetcherKind::Ghb),
        Config::BaseOoo => base.with_core_model(CoreModel::OutOfOrder),
        Config::ImpOoo => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_core_model(CoreModel::OutOfOrder),
        Config::ImpPartialOoo => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram)
            .with_core_model(CoreModel::OutOfOrder),
    }
}

/// Input scale from the `IMP_SCALE` environment variable.
pub fn scale_from_env() -> Scale {
    match std::env::var("IMP_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("large") => Scale::Large,
        _ => Scale::Small,
    }
}

fn cache() -> &'static Mutex<HashMap<(String, u32, Config, u8), SystemStats>> {
    static CACHE: std::sync::OnceLock<
        Mutex<HashMap<(String, u32, Config, u8), SystemStats>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn scale_tag(s: Scale) -> u8 {
    match s {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Large => 2,
    }
}

/// Runs `app` at `cores` under configuration `config` (cached per
/// process, keyed by scale as well).
///
/// # Panics
///
/// Panics if the workload name is unknown.
pub fn run(app: &str, cores: u32, config: Config) -> SystemStats {
    let scale = scale_from_env();
    let key = (app.to_string(), cores, config, scale_tag(scale));
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let mut params = WorkloadParams::new(cores as usize, scale);
    if config == Config::SwPref {
        params = params.with_software_prefetch(16);
    }
    let w = by_name(app).unwrap_or_else(|| panic!("unknown workload {app}"));
    let built = w.build(&params);
    let stats = System::new(system_config(cores, config), built.program, built.mem).run();
    cache().lock().unwrap().insert(key, stats.clone());
    stats
}

/// Runs `app` under an explicit (possibly customized) system
/// configuration; not cached.
pub fn run_one(app: &str, cfg: SystemConfig) -> SystemStats {
    let params = WorkloadParams::new(cfg.cores as usize, scale_from_env());
    let w = by_name(app).unwrap_or_else(|| panic!("unknown workload {app}"));
    let built = w.build(&params);
    System::new(cfg, built.program, built.mem).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_map_to_expected_modes() {
        assert_eq!(system_config(16, Config::Ideal).mem_mode, MemMode::Ideal);
        assert_eq!(system_config(16, Config::Base).prefetcher, PrefetcherKind::Stream);
        assert_eq!(system_config(16, Config::Imp).prefetcher, PrefetcherKind::Imp);
        assert_eq!(
            system_config(16, Config::ImpPartialNocDram).partial,
            PartialMode::NocAndDram
        );
        assert_eq!(
            system_config(16, Config::ImpOoo).core_model,
            CoreModel::OutOfOrder
        );
    }

    #[test]
    fn run_caches_identical_requests() {
        std::env::set_var("IMP_SCALE", "tiny");
        let a = run("dense", 4, Config::Ideal);
        let b = run("dense", 4, Config::Ideal);
        assert_eq!(a.runtime, b.runtime);
    }
}
