//! Shared simulation runner: maps the paper's named configurations onto
//! the fluent [`Sim`] builder, runs them, and serves repeated requests
//! from the content-addressed result store (several figures reuse the
//! same runs, and `IMP_STORE_DIR` makes the cache survive the process —
//! a re-run of a figure driver simulates nothing it already has).
//! [`prewarm`] fans a figure's whole config grid across threads before
//! the driver reads the store.

use crate::sim::Sim;
use crate::sweep::fanout;
use imp_common::config::{CoreModel, MemMode, PartialMode, PrefetcherKind};
use imp_common::{SystemConfig, SystemStats};
use imp_store::{CellKey, ResultStore, StoredResult};
use imp_workloads::Scale;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The paper's evaluated configurations (Section 5.4 plus Section 4/6.3
/// variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Config {
    /// All accesses hit in L1 (Section 5.4 *Ideal*).
    Ideal,
    /// Magic prefetcher under finite bandwidth (*Perfect Prefetching*).
    PerfPref,
    /// Stream prefetcher only (*Baseline*).
    Base,
    /// Stream + IMP.
    Imp,
    /// IMP + partial cacheline accessing in the NoC only.
    ImpPartialNoc,
    /// IMP + partial accessing in NoC and DRAM.
    ImpPartialNocDram,
    /// Baseline hardware + Mowry-style software prefetching.
    SwPref,
    /// Stream + GHB correlation prefetcher.
    Ghb,
    /// Baseline on the out-of-order core.
    BaseOoo,
    /// IMP on the out-of-order core.
    ImpOoo,
    /// IMP + partial accessing on the out-of-order core.
    ImpPartialOoo,
}

/// Builds the [`SystemConfig`] for a paper configuration at `cores`.
pub fn system_config(cores: u32, c: Config) -> SystemConfig {
    let base = SystemConfig::paper_default(cores);
    match c {
        Config::Ideal => base.with_mem_mode(MemMode::Ideal),
        Config::PerfPref => base.with_mem_mode(MemMode::PerfectPrefetch),
        Config::Base | Config::SwPref => base,
        Config::Imp => base.with_prefetcher(PrefetcherKind::Imp),
        Config::ImpPartialNoc => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocOnly),
        Config::ImpPartialNocDram => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram),
        Config::Ghb => base.with_prefetcher(PrefetcherKind::Ghb),
        Config::BaseOoo => base.with_core_model(CoreModel::OutOfOrder),
        Config::ImpOoo => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_core_model(CoreModel::OutOfOrder),
        Config::ImpPartialOoo => base
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram)
            .with_core_model(CoreModel::OutOfOrder),
    }
}

/// Input scale from the `IMP_SCALE` environment variable.
pub fn scale_from_env() -> Scale {
    match std::env::var("IMP_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("large") => Scale::Large,
        _ => Scale::Small,
    }
}

/// The runner's result store: `IMP_STORE_DIR` if set (shared across
/// processes and runs — this is what makes figure drivers resumable),
/// otherwise a per-process scratch directory (the old in-memory cache
/// semantics: reuse within a run, nothing left behind to go stale).
fn store() -> &'static ResultStore {
    static STORE: OnceLock<ResultStore> = OnceLock::new();
    STORE.get_or_init(|| {
        let root = std::env::var_os("IMP_STORE_DIR").map_or_else(
            || std::env::temp_dir().join(format!("imp-store-{}", std::process::id())),
            PathBuf::from,
        );
        ResultStore::open(&root)
            .unwrap_or_else(|e| panic!("opening result store {}: {e}", root.display()))
    })
}

/// The [`Sim`] builder for `app` at `cores` under the paper
/// configuration `config`, at the `IMP_SCALE` input scale.
pub fn sim_for(app: &str, cores: u32, config: Config) -> Sim {
    let mut sim = Sim::from_config(app, system_config(cores, config)).scale(scale_from_env());
    if config == Config::SwPref {
        sim = sim.software_prefetch(16);
    }
    sim
}

/// Runs `app` at `cores` under configuration `config`, served from the
/// result store when the identical input (every timing knob, scale
/// included — the full [`Sim::canonical_input`]) has already run.
/// Fresh results are persisted; a failed store *write* only costs a
/// re-simulation later, never correctness.
///
/// # Panics
///
/// Panics if the workload name is unknown or the configuration does
/// not resolve.
pub fn run(app: &str, cores: u32, config: Config) -> SystemStats {
    let sim = sim_for(app, cores, config);
    let canonical = sim.canonical_input().unwrap_or_else(|e| panic!("{e}"));
    // A store read *error* (not a corrupt record — those are misses)
    // falls through to simulation: the store is an accelerator here,
    // never a gate.
    if let Ok(Some(hit)) = store().get(&canonical) {
        return hit.stats;
    }
    let cfg = system_config(cores, config);
    let seed = sim.seed_value();
    let stats = sim.run().unwrap_or_else(|e| panic!("{e}"));
    let _ = store().put(&StoredResult {
        canonical,
        cell: CellKey {
            workload: app.to_string(),
            cores,
            prefetcher: cfg.prefetcher,
            manager: cfg.manager,
            partial: cfg.partial,
            tlb: cfg.tlb,
            page_policy: Vec::new(),
            seed,
        },
        stats: stats.clone(),
    });
    stats
}

/// Runs every (app, config) pair of a figure's grid in parallel, filling
/// the store the drivers then read sequentially. Already-stored cells
/// cost nothing; the speedup is bounded by the slowest cell.
pub fn prewarm(apps: &[&str], cores: u32, configs: &[Config]) {
    let grid: Vec<(&str, Config)> = apps
        .iter()
        .flat_map(|&app| configs.iter().map(move |&c| (app, c)))
        .collect();
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    fanout(grid.len(), threads, |i| {
        let (app, config) = grid[i];
        run(app, cores, config);
    });
}

/// Runs `app` under an explicit (possibly customized) system
/// configuration; not cached.
pub fn run_one(app: &str, cfg: SystemConfig) -> SystemStats {
    Sim::from_config(app, cfg)
        .scale(scale_from_env())
        .run()
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_map_to_expected_modes() {
        assert_eq!(system_config(16, Config::Ideal).mem_mode, MemMode::Ideal);
        assert_eq!(system_config(16, Config::Base).prefetcher.name, "stream");
        assert_eq!(system_config(16, Config::Imp).prefetcher.name, "imp");
        assert_eq!(
            system_config(16, Config::ImpPartialNocDram).partial,
            PartialMode::NocAndDram
        );
        assert_eq!(
            system_config(16, Config::ImpOoo).core_model,
            CoreModel::OutOfOrder
        );
    }

    #[test]
    fn run_caches_identical_requests_through_the_store() {
        std::env::set_var("IMP_SCALE", "tiny");
        let a = run("dense", 4, Config::Ideal);
        let puts_after_first = store().counters().puts;
        let b = run("dense", 4, Config::Ideal);
        assert_eq!(a, b, "store round-trip is bit-identical");
        assert!(a.runtime > 0);
        assert!(puts_after_first >= 1, "first run persisted");
        assert!(store().counters().hits >= 1, "second run hit the store");
        // The canonical keys distinguish paper configs even at one
        // (app, cores) coordinate.
        let ideal = sim_for("dense", 4, Config::Ideal)
            .canonical_input()
            .unwrap();
        let base = sim_for("dense", 4, Config::Base).canonical_input().unwrap();
        let swpf = sim_for("dense", 4, Config::SwPref)
            .canonical_input()
            .unwrap();
        assert_ne!(ideal, base);
        assert_ne!(base, swpf, "software prefetch is part of the key");
    }
}
