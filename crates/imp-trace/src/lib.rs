//! Instrumented operation streams.
//!
//! The workloads of the paper (Section 5.3) are real algorithms; what the
//! simulator consumes is, per core, a stream of *operations*: compute
//! bursts, tagged loads/stores, software prefetches and barriers. The tag
//! carries the ground-truth [`AccessClass`] (indirect / stream / other)
//! used for Figures 1 and 2, the static [`Pc`] of the access site (IMP's
//! Prefetch Table is PC-indexed), and a dependency distance used by the
//! out-of-order core model of Section 6.3.1.
//!
//! Ops are kept to 16 bytes so multi-million-instruction programs stay
//! cheap to store. Finished streams are frozen into shared `Arc<[Op]>`
//! buffers, so cloning a [`Program`] (to fan one generated workload out
//! over many simulator configurations) costs a reference count, not a
//! copy. Programs also serialize to the versioned binary `.imptrace`
//! format in [`mod@file`] for record/replay across processes.
//!
//! # Example
//!
//! ```
//! use imp_trace::{Op, Program};
//! use imp_common::{Addr, Pc, stats::AccessClass};
//!
//! let mut p = Program::new("demo", 2);
//! p.core_mut(0).push(Op::load(Addr::new(0x100), 4, Pc::new(1), AccessClass::Stream));
//! p.barrier();
//! assert_eq!(p.ops(0).len(), 2);
//! assert_eq!(p.ops(1).len(), 1); // just the barrier
//!
//! p.freeze();
//! let cheap = p.clone(); // shares the frozen streams
//! assert_eq!(cheap.ops(0), p.ops(0));
//! ```

pub mod file;

pub use file::{TraceError, TraceFile};

use imp_common::stats::AccessClass;
use imp_common::{Addr, Pc};
use std::fmt;
use std::sync::Arc;

/// The kind of one operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum OpKind {
    /// `n` cycles (= `n` single-cycle instructions) of computation;
    /// `n` is stored in the `addr` field.
    Compute,
    /// A demand load.
    Load,
    /// A demand store.
    Store,
    /// A software prefetch instruction (non-binding, non-blocking).
    SwPrefetch,
    /// Synchronization barrier across all cores.
    Barrier,
}

/// One operation in a core's instruction stream. 16 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Op {
    /// Byte address for memory ops; cycle count for `Compute`.
    pub addr: u64,
    /// Static instruction identifier of the access site.
    pub pc: Pc,
    /// Operation kind.
    pub kind: OpKind,
    /// Access size in bytes (memory ops only).
    pub size: u8,
    /// Ground-truth access class (memory ops only).
    pub class: AccessClass,
    /// Dependency distance for the OoO model: this load/store's address
    /// depends on the value produced by the `dep`-th previous *load* in
    /// the same stream (0 = independent). An indirect access `A[B[i]]`
    /// has `dep = 1` right after its index load of `B[i]`.
    pub dep: u8,
}

impl Op {
    /// `cycles` cycles of computation (counted as `cycles` instructions).
    pub fn compute(cycles: u32) -> Self {
        Op {
            addr: u64::from(cycles),
            pc: Pc::new(0),
            kind: OpKind::Compute,
            size: 0,
            class: AccessClass::Other,
            dep: 0,
        }
    }

    /// A demand load.
    pub fn load(addr: Addr, size: u8, pc: Pc, class: AccessClass) -> Self {
        Op {
            addr: addr.raw(),
            pc,
            kind: OpKind::Load,
            size,
            class,
            dep: 0,
        }
    }

    /// A demand store.
    pub fn store(addr: Addr, size: u8, pc: Pc, class: AccessClass) -> Self {
        Op {
            addr: addr.raw(),
            pc,
            kind: OpKind::Store,
            size,
            class,
            dep: 0,
        }
    }

    /// A software prefetch of the line containing `addr`.
    pub fn sw_prefetch(addr: Addr, pc: Pc) -> Self {
        Op {
            addr: addr.raw(),
            pc,
            kind: OpKind::SwPrefetch,
            size: 8,
            class: AccessClass::Other,
            dep: 0,
        }
    }

    /// A barrier.
    pub fn barrier() -> Self {
        Op {
            addr: 0,
            pc: Pc::new(0),
            kind: OpKind::Barrier,
            size: 0,
            class: AccessClass::Other,
            dep: 0,
        }
    }

    /// Marks this op as address-dependent on the `n`-th previous load.
    #[must_use]
    pub fn with_dep(mut self, n: u8) -> Self {
        self.dep = n;
        self
    }

    /// The memory address (memory ops).
    pub fn mem_addr(&self) -> Addr {
        Addr::new(self.addr)
    }

    /// Number of instructions this op represents.
    pub fn instruction_count(&self) -> u64 {
        match self.kind {
            OpKind::Compute => self.addr,
            OpKind::Barrier => 0,
            _ => 1,
        }
    }

    /// True for loads and stores (the ops that access the cache).
    pub fn is_demand(&self) -> bool {
        matches!(self.kind, OpKind::Load | OpKind::Store)
    }
}

/// Struct-of-arrays decoding of one op stream: each [`Op`] field in its
/// own contiguous lane, indexed by op position.
///
/// The simulator's core engines iterate the `kind` lane (1 byte/op) and
/// touch the other lanes only for the ops that need them, instead of
/// striding over 16-byte `Op` records — compute-heavy stretches of a
/// stream stay inside a few cache lines. [`OpLanes::op`] reconstructs
/// the original record for interfaces that still take `&Op`.
#[derive(Clone, Debug)]
pub struct OpLanes {
    /// Operation kinds, one byte per op.
    pub kind: Box<[OpKind]>,
    /// Byte address (memory ops) or cycle count (`Compute`).
    pub addr: Box<[u64]>,
    /// Static access-site PCs.
    pub pc: Box<[Pc]>,
    /// Access sizes in bytes.
    pub size: Box<[u8]>,
    /// Ground-truth access classes.
    pub class: Box<[AccessClass]>,
    /// OoO dependency distances.
    pub dep: Box<[u8]>,
}

impl OpLanes {
    /// Decodes `ops` into per-field lanes.
    pub fn from_ops(ops: &[Op]) -> Self {
        OpLanes {
            kind: ops.iter().map(|o| o.kind).collect(),
            addr: ops.iter().map(|o| o.addr).collect(),
            pc: ops.iter().map(|o| o.pc).collect(),
            size: ops.iter().map(|o| o.size).collect(),
            class: ops.iter().map(|o| o.class).collect(),
            dep: ops.iter().map(|o| o.dep).collect(),
        }
    }

    /// Number of ops in the stream.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// True when the stream has no ops.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Reconstructs the 16-byte [`Op`] record at position `i`.
    #[inline]
    pub fn op(&self, i: usize) -> Op {
        Op {
            addr: self.addr[i],
            pc: self.pc[i],
            kind: self.kind[i],
            size: self.size[i],
            class: self.class[i],
            dep: self.dep[i],
        }
    }
}

impl From<&[Op]> for OpLanes {
    fn from(ops: &[Op]) -> Self {
        OpLanes::from_ops(ops)
    }
}

/// One core's op stream: a growable buffer while the workload generator
/// is appending, an immutable shared `Arc<[Op]>` (plus its lane
/// decoding) once frozen.
#[derive(Clone, Debug)]
enum Stream {
    Building(Vec<Op>),
    Frozen { ops: Arc<[Op]>, lanes: Arc<OpLanes> },
}

impl Stream {
    fn ops(&self) -> &[Op] {
        match self {
            Stream::Building(v) => v,
            Stream::Frozen { ops, .. } => ops,
        }
    }

    fn freeze(&mut self) {
        if let Stream::Building(v) = self {
            let ops: Arc<[Op]> = Arc::from(std::mem::take(v).into_boxed_slice());
            let lanes = Arc::new(OpLanes::from_ops(&ops));
            *self = Stream::Frozen { ops, lanes };
        }
    }
}

/// A complete multi-core program: one op stream per core.
///
/// Streams are append-only buffers during generation; [`Program::freeze`]
/// turns them into shared `Arc<[Op]>` allocations, after which `clone()`
/// is O(cores) reference-count bumps — the representation that lets one
/// generated workload back many concurrent simulator instances.
#[derive(Clone, Debug, Default)]
pub struct Program {
    name: String,
    streams: Vec<Stream>,
}

impl Program {
    /// Creates an empty program for `cores` cores.
    pub fn new(name: &str, cores: usize) -> Self {
        Program {
            name: name.to_string(),
            streams: (0..cores).map(|_| Stream::Building(Vec::new())).collect(),
        }
    }

    /// Program name (the workload that generated it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.streams.len()
    }

    /// The op stream of one core.
    pub fn ops(&self, core: usize) -> &[Op] {
        self.streams[core].ops()
    }

    /// Mutable access to one core's stream, for appending ops.
    ///
    /// Calling this on a frozen program thaws that core's stream back
    /// into a private buffer (one copy); generators that build and then
    /// freeze never pay it.
    pub fn core_mut(&mut self, core: usize) -> &mut Vec<Op> {
        let slot = &mut self.streams[core];
        if let Stream::Frozen { ops, .. } = slot {
            *slot = Stream::Building(ops.to_vec());
        }
        match slot {
            Stream::Building(v) => v,
            Stream::Frozen { .. } => unreachable!("stream thawed above"),
        }
    }

    /// Freezes every stream into its shared immutable form (the op
    /// records plus their [`OpLanes`] decoding). Idempotent;
    /// already-frozen streams are untouched.
    pub fn freeze(&mut self) {
        for slot in &mut self.streams {
            slot.freeze();
        }
    }

    /// The shared handle to one core's stream, freezing it first if
    /// needed. Cloning the returned `Arc` is how consumers (the per-core
    /// engines of `imp-sim`) share the stream without copying it.
    pub fn stream(&mut self, core: usize) -> Arc<[Op]> {
        let slot = &mut self.streams[core];
        slot.freeze();
        match slot {
            Stream::Frozen { ops, .. } => Arc::clone(ops),
            Stream::Building(_) => unreachable!("stream frozen above"),
        }
    }

    /// The shared struct-of-arrays decoding of one core's stream,
    /// freezing it first if needed. All clones of a frozen program
    /// share one decoding, so fanning a workload out over many
    /// simulator configurations decodes it once.
    pub fn lanes(&mut self, core: usize) -> Arc<OpLanes> {
        let slot = &mut self.streams[core];
        slot.freeze();
        match slot {
            Stream::Frozen { lanes, .. } => Arc::clone(lanes),
            Stream::Building(_) => unreachable!("stream frozen above"),
        }
    }

    /// Appends a barrier to every core's stream.
    pub fn barrier(&mut self) {
        for core in 0..self.streams.len() {
            self.core_mut(core).push(Op::barrier());
        }
    }

    /// Instructions per core.
    pub fn instructions_per_core(&self) -> Vec<u64> {
        self.streams
            .iter()
            .map(|s| s.ops().iter().map(Op::instruction_count).sum())
            .collect()
    }

    /// Total instructions over all cores.
    pub fn total_instructions(&self) -> u64 {
        self.instructions_per_core().iter().sum()
    }

    /// Total demand memory operations over all cores.
    pub fn total_memory_ops(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| s.ops().iter().filter(|o| o.is_demand()).count() as u64)
            .sum()
    }

    /// Checks that every core has the same number of barriers (a program
    /// whose cores disagree would deadlock at the first unmatched
    /// barrier); returns the barrier count.
    ///
    /// # Errors
    ///
    /// Returns [`BarrierMismatch`] carrying the per-core counts when the
    /// cores disagree.
    pub fn validate_barriers(&self) -> Result<usize, BarrierMismatch> {
        let counts: Vec<usize> = self
            .streams
            .iter()
            .map(|s| s.ops().iter().filter(|o| o.kind == OpKind::Barrier).count())
            .collect();
        match counts.split_first() {
            Some((first, rest)) if rest.iter().any(|c| c != first) => {
                Err(BarrierMismatch { counts })
            }
            Some((first, _)) => Ok(*first),
            None => Ok(0),
        }
    }
}

/// Cores disagree on how many barriers their streams contain; running
/// this program would deadlock at the first unmatched barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierMismatch {
    /// Barrier count per core, in core order.
    pub counts: Vec<usize>,
}

impl fmt::Display for BarrierMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "barrier count mismatch across cores: {:?}", self.counts)
    }
}

impl std::error::Error for BarrierMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_is_compact() {
        assert_eq!(std::mem::size_of::<Op>(), 16);
    }

    #[test]
    fn instruction_counting() {
        assert_eq!(Op::compute(7).instruction_count(), 7);
        assert_eq!(Op::barrier().instruction_count(), 0);
        let l = Op::load(Addr::new(8), 8, Pc::new(3), AccessClass::Indirect);
        assert_eq!(l.instruction_count(), 1);
        assert_eq!(
            Op::sw_prefetch(Addr::new(8), Pc::new(4)).instruction_count(),
            1
        );
    }

    #[test]
    fn program_totals() {
        let mut p = Program::new("t", 2);
        p.core_mut(0).push(Op::compute(10));
        p.core_mut(0)
            .push(Op::load(Addr::new(0), 4, Pc::new(1), AccessClass::Stream));
        p.core_mut(1)
            .push(Op::store(Addr::new(8), 4, Pc::new(2), AccessClass::Other));
        p.barrier();
        assert_eq!(p.total_instructions(), 12);
        assert_eq!(p.total_memory_ops(), 2);
        assert_eq!(p.validate_barriers(), Ok(1));
        assert_eq!(p.name(), "t");
        assert_eq!(p.cores(), 2);
    }

    #[test]
    fn unbalanced_barriers_detected() {
        let mut p = Program::new("bad", 2);
        p.core_mut(0).push(Op::barrier());
        let err = p.validate_barriers().unwrap_err();
        assert_eq!(err.counts, vec![1, 0]);
        assert!(err.to_string().contains("barrier count mismatch"));
    }

    #[test]
    fn freezing_shares_streams_and_preserves_contents() {
        let mut p = Program::new("f", 2);
        p.core_mut(0)
            .push(Op::load(Addr::new(0), 4, Pc::new(1), AccessClass::Stream));
        p.core_mut(1).push(Op::compute(3));
        let before: Vec<Vec<Op>> = (0..2).map(|c| p.ops(c).to_vec()).collect();

        let a = p.stream(0); // freezes core 0 on demand
        p.freeze(); // idempotent, covers core 1
        let b = p.stream(0);
        assert!(Arc::ptr_eq(&a, &b), "frozen stream is shared, not copied");

        let clone = p.clone();
        for (c, ops) in before.iter().enumerate() {
            assert_eq!(clone.ops(c), &ops[..]);
        }

        // Mutation after freeze thaws into a private buffer.
        let mut thawed = p.clone();
        thawed.core_mut(0).push(Op::compute(1));
        assert_eq!(thawed.ops(0).len(), 2);
        assert_eq!(p.ops(0).len(), 1, "original untouched");
    }

    #[test]
    fn lanes_round_trip_and_are_shared() {
        let mut p = Program::new("l", 1);
        p.core_mut(0).push(Op::compute(3));
        p.core_mut(0)
            .push(Op::load(Addr::new(0x40), 8, Pc::new(7), AccessClass::Indirect).with_dep(1));
        p.core_mut(0).push(Op::barrier());
        let lanes = p.lanes(0);
        assert_eq!(lanes.len(), 3);
        assert!(!lanes.is_empty());
        for i in 0..lanes.len() {
            assert_eq!(lanes.op(i), p.ops(0)[i], "lane {i} reconstructs the record");
        }
        let again = p.lanes(0);
        assert!(
            Arc::ptr_eq(&lanes, &again),
            "decoding is shared, not rebuilt"
        );
        assert!(
            Arc::ptr_eq(&lanes, &p.clone().lanes(0)),
            "clones share it too"
        );
    }

    #[test]
    fn dependency_marking() {
        let l = Op::load(Addr::new(0), 8, Pc::new(1), AccessClass::Indirect).with_dep(1);
        assert_eq!(l.dep, 1);
        assert_eq!(l.with_dep(2).dep, 2);
    }
}
