//! Instrumented operation streams.
//!
//! The workloads of the paper (Section 5.3) are real algorithms; what the
//! simulator consumes is, per core, a stream of *operations*: compute
//! bursts, tagged loads/stores, software prefetches and barriers. The tag
//! carries the ground-truth [`AccessClass`] (indirect / stream / other)
//! used for Figures 1 and 2, the static [`Pc`] of the access site (IMP's
//! Prefetch Table is PC-indexed), and a dependency distance used by the
//! out-of-order core model of Section 6.3.1.
//!
//! Ops are kept to 16 bytes so multi-million-instruction programs stay
//! cheap to store.
//!
//! # Example
//!
//! ```
//! use imp_trace::{Op, Program};
//! use imp_common::{Addr, Pc, stats::AccessClass};
//!
//! let mut p = Program::new("demo", 2);
//! p.core_mut(0).push(Op::load(Addr::new(0x100), 4, Pc::new(1), AccessClass::Stream));
//! p.barrier();
//! assert_eq!(p.ops(0).len(), 2);
//! assert_eq!(p.ops(1).len(), 1); // just the barrier
//! ```

use imp_common::stats::AccessClass;
use imp_common::{Addr, Pc};

/// The kind of one operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum OpKind {
    /// `n` cycles (= `n` single-cycle instructions) of computation;
    /// `n` is stored in the `addr` field.
    Compute,
    /// A demand load.
    Load,
    /// A demand store.
    Store,
    /// A software prefetch instruction (non-binding, non-blocking).
    SwPrefetch,
    /// Synchronization barrier across all cores.
    Barrier,
}

/// One operation in a core's instruction stream. 16 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Op {
    /// Byte address for memory ops; cycle count for `Compute`.
    pub addr: u64,
    /// Static instruction identifier of the access site.
    pub pc: Pc,
    /// Operation kind.
    pub kind: OpKind,
    /// Access size in bytes (memory ops only).
    pub size: u8,
    /// Ground-truth access class (memory ops only).
    pub class: AccessClass,
    /// Dependency distance for the OoO model: this load/store's address
    /// depends on the value produced by the `dep`-th previous *load* in
    /// the same stream (0 = independent). An indirect access `A[B[i]]`
    /// has `dep = 1` right after its index load of `B[i]`.
    pub dep: u8,
}

impl Op {
    /// `cycles` cycles of computation (counted as `cycles` instructions).
    pub fn compute(cycles: u32) -> Self {
        Op {
            addr: u64::from(cycles),
            pc: Pc::new(0),
            kind: OpKind::Compute,
            size: 0,
            class: AccessClass::Other,
            dep: 0,
        }
    }

    /// A demand load.
    pub fn load(addr: Addr, size: u8, pc: Pc, class: AccessClass) -> Self {
        Op {
            addr: addr.raw(),
            pc,
            kind: OpKind::Load,
            size,
            class,
            dep: 0,
        }
    }

    /// A demand store.
    pub fn store(addr: Addr, size: u8, pc: Pc, class: AccessClass) -> Self {
        Op {
            addr: addr.raw(),
            pc,
            kind: OpKind::Store,
            size,
            class,
            dep: 0,
        }
    }

    /// A software prefetch of the line containing `addr`.
    pub fn sw_prefetch(addr: Addr, pc: Pc) -> Self {
        Op {
            addr: addr.raw(),
            pc,
            kind: OpKind::SwPrefetch,
            size: 8,
            class: AccessClass::Other,
            dep: 0,
        }
    }

    /// A barrier.
    pub fn barrier() -> Self {
        Op {
            addr: 0,
            pc: Pc::new(0),
            kind: OpKind::Barrier,
            size: 0,
            class: AccessClass::Other,
            dep: 0,
        }
    }

    /// Marks this op as address-dependent on the `n`-th previous load.
    #[must_use]
    pub fn with_dep(mut self, n: u8) -> Self {
        self.dep = n;
        self
    }

    /// The memory address (memory ops).
    pub fn mem_addr(&self) -> Addr {
        Addr::new(self.addr)
    }

    /// Number of instructions this op represents.
    pub fn instruction_count(&self) -> u64 {
        match self.kind {
            OpKind::Compute => self.addr,
            OpKind::Barrier => 0,
            _ => 1,
        }
    }

    /// True for loads and stores (the ops that access the cache).
    pub fn is_demand(&self) -> bool {
        matches!(self.kind, OpKind::Load | OpKind::Store)
    }
}

/// A complete multi-core program: one op stream per core.
#[derive(Clone, Debug, Default)]
pub struct Program {
    name: String,
    streams: Vec<Vec<Op>>,
}

impl Program {
    /// Creates an empty program for `cores` cores.
    pub fn new(name: &str, cores: usize) -> Self {
        Program {
            name: name.to_string(),
            streams: vec![Vec::new(); cores],
        }
    }

    /// Program name (the workload that generated it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.streams.len()
    }

    /// The op stream of one core.
    pub fn ops(&self, core: usize) -> &[Op] {
        &self.streams[core]
    }

    /// Mutable access to one core's stream, for appending ops.
    pub fn core_mut(&mut self, core: usize) -> &mut Vec<Op> {
        &mut self.streams[core]
    }

    /// Appends a barrier to every core's stream.
    pub fn barrier(&mut self) {
        for s in &mut self.streams {
            s.push(Op::barrier());
        }
    }

    /// Instructions per core.
    pub fn instructions_per_core(&self) -> Vec<u64> {
        self.streams
            .iter()
            .map(|s| s.iter().map(Op::instruction_count).sum())
            .collect()
    }

    /// Total instructions over all cores.
    pub fn total_instructions(&self) -> u64 {
        self.instructions_per_core().iter().sum()
    }

    /// Total demand memory operations over all cores.
    pub fn total_memory_ops(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| s.iter().filter(|o| o.is_demand()).count() as u64)
            .sum()
    }

    /// Checks that every core has the same number of barriers and that
    /// barrier positions partition the streams consistently; returns the
    /// barrier count.
    ///
    /// # Panics
    ///
    /// Panics if cores disagree on the number of barriers — that program
    /// would deadlock.
    pub fn validate_barriers(&self) -> usize {
        let counts: Vec<usize> = self
            .streams
            .iter()
            .map(|s| s.iter().filter(|o| o.kind == OpKind::Barrier).count())
            .collect();
        if let Some((first, rest)) = counts.split_first() {
            assert!(
                rest.iter().all(|c| c == first),
                "barrier count mismatch across cores: {counts:?}"
            );
            *first
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_is_compact() {
        assert_eq!(std::mem::size_of::<Op>(), 16);
    }

    #[test]
    fn instruction_counting() {
        assert_eq!(Op::compute(7).instruction_count(), 7);
        assert_eq!(Op::barrier().instruction_count(), 0);
        let l = Op::load(Addr::new(8), 8, Pc::new(3), AccessClass::Indirect);
        assert_eq!(l.instruction_count(), 1);
        assert_eq!(
            Op::sw_prefetch(Addr::new(8), Pc::new(4)).instruction_count(),
            1
        );
    }

    #[test]
    fn program_totals() {
        let mut p = Program::new("t", 2);
        p.core_mut(0).push(Op::compute(10));
        p.core_mut(0)
            .push(Op::load(Addr::new(0), 4, Pc::new(1), AccessClass::Stream));
        p.core_mut(1)
            .push(Op::store(Addr::new(8), 4, Pc::new(2), AccessClass::Other));
        p.barrier();
        assert_eq!(p.total_instructions(), 12);
        assert_eq!(p.total_memory_ops(), 2);
        assert_eq!(p.validate_barriers(), 1);
        assert_eq!(p.name(), "t");
        assert_eq!(p.cores(), 2);
    }

    #[test]
    #[should_panic(expected = "barrier count mismatch")]
    fn unbalanced_barriers_detected() {
        let mut p = Program::new("bad", 2);
        p.core_mut(0).push(Op::barrier());
        p.validate_barriers();
    }

    #[test]
    fn dependency_marking() {
        let l = Op::load(Addr::new(0), 8, Pc::new(1), AccessClass::Indirect).with_dep(1);
        assert_eq!(l.dep, 1);
        assert_eq!(l.with_dep(2).dep, 2);
    }
}
