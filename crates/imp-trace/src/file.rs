//! The versioned binary `.imptrace` container.
//!
//! A trace file persists a [`Program`] — and an opaque payload section a
//! higher layer may attach (the workload crate stores the functional
//! memory image and the algorithm result there) — so a generated or
//! externally recorded op stream can be replayed without re-running the
//! generator.
//!
//! ## Layout (all integers little-endian)
//!
//! | section | encoding |
//! |---|---|
//! | magic | 8 bytes, `b"IMPTRACE"` |
//! | version | `u32`, currently 1 |
//! | name | `u32` length + UTF-8 bytes |
//! | cores | `u32` |
//! | stream lengths | `u64` per core |
//! | ops | 16 bytes per op, streams concatenated in core order |
//! | payload | `u64` length + bytes |
//! | checksum | `u64` FNV-1a over everything before it |
//!
//! Each op encodes as `addr:u64, pc:u32, kind:u8, size:u8, class:u8,
//! dep:u8` — the same 16 bytes the in-memory [`Op`] occupies.
//!
//! ```
//! use imp_trace::{file::TraceFile, Op, Program};
//! use imp_common::{Addr, Pc, stats::AccessClass};
//!
//! let mut p = Program::new("demo", 1);
//! p.core_mut(0).push(Op::load(Addr::new(64), 8, Pc::new(1), AccessClass::Indirect));
//! let bytes = TraceFile::new(p).to_bytes();
//! let back = TraceFile::from_bytes(&bytes).unwrap();
//! assert_eq!(back.program.name(), "demo");
//! assert_eq!(back.program.ops(0).len(), 1);
//! ```

use crate::{Op, OpKind, Program};
use imp_common::stats::AccessClass;
use imp_common::{fnv1a, Pc};
use std::fmt;
use std::path::Path;

/// File magic: the first eight bytes of every `.imptrace` file.
pub const MAGIC: [u8; 8] = *b"IMPTRACE";

/// Current format version written by [`TraceFile::save`].
pub const VERSION: u32 = 1;

/// Bytes one op occupies on disk (same as in memory).
pub const OP_BYTES: usize = 16;

/// Why a trace could not be read or written.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file ended before a section was complete.
    Truncated {
        /// Which section was being read.
        section: &'static str,
        /// Bytes the section needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// The program name is not valid UTF-8.
    BadName,
    /// An op's kind byte is not a known [`OpKind`].
    BadOpKind(u8),
    /// An op's class byte is not a known [`AccessClass`].
    BadAccessClass(u8),
    /// The stored checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the bytes actually read.
        computed: u64,
    },
    /// The file has bytes after the checksum trailer.
    TrailingBytes(usize),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not an .imptrace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .imptrace version {v} (reader supports {VERSION})"
                )
            }
            TraceError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "truncated .imptrace: {section} needs {needed} bytes, {available} left"
            ),
            TraceError::BadName => write!(f, "program name is not valid UTF-8"),
            TraceError::BadOpKind(b) => write!(f, "unknown op kind byte {b:#x}"),
            TraceError::BadAccessClass(b) => write!(f, "unknown access class byte {b:#x}"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            TraceError::TrailingBytes(n) => {
                write!(f, "{n} unexpected bytes after the checksum trailer")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A deserialized (or to-be-serialized) trace: the program plus an
/// opaque payload owned by whatever layer recorded it.
#[derive(Clone, Debug)]
pub struct TraceFile {
    /// The multi-core op streams.
    pub program: Program,
    /// Opaque higher-layer section (e.g. a functional-memory image);
    /// empty when the trace carries only the program.
    pub payload: Vec<u8>,
}

impl TraceFile {
    /// A trace carrying only `program`.
    pub fn new(program: Program) -> Self {
        TraceFile {
            program,
            payload: Vec::new(),
        }
    }

    /// A trace carrying `program` plus a higher-layer `payload`.
    pub fn with_payload(program: Program, payload: Vec<u8>) -> Self {
        TraceFile { program, payload }
    }

    /// Serializes to the `.imptrace` byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let cores = self.program.cores();
        let total_ops: usize = (0..cores).map(|c| self.program.ops(c).len()).sum();
        let name = self.program.name().as_bytes();
        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 4
                + 4
                + name.len()
                + 4
                + 8 * cores
                + OP_BYTES * total_ops
                + 8
                + self.payload.len()
                + 8,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(cores as u32).to_le_bytes());
        for c in 0..cores {
            out.extend_from_slice(&(self.program.ops(c).len() as u64).to_le_bytes());
        }
        for c in 0..cores {
            for op in self.program.ops(c) {
                encode_op(op, &mut out);
            }
        }
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses the `.imptrace` byte layout.
    ///
    /// # Errors
    ///
    /// Any structural defect — wrong magic, newer version, truncation,
    /// invalid op bytes, checksum mismatch — comes back as the matching
    /// [`TraceError`] variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 8 {
            return Err(TraceError::Truncated {
                section: "checksum trailer",
                needed: 8,
                available: bytes.len(),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader { buf: body, pos: 0 };
        if r.take("magic", MAGIC.len())? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let name_len = r.u32("name length")? as usize;
        let name = std::str::from_utf8(r.take("name", name_len)?)
            .map_err(|_| TraceError::BadName)?
            .to_string();
        let cores = r.u32("core count")? as usize;
        // Lengths are untrusted until checked against the bytes that
        // remain — never size an allocation from them alone, or a
        // malformed (checksum-valid) file aborts instead of erroring.
        let mut lens = Vec::with_capacity(cores.min(r.remaining() / 8));
        for _ in 0..cores {
            lens.push(r.u64("stream length")? as usize);
        }
        let mut program = Program::new(&name, cores);
        for (c, &len) in lens.iter().enumerate() {
            let needed = len.saturating_mul(OP_BYTES);
            if needed > r.remaining() {
                return Err(TraceError::Truncated {
                    section: "op stream",
                    needed,
                    available: r.remaining(),
                });
            }
            let stream = program.core_mut(c);
            stream.reserve(len);
            for _ in 0..len {
                stream.push(decode_op(r.take("op", OP_BYTES)?)?);
            }
        }
        program.freeze();
        let payload_len = r.u64("payload length")? as usize;
        let payload = r.take("payload", payload_len)?.to_vec();
        if r.pos != body.len() {
            return Err(TraceError::TrailingBytes(body.len() - r.pos));
        }
        Ok(TraceFile { program, payload })
    }

    /// Writes the trace to `path` (conventionally `*.imptrace`).
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`TraceError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Reads a trace back from `path`.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`TraceError::Io`]; malformed
    /// contents as the other [`TraceError`] variants.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

impl Program {
    /// Saves this program (without payload) as an `.imptrace` file.
    ///
    /// # Errors
    ///
    /// See [`TraceFile::save`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        TraceFile::new(self.clone()).save(path)
    }

    /// Loads a program from an `.imptrace` file, ignoring any payload.
    ///
    /// # Errors
    ///
    /// See [`TraceFile::load`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Ok(TraceFile::load(path)?.program)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, section: &'static str, n: usize) -> Result<&'a [u8], TraceError> {
        let available = self.remaining();
        if n > available {
            return Err(TraceError::Truncated {
                section,
                needed: n,
                available,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            self.take(section, 4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(section, 8)?.try_into().expect("8 bytes"),
        ))
    }
}

fn encode_op(op: &Op, out: &mut Vec<u8>) {
    out.extend_from_slice(&op.addr.to_le_bytes());
    out.extend_from_slice(&op.pc.raw().to_le_bytes());
    out.push(kind_byte(op.kind));
    out.push(op.size);
    out.push(op.class.index() as u8);
    out.push(op.dep);
}

fn decode_op(bytes: &[u8]) -> Result<Op, TraceError> {
    debug_assert_eq!(bytes.len(), OP_BYTES);
    Ok(Op {
        addr: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
        pc: Pc::new(u32::from_le_bytes(
            bytes[8..12].try_into().expect("4 bytes"),
        )),
        kind: kind_from_byte(bytes[12])?,
        size: bytes[13],
        class: class_from_byte(bytes[14])?,
        dep: bytes[15],
    })
}

fn kind_byte(kind: OpKind) -> u8 {
    match kind {
        OpKind::Compute => 0,
        OpKind::Load => 1,
        OpKind::Store => 2,
        OpKind::SwPrefetch => 3,
        OpKind::Barrier => 4,
    }
}

fn kind_from_byte(b: u8) -> Result<OpKind, TraceError> {
    Ok(match b {
        0 => OpKind::Compute,
        1 => OpKind::Load,
        2 => OpKind::Store,
        3 => OpKind::SwPrefetch,
        4 => OpKind::Barrier,
        other => return Err(TraceError::BadOpKind(other)),
    })
}

fn class_from_byte(b: u8) -> Result<AccessClass, TraceError> {
    AccessClass::ALL
        .get(b as usize)
        .copied()
        .ok_or(TraceError::BadAccessClass(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::Addr;

    fn sample() -> Program {
        let mut p = Program::new("sample", 2);
        p.core_mut(0).push(Op::load(
            Addr::new(0x40),
            4,
            Pc::new(1),
            AccessClass::Stream,
        ));
        p.core_mut(0)
            .push(Op::load(Addr::new(0x4000), 8, Pc::new(2), AccessClass::Indirect).with_dep(1));
        p.core_mut(1).push(Op::compute(17));
        p.core_mut(1).push(Op::store(
            Addr::new(0x80),
            8,
            Pc::new(3),
            AccessClass::Other,
        ));
        p.core_mut(1)
            .push(Op::sw_prefetch(Addr::new(0xc0), Pc::new(4)));
        p.barrier();
        p
    }

    #[test]
    fn byte_roundtrip_preserves_everything() {
        let tf = TraceFile::with_payload(sample(), vec![1, 2, 3, 255]);
        let back = TraceFile::from_bytes(&tf.to_bytes()).unwrap();
        assert_eq!(back.program.name(), "sample");
        assert_eq!(back.program.cores(), 2);
        for c in 0..2 {
            assert_eq!(back.program.ops(c), tf.program.ops(c), "core {c}");
        }
        assert_eq!(back.payload, vec![1, 2, 3, 255]);
    }

    #[test]
    fn file_roundtrip_via_program_convenience() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("imptrace-test-{}.imptrace", std::process::id()));
        let p = sample();
        p.save(&path).unwrap();
        let back = Program::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.ops(0), p.ops(0));
        assert_eq!(back.validate_barriers(), p.validate_barriers());
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = TraceFile::new(sample()).to_bytes();

        // Flip a byte in the middle: checksum catches it.
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0xff;
        assert!(matches!(
            TraceFile::from_bytes(&bad),
            Err(TraceError::ChecksumMismatch { .. })
        ));

        // Truncation before the trailer.
        assert!(matches!(
            TraceFile::from_bytes(&bytes[..4]),
            Err(TraceError::Truncated { .. })
        ));

        // Wrong magic with a fixed-up checksum.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        let body_len = wrong.len() - 8;
        let sum = fnv1a(&wrong[..body_len]);
        wrong[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            TraceFile::from_bytes(&wrong),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn absurd_stream_lengths_error_instead_of_allocating() {
        let mut p = Program::new("k", 1);
        p.core_mut(0).push(Op::compute(1));
        let mut bytes = TraceFile::new(p).to_bytes();
        // The single stream-length field sits after
        // magic(8)+version(4)+name(4+1)+cores(4); forge it huge and
        // re-stamp the checksum so only the length check can reject it.
        let len_at = 8 + 4 + 4 + 1 + 4;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            TraceFile::from_bytes(&bytes),
            Err(TraceError::Truncated {
                section: "op stream",
                ..
            })
        ));
    }

    #[test]
    fn newer_versions_are_rejected() {
        let mut bytes = TraceFile::new(sample()).to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            TraceFile::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn bad_op_bytes_are_typed_errors() {
        let mut p = Program::new("k", 1);
        p.core_mut(0).push(Op::compute(1));
        let mut bytes = TraceFile::new(p).to_bytes();
        // The op's kind byte sits 12 bytes into the op record; the op
        // record starts after magic(8)+version(4)+name(4+1)+cores(4)+len(8).
        let op_start = 8 + 4 + 4 + 1 + 4 + 8;
        bytes[op_start + 12] = 200;
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            TraceFile::from_bytes(&bytes),
            Err(TraceError::BadOpKind(200))
        ));
    }
}
