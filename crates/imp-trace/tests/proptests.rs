//! Property tests: the binary `.imptrace` encoding round-trips arbitrary
//! op streams exactly.

use imp_common::stats::AccessClass;
use imp_common::{Addr, Pc};
use imp_trace::{Op, Program, TraceFile};
use proptest::prelude::*;

/// Decodes one generated tuple into an op. `sel` picks the kind, the
/// rest fill in every field the encoding must carry.
fn op_from(sel: u8, addr: u64, pc: u32, size_sel: u8, class_sel: u8, dep: u8) -> Op {
    let size = [1u8, 2, 4, 8][(size_sel % 4) as usize];
    let class = AccessClass::ALL[(class_sel % 3) as usize];
    match sel % 5 {
        0 => Op::compute(addr as u32),
        1 => Op::load(Addr::new(addr), size, Pc::new(pc), class).with_dep(dep),
        2 => Op::store(Addr::new(addr), size, Pc::new(pc), class).with_dep(dep),
        3 => Op::sw_prefetch(Addr::new(addr), Pc::new(pc)),
        _ => Op::barrier(),
    }
}

proptest! {
    /// Arbitrary multi-core programs survive encode → decode bit-exactly.
    #[test]
    fn imptrace_roundtrip(
        streams in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u8>(), any::<u64>(), any::<u32>(), any::<u8>(), any::<u8>(), any::<u8>())
                    .prop_map(|(s, a, p, z, c, d)| op_from(s, a, p, z, c, d)),
                0..40,
            ),
            1..6,
        ),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut program = Program::new("prop", streams.len());
        for (c, ops) in streams.iter().enumerate() {
            program.core_mut(c).extend_from_slice(ops);
        }
        let tf = TraceFile::with_payload(program, payload.clone());
        let bytes = tf.to_bytes();
        let back = TraceFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.program.name(), "prop");
        prop_assert_eq!(back.program.cores(), streams.len());
        for (c, ops) in streams.iter().enumerate() {
            prop_assert_eq!(back.program.ops(c), &ops[..]);
        }
        prop_assert_eq!(back.payload, payload);
        // Re-encoding the decoded trace is byte-stable.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Any single flipped byte is rejected, never silently accepted.
    #[test]
    fn imptrace_detects_any_single_byte_flip(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u32>(), any::<u8>(), any::<u8>(), any::<u8>())
                .prop_map(|(s, a, p, z, c, d)| op_from(s, a, p, z, c, d)),
            1..20,
        ),
        flip_at in any::<u64>(),
        flip_bits in 1u8..=255,
    ) {
        let mut program = Program::new("flip", 1);
        program.core_mut(0).extend_from_slice(&ops);
        let bytes = TraceFile::new(program).to_bytes();
        let mut bad = bytes.clone();
        let i = (flip_at % bytes.len() as u64) as usize;
        bad[i] ^= flip_bits;
        prop_assert!(TraceFile::from_bytes(&bad).is_err(), "flip at byte {}", i);
    }
}
