//! The full-system simulator: tiles (core + L1D + prefetcher + L2 slice +
//! directory slice), mesh NoC, memory controllers, and the event loop.
//!
//! The protocol is a simplified MSI directory protocol with ACKwise-4
//! sharer tracking (Table 1). Each home tile serializes transactions per
//! line; invalidations are collected with explicit acks; L2 evictions
//! recall L1 copies fire-and-forget (timing-only simplification — data
//! correctness is carried by the functional memory, not the caches).

use crate::msg::{Msg, MsgKind};
use imp_adapt::{EpochTracker, Manager, ManagerError};
use imp_cache::{AccessOutcome, Evicted, LineState, MshrAlloc, MshrFile, SectoredCache};
use imp_coherence::{Directory, InvTargets};
use imp_common::config::{
    CoreModel, DramModelKind, MemMode, PartialMode, PrefetcherSpec, WalkModel,
};
use imp_common::stats::{
    AccessClass, CoreStats, PrefetchStats, SystemStats, TlbStats, TrafficStats,
};
use imp_common::{
    Addr, Cycle, EventQueue, FastMap, LineAddr, SectorMask, SystemConfig, LINE_BYTES,
};
use imp_cpu::{CoreBlock, CoreEngine, InOrderCore, MemPort, MemResult, OooCore};
use imp_dram::{Ddr3Dram, Ddr3Timing, DramModel, FixedLatencyDram};
use imp_mem::FunctionalMemory;
use imp_noc::{mc_for_line, mc_tiles, Mesh};
use imp_obs::{CoreProbe, Ledger, Probe};
use imp_prefetch::registry::{self, BuildCtx, RegistryError};
use imp_prefetch::{
    class_of, Access, Control, IndexValueSource, L1Prefetcher, NullPrefetcher, PrefetchCtx,
    PrefetchKind, PrefetchRequest, PrefetcherStats,
};
use imp_trace::{BarrierMismatch, OpKind, Program};
use imp_vm::{PagePlacement, PrefetchTranslation, Vm, VmConfigError, WalkMemory, PTE_BYTES};
use std::collections::VecDeque;
use std::fmt;

/// Why [`System::try_new`] rejected its inputs.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The prefetcher spec did not resolve against the plugin registry.
    Registry(RegistryError),
    /// The program's cores disagree on barrier counts (it would
    /// deadlock).
    Barrier(BarrierMismatch),
    /// The program was generated for a different core count than the
    /// configuration describes.
    CoreCountMismatch {
        /// Cores the program was generated for.
        program: usize,
        /// Cores the configuration describes.
        config: u32,
    },
    /// The TLB configuration is invalid (zero sets/ways, bad page size).
    Vm(VmConfigError),
    /// The adaptive-manager spec did not resolve (unknown policy or
    /// invalid parameter).
    Manager(ManagerError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Registry(e) => write!(f, "{e}"),
            BuildError::Barrier(e) => write!(f, "{e}"),
            BuildError::CoreCountMismatch { program, config } => write!(
                f,
                "program was generated for {program} cores but the configuration has {config}"
            ),
            BuildError::Vm(e) => write!(f, "{e}"),
            BuildError::Manager(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Why [`System::try_run`] stopped before the program finished.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The event budget (default [`DEFAULT_EVENT_BUDGET`], see
    /// [`System::set_event_budget`]) was exhausted before every core
    /// retired. Carries the statistics collected so far, so a sweep can
    /// record the partial cell instead of aborting the process.
    EventBudgetExceeded {
        /// Events processed (= the budget that was exceeded).
        events: u64,
        /// Statistics at the moment the budget ran out.
        stats: Box<SystemStats>,
    },
    /// The event queue drained with unfinished cores: the program
    /// deadlocked (e.g. a core waiting on a barrier no one else reaches).
    Deadlock {
        /// Cores that had not finished.
        unfinished: usize,
        /// Total cores.
        cores: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::EventBudgetExceeded { events, .. } => {
                write!(f, "simulation exceeded event budget ({events} events)")
            }
            RunError::Deadlock { unfinished, cores } => write!(
                f,
                "event queue drained with {unfinished} of {cores} cores unfinished (deadlock)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Default [`System::try_run`] event budget: generous enough that every
/// legitimate workload finishes, small enough to catch runaway cells.
pub const DEFAULT_EVENT_BUDGET: u64 = 20_000_000_000;

impl From<RegistryError> for BuildError {
    fn from(e: RegistryError) -> Self {
        BuildError::Registry(e)
    }
}

impl From<BarrierMismatch> for BuildError {
    fn from(e: BarrierMismatch) -> Self {
        BuildError::Barrier(e)
    }
}

impl From<VmConfigError> for BuildError {
    fn from(e: VmConfigError) -> Self {
        BuildError::Vm(e)
    }
}

impl From<ManagerError> for BuildError {
    fn from(e: ManagerError) -> Self {
        BuildError::Manager(e)
    }
}

/// The adaptive control plane's run state: a [`Manager`] (epoch length
/// and policy), its private timeliness [`Ledger`] (fed from the same
/// sites as the observability probe, unconditionally — management must
/// work without a probe attached), the [`EpochTracker`] that turns the
/// cumulative ledger into per-epoch deltas, and the [`Control`]
/// currently in force.
struct ManagerState {
    mgr: Manager,
    ledger: Ledger,
    tracker: EpochTracker,
    /// Cycle at which the next epoch closes.
    next_epoch: Cycle,
    /// The control installed at the last epoch boundary; applied to
    /// every prefetch-request batch until the next boundary.
    control: Control,
    /// Cumulative demand misses (the tracker turns them into deltas).
    demand_misses: u64,
    /// The prefetcher spec currently running (switches are applied
    /// once per distinct spec).
    active: PrefetcherSpec,
}

/// Discrete events of the simulation.
#[derive(Debug)]
enum Event {
    CoreWake(u32),
    Deliver(Msg),
}

/// Per-core run state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CoreRun {
    Ready,
    WaitMem,
    WaitBarrier,
    Done,
}

/// Who is waiting on an outstanding L1 miss.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    Demand {
        token: u64,
        write: bool,
        touch: SectorMask,
    },
    /// A store retired through the store buffer: no core to wake, but
    /// the filled line must be dirtied.
    Store {
        touch: SectorMask,
    },
    Prefetch {
        req: PrefetchRequest,
    },
    SwPrefetch,
    PerfPref {
        id: u64,
    },
}

/// An in-flight transaction at a home tile.
#[derive(Debug)]
struct Txn {
    requester: u32,
    sectors: SectorMask,
    exclusive: bool,
    acks_pending: u32,
    data_ready: bool,
}

/// Reads index values out of the L1 (IMP can only use values whose lines
/// are cache-resident, as the hardware would).
struct L1Values<'a> {
    l1: &'a SectoredCache,
    mem: &'a FunctionalMemory,
}

impl IndexValueSource for L1Values<'_> {
    fn read_value(&mut self, addr: Addr, size: u32) -> Option<u64> {
        let line = LineAddr::containing(addr);
        let l = self.l1.probe(line)?;
        // Clip the touch mask to the cache's sectoring (a non-sectored
        // cache has a single sector covering the whole line).
        let need = SectorMask::l1_touch(addr, size).intersect(self.l1.full_mask());
        if l.valid.contains(need) {
            Some(self.mem.read_uint(addr, size))
        } else {
            None
        }
    }
}

/// Everything except the core engines (so cores and fabric can be
/// borrowed simultaneously).
struct Fabric {
    cfg: SystemConfig,
    queue: EventQueue<Event>,
    l1: Vec<SectoredCache>,
    mshr: Vec<MshrFile<Waiter>>,
    pref: Vec<Box<dyn L1Prefetcher>>,
    pstats: Vec<PrefetchStats>,
    l2: Vec<SectoredCache>,
    dir: Vec<Directory>,
    txns: Vec<FastMap<LineAddr, Txn>>,
    queued: Vec<FastMap<LineAddr, VecDeque<Msg>>>,
    mesh: Mesh,
    drams: Vec<Box<dyn DramModel>>,
    mc_tiles: Vec<u32>,
    mem: FunctionalMemory,
    traffic: TrafficStats,
    completions: Vec<(u32, u64, Cycle)>,
    /// Observability hook (disabled by default — every record call is a
    /// branch on a `None` and changes no timing either way; see
    /// [`System::attach_probe`]).
    probe: Probe,
    /// Per-core views of `probe` handed to prefetchers through
    /// [`PrefetchCtx`] (pre-built so the hot path never clones).
    cprobes: Vec<CoreProbe>,
    /// Adaptive manager state; `None` — the default — leaves every
    /// path below bit-identical to an unmanaged build.
    mgr: Option<ManagerState>,
    /// Model-side prefetcher statistics carried over from prefetchers
    /// replaced by a manager-requested switch (zero until a switch
    /// happens); [`System::collect_stats`] adds them to the live
    /// model's counters.
    carried_pref: Vec<PrefetcherStats>,
    /// Reusable [`PrefetchRequest`] buffers for prefetcher callbacks
    /// (a pool, because fill hooks can recurse through
    /// [`Fabric::issue_prefetch`]). Keeps the per-access path
    /// allocation-free.
    req_bufs: Vec<Vec<PrefetchRequest>>,
    next_token: u64,
    /// Per-core dTLBs over a shared page table/walker; `None` under the
    /// default ideal translation (and in the Ideal/PerfectPrefetch
    /// memory modes), where every path below is bit-identical to the
    /// pre-`imp-vm` simulator. The page table identity-maps on first
    /// touch, so translation changes timing only — never which lines
    /// move.
    vm: Option<Vm>,
    // PerfectPrefetch state.
    shadow: Vec<SectoredCache>,
    pp_outstanding: Vec<VecDeque<u64>>,
    pp_issue: FastMap<u64, Cycle>,
    pp_blocked: Vec<Option<(u64, u64)>>,
    pp_next_id: u64,
}

impl Fabric {
    fn home_of(&self, line: LineAddr) -> u32 {
        (line.number() % u64::from(self.cfg.cores)) as u32
    }

    fn take_req_buf(&mut self) -> Vec<PrefetchRequest> {
        self.req_bufs.pop().unwrap_or_default()
    }

    fn put_req_buf(&mut self, mut buf: Vec<PrefetchRequest>) {
        buf.clear();
        self.req_bufs.push(buf);
    }

    /// Applies the manager's standing [`Control`] to a freshly
    /// collected request batch: masked PCs are dropped, then the batch
    /// is truncated to the degree limit. A no-op without a manager (or
    /// under the `static` policy, whose control is always empty).
    fn apply_control(&self, reqs: &mut Vec<PrefetchRequest>) {
        let Some(m) = self.mgr.as_ref() else { return };
        if m.control.is_none() {
            return;
        }
        if !m.control.masked_pcs.is_empty() {
            // masked_pcs is sorted+deduped by `Control::merge`.
            reqs.retain(|r| m.control.masked_pcs.binary_search(&r.pc).is_err());
        }
        if let Some(max_hop) = m.control.depth_limit {
            // Deep-chase demotion: drop chained requests past the
            // allowed hop (sequential prefetches are hop 0 and always
            // survive this filter).
            reqs.retain(|r| r.kind.hop() <= max_hop);
        }
        if let Some(limit) = m.control.degree_limit {
            reqs.truncate(limit as usize);
        }
    }

    /// Total prefetch translations dropped by the TLB so far (base +
    /// huge sub-TLBs, all cores) — the pressure signal behind the
    /// demote-IMP rule.
    fn tlb_prefetch_drops_total(&self) -> u64 {
        let Some(vm) = self.vm.as_ref() else { return 0 };
        (0..self.cfg.cores as usize)
            .map(|c| vm.stats(c).prefetch_drops + vm.huge_stats(c).map_or(0, |s| s.prefetch_drops))
            .sum()
    }

    /// Closes every epoch boundary at or before `now`: distills the
    /// ledger into a [`Feedback`](imp_prefetch::Feedback) delta, asks
    /// the policy and each core's prefetcher for a [`Control`], applies
    /// a requested switch, and installs the merged control until the
    /// next boundary.
    fn manager_tick(&mut self, now: Cycle) {
        let Some(mut m) = self.mgr.take() else { return };
        while now >= m.next_epoch {
            let end = m.next_epoch;
            let drops = self.tlb_prefetch_drops_total();
            let flit_hops = self.mesh.flit_hops();
            let dram_bytes = self.traffic.dram_read_bytes + self.traffic.dram_write_bytes;
            let fb = m.tracker.feedback(
                &m.ledger,
                end,
                m.demand_misses,
                drops,
                flit_hops,
                dram_bytes,
            );
            let mut ctl = m.mgr.on_epoch(&fb);
            for p in &mut self.pref {
                ctl = ctl.merge(p.on_feedback(&fb));
            }
            if let Some(spec) = ctl.switch_to.take() {
                if spec != m.active && self.switch_prefetcher(&spec) {
                    m.active = spec;
                }
            }
            m.control = ctl;
            m.next_epoch = end + m.mgr.epoch_len();
        }
        self.mgr = Some(m);
    }

    /// Rebuilds every core's prefetcher from `spec`, folding the
    /// outgoing models' detection counters into the carried statistics
    /// so nothing is lost at the seam. Returns `false` (leaving the
    /// running prefetchers untouched) if the registry rejects the spec
    /// — a mid-run switch must never abort a simulation.
    fn switch_prefetcher(&mut self, spec: &PrefetcherSpec) -> bool {
        let partial = self.cfg.partial != PartialMode::Off;
        let mut fresh: Vec<Box<dyn L1Prefetcher>> = Vec::with_capacity(self.pref.len());
        for c in 0..self.pref.len() {
            let ctx = BuildCtx {
                core: c as u32,
                imp: &self.cfg.imp,
                partial,
            };
            match registry::build(spec, &ctx) {
                Ok(p) => fresh.push(p),
                Err(_) => return false,
            }
        }
        for (c, old) in self.pref.iter().enumerate() {
            let s = old.stats();
            let k = &mut self.carried_pref[c];
            k.stream_prefetches += s.stream_prefetches;
            k.indirect_prefetches += s.indirect_prefetches;
            k.patterns_detected += s.patterns_detected;
            k.detect_failures += s.detect_failures;
            k.ways_detected += s.ways_detected;
            k.levels_detected += s.levels_detected;
            k.partial_prefetches += s.partial_prefetches;
            k.value_unavailable += s.value_unavailable;
            k.deferred_drops += s.deferred_drops;
            k.deferred_retries += s.deferred_retries;
            k.mshr_drops += s.mshr_drops;
            k.translation_ahead += s.translation_ahead;
        }
        self.pref = fresh;
        true
    }

    fn send(&mut self, msg: Msg, at: Cycle) {
        let (arrival, _) = self.mesh.send(msg.src, msg.dst, msg.payload_bytes, at);
        self.queue.push(arrival, Event::Deliver(msg));
    }

    /// Bytes represented by an L1 sector mask under the current
    /// sectoring (a non-sectored line's single sector is the whole line).
    fn l1_mask_bytes(&self, c: usize, mask: SectorMask) -> u64 {
        let sectors = self.l1[c].sectors().max(1);
        let clipped = mask.intersect(self.l1[c].full_mask());
        u64::from(clipped.count()) * (LINE_BYTES / u64::from(sectors))
    }

    /// Bytes represented by an L2 sector mask under the current
    /// sectoring.
    fn l2_mask_bytes(&self, h: usize, mask: SectorMask) -> u64 {
        let sectors = self.l2[h].sectors().max(1);
        let clipped = mask.intersect(self.l2[h].full_mask());
        u64::from(clipped.count()) * (LINE_BYTES / u64::from(sectors))
    }

    fn full_or(&self, partial_sectors: SectorMask) -> SectorMask {
        if self.cfg.partial == PartialMode::Off {
            SectorMask::FULL_L1
        } else {
            partial_sectors
        }
    }

    // ------------------------------------------------------------------
    // Address translation (imp-vm)
    // ------------------------------------------------------------------

    /// First-order walk traffic under `WalkModel::Flat`: each radix
    /// level reads one 8-byte page-table entry from DRAM (no NoC or
    /// shared-cache occupancy). Under `WalkModel::Cached` the real PTE
    /// reads are accounted in [`Fabric::pte_read`] instead.
    fn walk_traffic(&mut self, levels: u32) {
        if self.cfg.tlb.walk_dram_traffic && self.cfg.tlb.walk_model == WalkModel::Flat {
            self.traffic.dram_read_bytes += 8 * u64::from(levels);
            self.traffic.dram_accesses += u64::from(levels);
        }
    }

    /// Translates a demand access issued at `now`, returning the
    /// translation cycles it must stall for (0 on a TLB hit or under
    /// ideal translation). The `Vm` is taken out of `self` for the
    /// call so a cached walk can route its PTE reads back through this
    /// fabric.
    fn demand_translate(&mut self, c: usize, addr: Addr, now: Cycle) -> Cycle {
        let Some(mut vm) = self.vm.take() else {
            return 0;
        };
        let t = vm.demand_translate_via(c, addr, now, self);
        self.vm = Some(vm);
        // walk_levels is 0 exactly on a TLB hit (either level); a
        // zero-latency flat walk still reads its page-table entries.
        if t.walk_levels > 0 {
            self.walk_traffic(t.walk_levels);
        }
        if t.source() != imp_vm::TranslationSource::DTlbHit {
            self.probe
                .translation(c as u32, addr.raw(), now, t.walk_cycles, t.walk_levels);
        }
        t.walk_cycles
    }

    /// Translates a prefetch address under the configured policy.
    /// Returns the cycle at which the prefetch may issue (delayed past
    /// `now` by a non-blocking walk or an L2-TLB hit), or `None` when
    /// the policy dropped it.
    fn prefetch_translate(&mut self, c: usize, addr: Addr, now: Cycle) -> Option<Cycle> {
        let Some(mut vm) = self.vm.take() else {
            return Some(now);
        };
        let outcome = vm.prefetch_translate_via(c, addr, now, self);
        self.vm = Some(vm);
        match outcome {
            PrefetchTranslation::Ready(_) => Some(now),
            PrefetchTranslation::Walked { cycles, levels, .. } => {
                self.walk_traffic(levels);
                Some(now + cycles)
            }
            PrefetchTranslation::Dropped => None,
        }
    }

    /// Drives the `Vm`'s translation-prefetch port for a value-derived
    /// prefetch target: prefill the shared L2 TLB with the page's
    /// translation so this prefetch (and later ones to the page)
    /// survive `DropOnMiss`. Returns the cycle the translation is
    /// ready, which is when the data prefetch may continue.
    fn translation_prefetch(&mut self, c: usize, addr: Addr, now: Cycle) -> Cycle {
        let Some(mut vm) = self.vm.take() else {
            return now;
        };
        let tp = vm.prefetch_translation(c, addr, now, self);
        self.vm = Some(vm);
        if tp.walk_levels > 0 {
            self.walk_traffic(tp.walk_levels);
        }
        tp.ready
    }

    // ------------------------------------------------------------------
    // L1 / core side
    // ------------------------------------------------------------------

    fn observe_and_prefetch(&mut self, c: usize, access: Access, now: Cycle) {
        let mut reqs = self.take_req_buf();
        {
            let mut src = L1Values {
                l1: &self.l1[c],
                mem: &self.mem,
            };
            let mut ctx = PrefetchCtx::new(
                access.pc,
                AccessClass::Other,
                &mut src,
                &mut reqs,
                &self.cprobes[c],
            );
            self.pref[c].on_access_ctx(access, &mut ctx);
        }
        self.apply_control(&mut reqs);
        for r in reqs.drain(..) {
            self.issue_prefetch(c, r, now, 0);
        }
        self.put_req_buf(reqs);
    }

    fn issue_prefetch(&mut self, c: usize, req: PrefetchRequest, now: Cycle, depth: u32) {
        if self.cfg.mem_mode != MemMode::Realistic || depth > 4 {
            return;
        }
        // Translation-only chain-ahead requests never touch the cache
        // hierarchy: they prefill the shared L2 TLB for the hop one past
        // the data frontier, and vanish when translation prefetching is
        // off.
        if req.kind.is_translation_only() {
            if self.cfg.tlb.tlb_prefetch {
                self.translation_prefetch(c, req.addr, now);
            }
            return;
        }
        // IMP's value-derived addresses land on arbitrary virtual pages:
        // the prefetch only proceeds once translated (the configured
        // TranslationPolicy may drop or delay it here). With translation
        // prefetching on, an indirect prediction first prefills the
        // shared L2 TLB for its target page — the data prefetch then
        // survives DropOnMiss via an L2-TLB hit, as do later prefetches
        // to the same page.
        let now = if self.cfg.tlb.tlb_prefetch && req.wants_translation_prefetch() {
            self.translation_prefetch(c, req.addr, now)
        } else {
            now
        };
        let Some(now) = self.prefetch_translate(c, req.addr, now) else {
            return;
        };
        let line = req.line();
        let sectors = self.full_or(req.sectors).intersect(self.l1[c].full_mask());
        if let Some(l) = self.l1[c].probe(line) {
            if l.valid.contains(sectors) {
                // Already resident: run the fill hook so multi-level
                // chains continue.
                let mut chained = self.take_req_buf();
                {
                    let mut src = L1Values {
                        l1: &self.l1[c],
                        mem: &self.mem,
                    };
                    let mut ctx = PrefetchCtx::new(
                        req.pc,
                        class_of(req.kind),
                        &mut src,
                        &mut chained,
                        &self.cprobes[c],
                    );
                    self.pref[c].on_prefetch_fill_ctx(req, &mut ctx);
                }
                self.apply_control(&mut chained);
                for r in chained.drain(..) {
                    self.issue_prefetch(c, r, now, depth + 1);
                }
                self.put_req_buf(chained);
                return;
            }
        }
        match self.mshr[c].alloc(line, sectors, true, Waiter::Prefetch { req }) {
            MshrAlloc::Full => self.pstats[c].mshr_drops += 1,
            MshrAlloc::Merged => {}
            MshrAlloc::MergedNeedsMore(extra) => {
                let kind = if req.exclusive {
                    MsgKind::GetX
                } else {
                    MsgKind::GetS
                };
                self.send(
                    Msg {
                        kind,
                        line,
                        src: c as u32,
                        dst: self.home_of(line),
                        requester: c as u32,
                        sectors: extra,
                        exclusive: req.exclusive,
                        payload_bytes: 0,
                    },
                    now,
                );
            }
            MshrAlloc::New => {
                let class = match req.kind {
                    PrefetchKind::Sequential => {
                        self.pstats[c].issued_stream += 1;
                        AccessClass::Stream
                    }
                    PrefetchKind::Indirect { .. } => {
                        self.pstats[c].issued_indirect += 1;
                        AccessClass::Indirect
                    }
                    PrefetchKind::TranslationOnly { .. } => {
                        unreachable!("translation-only requests are routed before allocation")
                    }
                };
                let hop = req.kind.hop();
                self.probe
                    .prefetch_issue(c as u32, line, req.pc, class, hop, now);
                if let Some(m) = self.mgr.as_mut() {
                    m.ledger.issue(c as u32, line, req.pc, class, hop, now);
                }
                if sectors != self.l1[c].full_mask() {
                    self.pstats[c].partial_prefetches += 1;
                }
                let kind = if req.exclusive {
                    MsgKind::GetX
                } else {
                    MsgKind::GetS
                };
                self.send(
                    Msg {
                        kind,
                        line,
                        src: c as u32,
                        dst: self.home_of(line),
                        requester: c as u32,
                        sectors,
                        exclusive: req.exclusive,
                        payload_bytes: 0,
                    },
                    now,
                );
            }
        }
    }

    fn demand_miss(
        &mut self,
        c: usize,
        line: LineAddr,
        fetch: SectorMask,
        is_write: bool,
        touch: SectorMask,
        now: Cycle,
    ) -> MemResult {
        let token = self.next_token;
        self.next_token += 1;
        if let Some(m) = self.mgr.as_mut() {
            m.demand_misses += 1;
        }
        // A merge into a pure-prefetch entry is a late prefetch.
        if let Some(e) = self.mshr[c].get(line) {
            if e.prefetch_only {
                self.pstats[c].late += 1;
                self.probe.prefetch_demand_merge(c as u32, line, now);
                if let Some(m) = self.mgr.as_mut() {
                    m.ledger.demand_merge(c as u32, line);
                }
            }
        }
        let waiter = if is_write {
            Waiter::Store { touch }
        } else {
            Waiter::Demand {
                token,
                write: false,
                touch,
            }
        };
        match self.mshr[c].alloc(line, fetch, false, waiter) {
            MshrAlloc::Merged => {}
            MshrAlloc::MergedNeedsMore(extra) => {
                let kind = if is_write {
                    MsgKind::GetX
                } else {
                    MsgKind::GetS
                };
                self.send(
                    Msg {
                        kind,
                        line,
                        src: c as u32,
                        dst: self.home_of(line),
                        requester: c as u32,
                        sectors: extra,
                        exclusive: is_write,
                        payload_bytes: 0,
                    },
                    now,
                );
            }
            MshrAlloc::New | MshrAlloc::Full => {
                // Demand misses are never structurally refused: the MSHR
                // file is sized for prefetches; a demand always proceeds.
                let kind = if is_write {
                    MsgKind::GetX
                } else {
                    MsgKind::GetS
                };
                self.send(
                    Msg {
                        kind,
                        line,
                        src: c as u32,
                        dst: self.home_of(line),
                        requester: c as u32,
                        sectors: fetch,
                        exclusive: is_write,
                        payload_bytes: 0,
                    },
                    now,
                );
            }
        }
        if is_write {
            // Stores retire through the store buffer (1-cycle occupancy);
            // the line is fetched and dirtied in the background.
            MemResult::StoreBuffered(now + self.cfg.mem.l1d.latency)
        } else {
            MemResult::Miss(token)
        }
    }

    /// A demand access against the real L1/coherence path, issued at
    /// `now` (already past any translation stall).
    fn realistic_access(&mut self, c: usize, op: &imp_trace::Op, now: Cycle) -> MemResult {
        let addr = op.mem_addr();
        let line = LineAddr::containing(addr);
        let is_write = op.kind == OpKind::Store;
        let touch = SectorMask::l1_touch(addr, u32::from(op.size));
        let outcome = self.l1[c].demand_access(line, touch, is_write);
        let miss = !matches!(outcome, AccessOutcome::Hit { .. });
        self.observe_and_prefetch(
            c,
            Access {
                pc: op.pc,
                addr,
                size: u32::from(op.size),
                is_write,
                miss,
            },
            now,
        );
        match outcome {
            AccessOutcome::Hit {
                first_touch_of_prefetch,
            } => {
                if first_touch_of_prefetch {
                    self.pstats[c].covered += 1;
                    self.probe.prefetch_first_use(c as u32, line, now);
                    if let Some(m) = self.mgr.as_mut() {
                        m.ledger.first_use(c as u32, line, now);
                    }
                }
                self.pref[c].on_demand_touch(line, touch);
                let needs_upgrade = is_write
                    && self.l1[c]
                        .probe(line)
                        .is_some_and(|l| l.state == LineState::Shared);
                if needs_upgrade {
                    // Upgrade in the background; the store itself
                    // retires through the store buffer.
                    let _ = self.demand_miss(c, line, touch, true, touch, now);
                }
                MemResult::Hit(now + self.cfg.mem.l1d.latency)
            }
            AccessOutcome::SectorMiss { missing, .. } => {
                self.demand_miss(c, line, missing, is_write, touch, now)
            }
            AccessOutcome::Miss => {
                // Demand misses fetch full lines; only IMP's
                // indirect prefetches use partial masks (§4.2).
                self.demand_miss(c, line, SectorMask::FULL_L1, is_write, touch, now)
            }
        }
    }

    fn l1_data(&mut self, msg: Msg, now: Cycle) {
        let c = msg.dst as usize;
        let Some(mut entry) = self.mshr[c].complete(msg.line) else {
            return;
        };
        let state = if msg.exclusive {
            LineState::Modified
        } else {
            LineState::Shared
        };
        let evicted = self.l1[c].fill(msg.line, entry.requested, state, entry.prefetch_only);
        if let Some(ev) = evicted {
            self.l1_evicted(c, ev, now);
        }
        let at = now + self.cfg.mem.l1d.latency;
        let mut chained = self.take_req_buf();
        for w in entry.waiters.drain(..) {
            match w {
                Waiter::Demand {
                    token,
                    write,
                    touch,
                } => {
                    // Mark touch/dirty on the freshly filled line.
                    let _ = self.l1[c].demand_access(msg.line, touch, write);
                    self.pref[c].on_demand_touch(msg.line, touch);
                    self.completions.push((c as u32, token, at));
                }
                Waiter::Store { touch } => {
                    let _ = self.l1[c].demand_access(msg.line, touch, true);
                    self.l1[c].mark_dirty(msg.line, touch);
                    self.pref[c].on_demand_touch(msg.line, touch);
                }
                Waiter::Prefetch { req } => {
                    self.probe.prefetch_fill(c as u32, msg.line, now);
                    if let Some(m) = self.mgr.as_mut() {
                        m.ledger.fill(c as u32, msg.line, now);
                    }
                    let mut src = L1Values {
                        l1: &self.l1[c],
                        mem: &self.mem,
                    };
                    let mut ctx = PrefetchCtx::new(
                        req.pc,
                        class_of(req.kind),
                        &mut src,
                        &mut chained,
                        &self.cprobes[c],
                    );
                    self.pref[c].on_prefetch_fill_ctx(req, &mut ctx);
                }
                Waiter::SwPrefetch => {}
                Waiter::PerfPref { id } => {
                    self.pp_issue.remove(&id);
                    if let Some(pos) = self.pp_outstanding[c].iter().position(|&x| x == id) {
                        self.pp_outstanding[c].remove(pos);
                    }
                    if let Some((bid, token)) = self.pp_blocked[c] {
                        if bid == id {
                            self.pp_blocked[c] = None;
                            self.completions.push((c as u32, token, at));
                        }
                    }
                }
            }
        }
        self.apply_control(&mut chained);
        for r in chained.drain(..) {
            self.issue_prefetch(c, r, now, 1);
        }
        self.put_req_buf(chained);
        self.mshr[c].recycle_waiters(entry.waiters);
    }

    fn l1_evicted(&mut self, c: usize, ev: Evicted, now: Cycle) {
        if ev.prefetched_untouched {
            self.pstats[c].unused += 1;
            self.probe.prefetch_evicted_unused(c as u32, ev.line, now);
            if let Some(m) = self.mgr.as_mut() {
                m.ledger.evicted_unused(c as u32, ev.line);
            }
        } else if ev.prefetched_touched {
            self.pstats[c].useful += 1;
        }
        self.pref[c].on_eviction(ev.line);
        if !ev.dirty.is_empty() {
            let payload = self.l1_mask_bytes(c, ev.dirty);
            self.send(
                Msg {
                    kind: MsgKind::WbL1,
                    line: ev.line,
                    src: c as u32,
                    dst: self.home_of(ev.line),
                    requester: c as u32,
                    sectors: ev.dirty,
                    exclusive: false,
                    payload_bytes: payload,
                },
                now,
            );
        }
    }

    fn l1_inv(&mut self, msg: Msg, now: Cycle) {
        let c = msg.dst as usize;
        if let Some(ev) = self.l1[c].invalidate(msg.line) {
            if ev.prefetched_untouched {
                self.pstats[c].unused += 1;
                self.probe.prefetch_evicted_unused(c as u32, ev.line, now);
                if let Some(m) = self.mgr.as_mut() {
                    m.ledger.evicted_unused(c as u32, ev.line);
                }
            } else if ev.prefetched_touched {
                self.pstats[c].useful += 1;
            }
            self.pref[c].on_eviction(ev.line);
            // Dirty data rides back with the ack conceptually; account
            // its bytes on the ack message.
            let payload = self.l1_mask_bytes(c, ev.dirty);
            self.send(
                Msg {
                    kind: MsgKind::InvAck,
                    line: msg.line,
                    src: c as u32,
                    dst: msg.src,
                    requester: msg.requester,
                    sectors: ev.dirty,
                    exclusive: false,
                    payload_bytes: payload,
                },
                now,
            );
        } else {
            self.send(
                Msg {
                    kind: MsgKind::InvAck,
                    line: msg.line,
                    src: c as u32,
                    dst: msg.src,
                    requester: msg.requester,
                    sectors: SectorMask::EMPTY,
                    exclusive: false,
                    payload_bytes: 0,
                },
                now,
            );
        }
    }

    fn l1_fetch(&mut self, msg: Msg, now: Cycle, invalidate: bool) {
        let c = msg.dst as usize;
        let present = if invalidate {
            let ev = self.l1[c].invalidate(msg.line);
            if let Some(ref e) = ev {
                if e.prefetched_untouched {
                    self.pstats[c].unused += 1;
                    self.probe.prefetch_evicted_unused(c as u32, msg.line, now);
                } else if e.prefetched_touched {
                    self.pstats[c].useful += 1;
                }
                self.pref[c].on_eviction(msg.line);
            }
            ev.is_some()
        } else {
            self.l1[c].downgrade(msg.line);
            self.l1[c].probe(msg.line).is_some()
        };
        let payload = if present { LINE_BYTES } else { 0 };
        self.send(
            Msg {
                kind: MsgKind::FetchResp,
                line: msg.line,
                src: c as u32,
                dst: msg.src,
                requester: msg.requester,
                sectors: SectorMask::FULL_L1,
                exclusive: invalidate,
                payload_bytes: payload,
            },
            now,
        );
    }

    // ------------------------------------------------------------------
    // Home tile (L2 slice + directory)
    // ------------------------------------------------------------------

    fn home_request(&mut self, msg: Msg, now: Cycle) {
        let h = msg.dst as usize;
        if self.txns[h].contains_key(&msg.line) {
            self.queued[h].entry(msg.line).or_default().push_back(msg);
            return;
        }
        self.start_txn(msg, now);
    }

    fn start_txn(&mut self, msg: Msg, now: Cycle) {
        let h = msg.dst as usize;
        let line = msg.line;
        let t = now + self.cfg.mem.l2_slice.latency;
        let mut txn = Txn {
            requester: msg.requester,
            sectors: msg.sectors,
            exclusive: msg.kind == MsgKind::GetX,
            acks_pending: 0,
            data_ready: false,
        };
        let owner = self.dir[h].owner(line).filter(|&o| o != msg.requester);
        if let Some(o) = owner {
            // Data comes from the current owner.
            txn.acks_pending = 1;
            self.send(
                Msg {
                    kind: MsgKind::Fetch {
                        invalidate: txn.exclusive,
                    },
                    line,
                    src: h as u32,
                    dst: o,
                    requester: msg.requester,
                    sectors: SectorMask::FULL_L1,
                    exclusive: txn.exclusive,
                    payload_bytes: 0,
                },
                t,
            );
            self.txns[h].insert(line, txn);
            return;
        }
        if txn.exclusive {
            let targets = self.dir[h].invalidation_targets(line, Some(msg.requester));
            if !matches!(targets, InvTargets::None) {
                let precise = (!targets.is_broadcast()).then(|| targets.count(self.cfg.cores, 1));
                self.probe.dir_invalidate(h as u32, line, precise, t);
            }
            match targets {
                InvTargets::None => {}
                InvTargets::Precise(targets) => {
                    txn.acks_pending = targets.len() as u32;
                    for c in targets {
                        self.send(
                            Msg {
                                kind: MsgKind::Inv,
                                line,
                                src: h as u32,
                                dst: c,
                                requester: msg.requester,
                                sectors: SectorMask::EMPTY,
                                exclusive: false,
                                payload_bytes: 0,
                            },
                            t,
                        );
                    }
                }
                InvTargets::Broadcast => {
                    // ACKwise overflow: invalidate everyone (they all ack).
                    let n = self.cfg.cores;
                    txn.acks_pending = n - 1;
                    for c in (0..n).filter(|&c| c != msg.requester) {
                        self.send(
                            Msg {
                                kind: MsgKind::Inv,
                                line,
                                src: h as u32,
                                dst: c,
                                requester: msg.requester,
                                sectors: SectorMask::EMPTY,
                                exclusive: false,
                                payload_bytes: 0,
                            },
                            t,
                        );
                    }
                }
            }
        }
        self.data_lookup(h, line, &mut txn, t);
        self.txns[h].insert(line, txn);
        self.try_complete(h as u32, line, t);
    }

    fn data_lookup(&mut self, h: usize, line: LineAddr, txn: &mut Txn, t: Cycle) {
        let l2_need = txn.sectors.widen_to_l2();
        match self.l2[h].demand_access(line, l2_need, false) {
            AccessOutcome::Hit { .. } => {
                txn.data_ready = true;
            }
            AccessOutcome::SectorMiss { missing, .. } => {
                self.dram_fetch(h, line, missing, t);
            }
            AccessOutcome::Miss => {
                let mask = if self.cfg.partial == PartialMode::NocAndDram {
                    l2_need
                } else {
                    SectorMask::FULL_L2
                };
                self.dram_fetch(h, line, mask, t);
            }
        }
    }

    fn dram_fetch(&mut self, h: usize, line: LineAddr, l2_mask: SectorMask, t: Cycle) {
        let l2_mask = if self.cfg.partial == PartialMode::NocAndDram {
            l2_mask
        } else {
            SectorMask::FULL_L2
        };
        let mc = mc_for_line(line.number(), self.cfg.mem.mem_controllers);
        self.send(
            Msg {
                kind: MsgKind::MemRead,
                line,
                src: h as u32,
                dst: self.mc_tiles[mc as usize],
                requester: h as u32,
                sectors: l2_mask,
                exclusive: false,
                payload_bytes: 0,
            },
            t,
        );
    }

    fn mc_read(&mut self, msg: Msg, now: Cycle) {
        let mc = self
            .mc_tiles
            .iter()
            .position(|&t| t == msg.dst)
            .expect("MemRead delivered to a non-MC tile");
        let bytes = u64::from(msg.sectors.count()) * 32;
        let done = self.drams[mc].access(now, msg.line.base().raw(), bytes, false);
        self.traffic.dram_read_bytes += bytes;
        self.traffic.dram_accesses += 1;
        self.send(
            Msg {
                kind: MsgKind::MemReadResp,
                line: msg.line,
                src: msg.dst,
                dst: msg.requester, // the home tile
                requester: msg.requester,
                sectors: msg.sectors,
                exclusive: false,
                payload_bytes: bytes,
            },
            done,
        );
    }

    fn mc_write(&mut self, msg: Msg, now: Cycle) {
        let mc = self
            .mc_tiles
            .iter()
            .position(|&t| t == msg.dst)
            .expect("MemWrite delivered to a non-MC tile");
        let bytes = msg.payload_bytes.max(32);
        let _ = self.drams[mc].access(now, msg.line.base().raw(), bytes, true);
        self.traffic.dram_write_bytes += bytes;
        self.traffic.dram_accesses += 1;
    }

    fn home_memdata(&mut self, msg: Msg, now: Cycle) {
        let h = msg.dst as usize;
        let evicted = self.l2[h].fill(msg.line, msg.sectors, LineState::Shared, false);
        if let Some(ev) = evicted {
            self.l2_evicted(h, ev, now);
        }
        if let Some(txn) = self.txns[h].get_mut(&msg.line) {
            txn.data_ready = true;
        }
        self.try_complete(h as u32, msg.line, now);
    }

    fn l2_evicted(&mut self, h: usize, ev: Evicted, now: Cycle) {
        // Recall any L1 copies (fire-and-forget; acks are ignored for
        // lines without transactions).
        let targets = self.dir[h].invalidation_targets(ev.line, None);
        if !matches!(targets, InvTargets::None) {
            let precise = (!targets.is_broadcast()).then(|| targets.count(self.cfg.cores, 0));
            self.probe.dir_invalidate(h as u32, ev.line, precise, now);
        }
        match targets {
            InvTargets::None => {}
            InvTargets::Precise(targets) => {
                for c in targets {
                    self.send(
                        Msg {
                            kind: MsgKind::Inv,
                            line: ev.line,
                            src: h as u32,
                            dst: c,
                            requester: h as u32,
                            sectors: SectorMask::EMPTY,
                            exclusive: false,
                            payload_bytes: 0,
                        },
                        now,
                    );
                }
            }
            InvTargets::Broadcast => {
                for c in 0..self.cfg.cores {
                    self.send(
                        Msg {
                            kind: MsgKind::Inv,
                            line: ev.line,
                            src: h as u32,
                            dst: c,
                            requester: h as u32,
                            sectors: SectorMask::EMPTY,
                            exclusive: false,
                            payload_bytes: 0,
                        },
                        now,
                    );
                }
            }
        }
        self.dir[h].clear(ev.line);
        if !ev.dirty.is_empty() || ev.state == LineState::Modified {
            let bytes = if ev.dirty.is_empty() {
                LINE_BYTES
            } else {
                self.l2_mask_bytes(h, ev.dirty)
            };
            let mc = mc_for_line(ev.line.number(), self.cfg.mem.mem_controllers);
            self.send(
                Msg {
                    kind: MsgKind::MemWrite,
                    line: ev.line,
                    src: h as u32,
                    dst: self.mc_tiles[mc as usize],
                    requester: h as u32,
                    sectors: ev.dirty,
                    exclusive: false,
                    payload_bytes: bytes,
                },
                now,
            );
        }
    }

    fn home_fetchresp(&mut self, msg: Msg, now: Cycle) {
        let h = msg.dst as usize;
        let owner = msg.src;
        if msg.payload_bytes > 0 {
            let evicted = self.l2[h].fill(msg.line, SectorMask::FULL_L2, LineState::Shared, false);
            if let Some(ev) = evicted {
                self.l2_evicted(h, ev, now);
            }
            self.l2[h].mark_dirty(msg.line, SectorMask::FULL_L2);
        }
        if msg.exclusive {
            // Owner invalidated (write request).
            self.dir[h].remove(msg.line, owner);
        } else {
            // Owner downgraded to Shared: Modified(o) -> Shared{o}.
            self.dir[h].add_sharer(msg.line, owner);
        }
        if let Some(txn) = self.txns[h].get_mut(&msg.line) {
            txn.acks_pending = txn.acks_pending.saturating_sub(1);
            txn.data_ready = true;
        }
        self.try_complete(h as u32, msg.line, now);
    }

    fn home_invack(&mut self, msg: Msg, now: Cycle) {
        let h = msg.dst as usize;
        self.dir[h].remove(msg.line, msg.src);
        if let Some(txn) = self.txns[h].get_mut(&msg.line) {
            txn.acks_pending = txn.acks_pending.saturating_sub(1);
        }
        self.try_complete(h as u32, msg.line, now);
    }

    fn home_wb(&mut self, msg: Msg, now: Cycle) {
        let h = msg.dst as usize;
        let l2_mask = msg.sectors.widen_to_l2();
        let evicted = self.l2[h].fill(msg.line, l2_mask, LineState::Shared, false);
        if let Some(ev) = evicted {
            self.l2_evicted(h, ev, now);
        }
        self.l2[h].mark_dirty(msg.line, l2_mask);
        self.dir[h].remove(msg.line, msg.src);
    }

    fn try_complete(&mut self, home: u32, line: LineAddr, at: Cycle) {
        let h = home as usize;
        let ready = match self.txns[h].get(&line) {
            Some(t) => t.acks_pending == 0 && t.data_ready,
            None => false,
        };
        if !ready {
            return;
        }
        let txn = self.txns[h].remove(&line).expect("txn present");
        if txn.exclusive {
            self.dir[h].set_modified(line, txn.requester);
        } else {
            self.dir[h].add_sharer(line, txn.requester);
        }
        let payload = self.l1_mask_bytes(txn.requester as usize, txn.sectors);
        self.send(
            Msg {
                kind: MsgKind::Data,
                line,
                src: home,
                dst: txn.requester,
                requester: txn.requester,
                sectors: txn.sectors,
                exclusive: txn.exclusive,
                payload_bytes: payload,
            },
            at,
        );
        // Serve the next queued request for this line.
        let next = self.queued[h].get_mut(&line).and_then(VecDeque::pop_front);
        if let Some(next) = next {
            self.start_txn(next, at);
        }
    }

    fn handle_msg(&mut self, msg: Msg, now: Cycle) {
        self.traffic.noc_messages += 1;
        // Home-tile-bound protocol traffic lands on the destination's
        // L2-slice trace track (core- and MC-bound kinds would need
        // other tracks and dominate trace volume, so only the
        // directory-serialized kinds are recorded).
        if matches!(
            msg.kind,
            MsgKind::GetS | MsgKind::GetX | MsgKind::InvAck | MsgKind::FetchResp | MsgKind::WbL1
        ) {
            self.probe.coh_msg(msg.dst, msg.kind.code(), msg.line, now);
        }
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX => self.home_request(msg, now),
            MsgKind::Data => self.l1_data(msg, now),
            MsgKind::Inv => self.l1_inv(msg, now),
            MsgKind::InvAck => self.home_invack(msg, now),
            MsgKind::Fetch { invalidate } => self.l1_fetch(msg, now, invalidate),
            MsgKind::FetchResp => self.home_fetchresp(msg, now),
            MsgKind::WbL1 => self.home_wb(msg, now),
            MsgKind::MemRead => self.mc_read(msg, now),
            MsgKind::MemReadResp => self.home_memdata(msg, now),
            MsgKind::MemWrite => self.mc_write(msg, now),
        }
    }
}

/// Page walks as first-class memory traffic (`WalkModel::Cached`): each
/// page-table-entry read crosses the NoC to the PTE line's home L2
/// slice, hits there when the page-table working set is warm, and
/// otherwise fetches the line from DRAM — filling the L2 (evicting
/// whatever loses the set), occupying NoC links and DRAM bandwidth, and
/// showing up in the traffic statistics. Walks therefore contend with
/// demand traffic instead of charging a flat latency.
///
/// The reads use the timing substrate (mesh links, L2 arrays, DRAM
/// models) directly rather than the directory protocol: PTE lines live
/// in their own address region, are never written, and are never cached
/// in L1s, so there is no coherence state to track — but an L2 fill's
/// *evictions* go through the ordinary [`Fabric::l2_evicted`] path and
/// can recall demand lines from L1s.
impl WalkMemory for Fabric {
    fn pte_read(&mut self, core: usize, pte: Addr, now: Cycle) -> Cycle {
        let line = LineAddr::containing(pte);
        let home = self.home_of(line);
        let h = home as usize;
        self.traffic.noc_messages += 1;
        let (at_home, _) = self.mesh.send(core as u32, home, 0, now);
        let probed = at_home + self.cfg.mem.l2_slice.latency;
        let ready = match self.l2[h].demand_access(line, SectorMask::FULL_L2, false) {
            AccessOutcome::Hit { .. } => probed,
            AccessOutcome::SectorMiss { .. } | AccessOutcome::Miss => {
                let mc = mc_for_line(line.number(), self.cfg.mem.mem_controllers) as usize;
                let mc_tile = self.mc_tiles[mc];
                self.traffic.noc_messages += 1;
                let (at_mc, _) = self.mesh.send(home, mc_tile, 0, probed);
                let fetched = self.drams[mc].access(at_mc, line.base().raw(), LINE_BYTES, false);
                self.traffic.dram_read_bytes += LINE_BYTES;
                self.traffic.dram_accesses += 1;
                self.traffic.noc_messages += 1;
                let (back, _) = self.mesh.send(mc_tile, home, LINE_BYTES, fetched);
                if let Some(ev) =
                    self.l2[h].fill(line, SectorMask::FULL_L2, LineState::Shared, false)
                {
                    self.l2_evicted(h, ev, back);
                }
                back
            }
        };
        self.traffic.noc_messages += 1;
        let (done, _) = self.mesh.send(home, core as u32, PTE_BYTES, ready);
        done
    }
}

impl MemPort for Fabric {
    fn access(&mut self, core: u32, op: &imp_trace::Op, now: Cycle) -> MemResult {
        let c = core as usize;
        let addr = op.mem_addr();
        let line = LineAddr::containing(addr);
        let is_write = op.kind == OpKind::Store;
        match self.cfg.mem_mode {
            MemMode::Ideal => MemResult::Hit(now + self.cfg.mem.l1d.latency),
            MemMode::PerfectPrefetch => {
                let hit = matches!(
                    self.shadow[c].demand_access(line, SectorMask::FULL_L1, is_write),
                    AccessOutcome::Hit { .. }
                );
                if !hit {
                    self.shadow[c].fill(line, SectorMask::FULL_L1, LineState::Shared, false);
                    let id = self.pp_next_id;
                    self.pp_next_id += 1;
                    self.pp_outstanding[c].push_back(id);
                    self.pp_issue.insert(id, now);
                    if let MshrAlloc::New =
                        self.mshr[c].alloc(line, SectorMask::FULL_L1, true, Waiter::PerfPref { id })
                    {
                        self.send(
                            Msg {
                                kind: MsgKind::GetS,
                                line,
                                src: core,
                                dst: self.home_of(line),
                                requester: core,
                                sectors: SectorMask::FULL_L1,
                                exclusive: false,
                                payload_bytes: 0,
                            },
                            now,
                        );
                    }
                }
                // Throttle: never run more than `lead` cycles past the
                // oldest incomplete fetch.
                if let Some(&front) = self.pp_outstanding[c].front() {
                    let issued = self.pp_issue.get(&front).copied().unwrap_or(now);
                    if now.saturating_sub(issued) > self.cfg.perfpref_lead {
                        let token = self.next_token;
                        self.next_token += 1;
                        self.pp_blocked[c] = Some((front, token));
                        return MemResult::Miss(token);
                    }
                }
                MemResult::Hit(now + self.cfg.mem.l1d.latency)
            }
            MemMode::Realistic => {
                // Demand accesses stall for the page-table walk before
                // touching the cache; everything downstream runs at the
                // post-walk cycle, so the walk delays fills and
                // prefetcher observations alike. With the default ideal
                // TLB the walk is 0 and this path is byte-for-byte the
                // pre-imp-vm behavior.
                let walk = self.demand_translate(c, addr, now);
                self.realistic_access(c, op, now + walk).with_walk(walk)
            }
        }
    }

    fn sw_prefetch(&mut self, core: u32, addr: Addr, now: Cycle) {
        if self.cfg.mem_mode != MemMode::Realistic {
            return;
        }
        let c = core as usize;
        // Software prefetches are non-binding: like hardware prefetches
        // they observe the translation policy instead of stalling.
        let Some(now) = self.prefetch_translate(c, addr, now) else {
            return;
        };
        let line = LineAddr::containing(addr);
        if self.l1[c].probe(line).is_some() {
            return;
        }
        if let MshrAlloc::New =
            self.mshr[c].alloc(line, SectorMask::FULL_L1, true, Waiter::SwPrefetch)
        {
            self.pstats[c].issued_stream += 1;
            self.send(
                Msg {
                    kind: MsgKind::GetS,
                    line,
                    src: core,
                    dst: self.home_of(line),
                    requester: core,
                    sectors: SectorMask::FULL_L1,
                    exclusive: false,
                    payload_bytes: 0,
                },
                now,
            );
        }
    }
}

/// The assembled system: call [`System::new`] with a configuration, a
/// program and the functional memory holding its arrays, then
/// [`System::run`].
pub struct System {
    cores: Vec<Box<dyn CoreEngine>>,
    state: Vec<CoreRun>,
    /// Cores parked at the current barrier, with their arrival cycles
    /// (the cycle is observability-only; release timing never reads it).
    barrier_waiting: Vec<(u32, Cycle)>,
    done_count: usize,
    event_budget: u64,
    events: u64,
    fab: Fabric,
}

impl System {
    /// Builds a system for `program` under `cfg`, resolving the
    /// configured prefetcher against the process-wide plugin registry
    /// (see `imp_prefetch::registry`).
    ///
    /// # Panics
    ///
    /// Panics on any condition [`System::try_new`] reports as a
    /// [`BuildError`]: an unresolvable prefetcher spec, a program whose
    /// core count does not match the configuration, or inconsistent
    /// barrier counts.
    pub fn new(cfg: SystemConfig, program: Program, mem: FunctionalMemory) -> Self {
        Self::try_new(cfg, program, mem).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a system for `program` under `cfg`, surfacing every
    /// invalid-input condition — prefetcher registry failures (unknown
    /// name, bad parameters), a core-count mismatch between program and
    /// configuration, and unbalanced barriers — as a typed
    /// [`BuildError`].
    ///
    /// The program's streams are frozen and shared into the per-core
    /// engines (`Arc` clones, no per-core copies), so constructing many
    /// systems over one generated program is cheap.
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn try_new(
        cfg: SystemConfig,
        program: Program,
        mem: FunctionalMemory,
    ) -> Result<Self, BuildError> {
        Self::try_new_placed(cfg, program, mem, &[])
    }

    /// [`System::try_new`] with a huge-page placement: addresses inside
    /// the given `(base, bytes)` extents translate at
    /// [`imp_common::TlbConfig::huge_page_bytes`] (through the per-core
    /// huge-page sub-TLBs and shallower page-table walks); everything
    /// else stays on base pages. Extents are aligned outward to whole
    /// huge pages and merged, exactly like transparent huge pages
    /// promote the pages a region overlaps. An empty slice — or an
    /// ideal/absent TLB — reproduces [`System::try_new`] bit for bit.
    ///
    /// The extents normally come from a workload's recorded
    /// region/placement layer with `Sim::page_policy` overrides
    /// applied; this is the lower-level entry point taking resolved
    /// address ranges.
    ///
    /// # Errors
    ///
    /// See [`BuildError`]; a placement with no huge-page sub-TLB or a
    /// base page size too large to promote surfaces as
    /// [`BuildError::Vm`].
    pub fn try_new_placed(
        cfg: SystemConfig,
        mut program: Program,
        mem: FunctionalMemory,
        huge_regions: &[(u64, u64)],
    ) -> Result<Self, BuildError> {
        if program.cores() != cfg.cores as usize {
            return Err(BuildError::CoreCountMismatch {
                program: program.cores(),
                config: cfg.cores,
            });
        }
        program.validate_barriers()?;
        program.freeze();
        let n = cfg.cores as usize;
        let partial = cfg.partial != PartialMode::Off;
        let l1_sectors = if partial { cfg.mem.l1d.sectors } else { 1 };
        let l2_sectors = if partial { cfg.mem.l2_slice.sectors } else { 1 };

        let cores: Vec<Box<dyn CoreEngine>> = (0..n)
            .map(|c| -> Box<dyn CoreEngine> {
                let lanes = program.lanes(c); // shared, not copied
                match cfg.core_model {
                    CoreModel::InOrder => Box::new(InOrderCore::from_lanes(c as u32, lanes)),
                    CoreModel::OutOfOrder => Box::new(OooCore::from_lanes(
                        c as u32,
                        lanes,
                        cfg.rob_entries as usize,
                    )),
                }
            })
            .collect();

        let pref: Vec<Box<dyn L1Prefetcher>> = (0..n)
            .map(|c| -> Result<Box<dyn L1Prefetcher>, RegistryError> {
                if cfg.mem_mode != MemMode::Realistic {
                    return Ok(Box::new(NullPrefetcher::new()));
                }
                let ctx = BuildCtx {
                    core: c as u32,
                    imp: &cfg.imp,
                    partial,
                };
                registry::build(&cfg.prefetcher, &ctx)
            })
            .collect::<Result<_, _>>()?;

        let mshr_cap = match cfg.mem_mode {
            MemMode::PerfectPrefetch => 1 << 16,
            _ => cfg.mem.l1d.mshrs as usize,
        };

        // The VM subsystem only exists for finite TLBs in Realistic
        // mode; `None` keeps every path bit-identical to the seed.
        let vm = if cfg.mem_mode == MemMode::Realistic && !cfg.tlb.ideal {
            // Validate the base geometry before deriving the huge page
            // size from it (a bad `page_bytes` must surface as a typed
            // error, not a panic inside the placement build).
            imp_vm::validate_config(&cfg.tlb)?;
            let placement = if huge_regions.is_empty() {
                PagePlacement::empty()
            } else {
                PagePlacement::for_regions(huge_regions.iter().copied(), cfg.tlb.huge_page_bytes())
            };
            Some(Vm::with_placement(&cfg.tlb, n, placement)?)
        } else {
            imp_vm::validate_config(&cfg.tlb)?;
            None
        };

        // The manager only runs in Realistic mode (there is nothing to
        // manage elsewhere), but a configured spec is validated in
        // every mode so a typo surfaces regardless of the sweep axis.
        let mgr = match &cfg.manager {
            None => None,
            Some(spec) => {
                let m = Manager::build(spec)?;
                if cfg.mem_mode == MemMode::Realistic {
                    Some(ManagerState {
                        next_epoch: m.epoch_len(),
                        mgr: m,
                        ledger: Ledger::default(),
                        tracker: EpochTracker::new(),
                        control: Control::none(),
                        demand_misses: 0,
                        active: cfg.prefetcher.clone(),
                    })
                } else {
                    None
                }
            }
        };

        let drams: Vec<Box<dyn DramModel>> = (0..cfg.mem.mem_controllers)
            .map(|_| -> Box<dyn DramModel> {
                match cfg.mem.dram {
                    DramModelKind::Simple => Box::new(FixedLatencyDram::new(
                        cfg.mem.dram_latency,
                        cfg.mem.dram_bytes_per_cycle,
                    )),
                    DramModelKind::Ddr3 => Box::new(Ddr3Dram::new(Ddr3Timing::default())),
                }
            })
            .collect();

        let side = cfg.mesh_side();
        let fab = Fabric {
            queue: EventQueue::new(),
            l1: (0..n)
                .map(|_| {
                    SectoredCache::new(
                        cfg.mem.l1d.size_bytes,
                        cfg.mem.l1d.associativity,
                        l1_sectors,
                    )
                })
                .collect(),
            mshr: (0..n).map(|_| MshrFile::new(mshr_cap)).collect(),
            pref,
            pstats: vec![PrefetchStats::default(); n],
            l2: (0..n)
                .map(|_| {
                    SectoredCache::new(
                        cfg.mem.l2_slice.size_bytes,
                        cfg.mem.l2_slice.associativity,
                        l2_sectors,
                    )
                })
                .collect(),
            dir: (0..n)
                .map(|_| Directory::new(cfg.mem.ackwise_k as usize, cfg.cores))
                .collect(),
            txns: (0..n).map(|_| FastMap::default()).collect(),
            queued: (0..n).map(|_| FastMap::default()).collect(),
            mesh: Mesh::new(side, cfg.mem.hop_latency, cfg.mem.flit_bytes),
            drams,
            mc_tiles: mc_tiles(side, cfg.mem.mem_controllers),
            mem,
            traffic: TrafficStats::default(),
            completions: Vec::new(),
            probe: Probe::disabled(),
            cprobes: vec![CoreProbe::disabled(); n],
            mgr,
            carried_pref: vec![PrefetcherStats::default(); n],
            req_bufs: Vec::new(),
            next_token: 0,
            shadow: (0..n)
                .map(|_| SectoredCache::new(cfg.mem.l1d.size_bytes, cfg.mem.l1d.associativity, 1))
                .collect(),
            pp_outstanding: (0..n).map(|_| VecDeque::new()).collect(),
            pp_issue: FastMap::default(),
            pp_blocked: vec![None; n],
            pp_next_id: 0,
            vm,
            cfg,
        };
        Ok(System {
            cores,
            state: vec![CoreRun::Ready; n],
            barrier_waiting: Vec::new(),
            done_count: 0,
            event_budget: DEFAULT_EVENT_BUDGET,
            events: 0,
            fab,
        })
    }

    /// Attaches an observability probe: the fabric records prefetch
    /// timeliness, translation, coherence, and barrier events through
    /// it, and each core engine receives a [`imp_obs::CoreProbe`] for
    /// its demand-miss completions. The caller keeps a clone of the
    /// probe and harvests results with
    /// [`imp_obs::Probe::finish_into_report`] after the run.
    ///
    /// Probes observe only: attaching one (enabled or not) never
    /// changes timing, statistics, or which lines move.
    pub fn attach_probe(&mut self, probe: Probe) {
        for (c, core) in self.cores.iter_mut().enumerate() {
            core.attach_probe(probe.for_core(c as u32));
        }
        self.fab.cprobes = (0..self.cores.len())
            .map(|c| probe.for_core(c as u32))
            .collect();
        self.fab.probe = probe;
    }

    /// Caps the number of events [`System::try_run`] will process before
    /// giving up with [`RunError::EventBudgetExceeded`]. Defaults to
    /// [`DEFAULT_EVENT_BUDGET`]. A timing knob only — it never changes
    /// the statistics of a run that finishes within budget.
    pub fn set_event_budget(&mut self, events: u64) {
        self.event_budget = events;
    }

    /// Runs the program to completion and returns the collected
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`System::try_run`] reports as a
    /// [`RunError`]: a deadlocked program or an exhausted event budget.
    pub fn run(&mut self) -> SystemStats {
        match self.try_run() {
            Ok(stats) => stats,
            Err(RunError::EventBudgetExceeded { .. }) => {
                panic!("simulation exceeded event budget")
            }
            Err(RunError::Deadlock { unfinished, cores }) => panic!(
                "event queue drained with {unfinished} of {cores} cores unfinished (deadlock)"
            ),
        }
    }

    /// Runs the program to completion and returns the collected
    /// statistics, reporting runaway or deadlocked programs as typed
    /// errors instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RunError::EventBudgetExceeded`] (with the partial statistics
    /// attached) when the configured event budget runs out;
    /// [`RunError::Deadlock`] when the event queue drains with
    /// unfinished cores.
    pub fn try_run(&mut self) -> Result<SystemStats, RunError> {
        let n = self.cores.len();
        for c in 0..n {
            self.fab.queue.push(0, Event::CoreWake(c as u32));
        }
        let mut guard: u64 = 0;
        while self.done_count < n {
            let Some((t, ev)) = self.fab.queue.pop() else {
                self.events = guard;
                return Err(RunError::Deadlock {
                    unfinished: n - self.done_count,
                    cores: n,
                });
            };
            guard += 1;
            if guard >= self.event_budget {
                self.events = guard;
                return Err(RunError::EventBudgetExceeded {
                    events: guard,
                    stats: Box::new(self.collect_stats()),
                });
            }
            // Epoch boundaries close against the event clock, before
            // the event dispatches: every epoch sees exactly the state
            // changes of events strictly before its end cycle.
            if self.fab.mgr.is_some() {
                self.fab.manager_tick(t);
            }
            match ev {
                // Stall fast-forward: wakes scheduled for a core that has
                // since blocked (on memory, a barrier, or retirement) are
                // stale — skip them without dispatching into the core,
                // jumping the clock straight to the next live event.
                Event::CoreWake(c) if self.state[c as usize] != CoreRun::Ready => {}
                Event::CoreWake(c) => self.drive_core(c, t),
                Event::Deliver(m) => {
                    self.fab.handle_msg(m, t);
                    self.drain_completions();
                }
            }
        }
        self.events = guard;
        // Drain in-flight protocol traffic so traffic statistics include
        // transactions that were still moving when the last core retired.
        while let Some((t, ev)) = self.fab.queue.pop() {
            if let Event::Deliver(m) = ev {
                self.fab.handle_msg(m, t);
                self.fab.completions.clear();
            }
        }
        Ok(self.collect_stats())
    }

    /// Events processed by the most recent [`System::try_run`] /
    /// [`System::run`] — a cost diagnostic (each event is one pop of the
    /// global queue), not part of the simulated statistics.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    fn drive_core(&mut self, c: u32, now: Cycle) {
        let ci = c as usize;
        if self.state[ci] != CoreRun::Ready {
            return;
        }
        match self.cores[ci].run(now, &mut self.fab) {
            CoreBlock::UntilTime(t) => {
                self.fab.queue.push(t.max(now + 1), Event::CoreWake(c));
            }
            CoreBlock::OnMemory => {
                self.state[ci] = CoreRun::WaitMem;
            }
            CoreBlock::AtBarrier => {
                self.state[ci] = CoreRun::WaitBarrier;
                self.barrier_waiting.push((c, now));
                if self.barrier_waiting.len() == self.cores.len() {
                    for (w, arrived) in std::mem::take(&mut self.barrier_waiting) {
                        self.state[w as usize] = CoreRun::Ready;
                        self.fab.probe.barrier_wait(w, arrived, now + 1);
                        self.fab.queue.push(now + 1, Event::CoreWake(w));
                    }
                }
            }
            CoreBlock::Done => {
                self.state[ci] = CoreRun::Done;
                self.cores[ci].finish(now);
                self.done_count += 1;
            }
        }
        self.drain_completions();
    }

    fn drain_completions(&mut self) {
        while let Some((c, token, at)) = self.fab.completions.pop() {
            let ci = c as usize;
            self.cores[ci].mem_complete(token, at);
            if self.state[ci] == CoreRun::WaitMem {
                self.state[ci] = CoreRun::Ready;
            }
            self.fab.queue.push(at, Event::CoreWake(c));
        }
    }

    fn collect_stats(&mut self) -> SystemStats {
        // Final sweep: resident prefetched lines count toward accuracy.
        for (c, l1) in self.fab.l1.iter().enumerate() {
            for line in l1.iter_lines() {
                if line.prefetched && line.touched {
                    self.fab.pstats[c].useful += 1;
                } else if line.prefetched && !line.touched {
                    self.fab.pstats[c].unused += 1;
                }
            }
        }
        // Merge detection counters from the prefetcher models, plus
        // anything carried over from models replaced by a manager
        // switch (zero in unmanaged runs). Assignment, not +=, keeps
        // this idempotent across repeated collections.
        for (c, p) in self.fab.pref.iter().enumerate() {
            let s = p.stats();
            let k = &self.fab.carried_pref[c];
            let out = &mut self.fab.pstats[c];
            out.patterns_detected = k.patterns_detected + s.patterns_detected;
            out.detect_failures = k.detect_failures + s.detect_failures;
            out.value_unavailable = k.value_unavailable + s.value_unavailable;
            out.generated_indirect = k.indirect_prefetches + s.indirect_prefetches;
            out.deferred_drops = k.deferred_drops + s.deferred_drops;
            out.deferred_retries = k.deferred_retries + s.deferred_retries;
        }
        let cores: Vec<CoreStats> = self.cores.iter().map(|c| c.stats().clone()).collect();
        let runtime = cores.iter().map(|c| c.done_cycle).max().unwrap_or(0);
        let mut traffic = self.fab.traffic.clone();
        traffic.noc_flit_hops = self.fab.mesh.flit_hops();
        let n = cores.len();
        let (tlb, tlb_huge, tlb_l2) = match &self.fab.vm {
            Some(vm) => (
                (0..n).map(|c| vm.stats(c).clone()).collect(),
                (0..n)
                    .map(|c| vm.huge_stats(c).cloned().unwrap_or_default())
                    .collect(),
                vm.l2_stats().cloned().unwrap_or_default(),
            ),
            None => (
                vec![TlbStats::default(); n],
                vec![TlbStats::default(); n],
                TlbStats::default(),
            ),
        };
        SystemStats {
            runtime,
            cores,
            prefetch: self.fab.pstats.clone(),
            tlb,
            tlb_huge,
            tlb_l2,
            traffic,
        }
    }
}
