//! Full-system simulator for the IMP reproduction.
//!
//! Models the paper's Table 1 system: N in-order (or modest OoO) cores on
//! a sqrt(N) x sqrt(N) mesh, private L1D caches with attached prefetchers,
//! a distributed shared L2 with an ACKwise-4 directory, sqrt(N) memory
//! controllers in a diamond placement, and a fixed-latency or DDR3-like
//! DRAM model. Supports the paper's execution modes: *Baseline* (stream
//! prefetcher), *IMP* (with optional partial cacheline accessing), *GHB*,
//! *Software Prefetching* (prefetch ops in the instruction stream),
//! *Perfect Prefetching* and *Ideal*.
//!
//! # Example
//!
//! ```
//! use imp_common::{SystemConfig, config::MemMode};
//! use imp_mem::FunctionalMemory;
//! use imp_sim::System;
//! use imp_trace::{Op, Program};
//!
//! let mut cfg = SystemConfig::paper_default(16);
//! cfg.mem_mode = MemMode::Ideal;
//! let mut p = Program::new("noop", 16);
//! for c in 0..16 {
//!     p.core_mut(c).push(Op::compute(100));
//! }
//! let stats = System::new(cfg, p, FunctionalMemory::new()).run();
//! assert!(stats.runtime >= 100);
//! assert_eq!(stats.total_instructions(), 1600);
//! ```

mod msg;
mod system;

pub use imp_prefetch::registry::RegistryError;
pub use imp_vm::{validate_config as validate_tlb_config, PagePlacement, VmConfigError};
pub use system::{BuildError, RunError, System, DEFAULT_EVENT_BUDGET};

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::config::{MemMode, PartialMode, PrefetcherKind};
    use imp_common::stats::AccessClass;
    use imp_common::{Pc, SystemConfig};
    use imp_mem::{AddressSpace, FunctionalMemory};
    use imp_trace::{Op, Program};

    /// Builds a 16-core program where every core streams over a private
    /// index array and performs `A[B[i]]` indirect loads.
    fn indirect_program(
        cores: usize,
        n: u64,
        sw_prefetch: bool,
    ) -> (Program, FunctionalMemory, u64) {
        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let mut p = Program::new("synthetic-indirect", cores);
        // One shared data array, per-core index arrays.
        let a = space.alloc_array::<f64>("A", 1 << 18);
        for c in 0..cores {
            let b = space.alloc_array::<u32>("B", n);
            for i in 0..n {
                let v = ((i * 2654435761 + c as u64 * 97) >> 6) % (1 << 18);
                b.write(&mut mem, i, v as u32);
            }
            let ops = p.core_mut(c);
            for i in 0..n {
                if sw_prefetch && i + 16 < n {
                    ops.push(Op::load(
                        b.addr_of(i + 16),
                        4,
                        Pc::new(3),
                        AccessClass::Stream,
                    ));
                    ops.push(Op::compute(2));
                    let v = {
                        let idx = ((i + 16) * 2654435761 + c as u64 * 97) >> 6;
                        idx % (1 << 18)
                    };
                    ops.push(Op::sw_prefetch(a.addr_of(v), Pc::new(4)));
                }
                ops.push(Op::load(b.addr_of(i), 4, Pc::new(1), AccessClass::Stream));
                let v = ((i * 2654435761 + c as u64 * 97) >> 6) % (1 << 18);
                ops.push(Op::load(a.addr_of(v), 8, Pc::new(2), AccessClass::Indirect).with_dep(1));
                ops.push(Op::compute(2));
            }
        }
        (p, mem, n)
    }

    fn run(cfg: SystemConfig, p: Program, mem: FunctionalMemory) -> imp_common::SystemStats {
        System::new(cfg, p, mem).run()
    }

    #[test]
    fn ideal_mode_is_pure_compute() {
        let (p, mem, n) = indirect_program(16, 200, false);
        let total = p.total_instructions();
        let cfg = SystemConfig::paper_default(16).with_mem_mode(MemMode::Ideal);
        let s = run(cfg, p, mem);
        assert_eq!(s.total_instructions(), total);
        // 4 instructions per iteration, all 1-cycle: runtime ~ 4n.
        assert!(
            s.runtime >= 4 * n && s.runtime < 6 * n,
            "runtime {}",
            s.runtime
        );
        assert_eq!(s.traffic.dram_bytes(), 0);
        assert_eq!(s.traffic.noc_flit_hops, 0);
    }

    #[test]
    fn baseline_stalls_on_indirect_misses() {
        let (p, mem, _) = indirect_program(16, 400, false);
        let cfg = SystemConfig::paper_default(16); // Baseline: stream pf
        let s = run(cfg, p, mem);
        let m = s.misses_by_class();
        assert!(
            m[AccessClass::Indirect.index()] > m[AccessClass::Stream.index()],
            "indirect misses dominate: {m:?}"
        );
        // Indirect stalls dominate total stall time (Figure 2's shape).
        let stalls: u64 = s.cores.iter().map(|c| c.stall_cycles[0]).sum();
        let other: u64 = s
            .cores
            .iter()
            .map(|c| c.stall_cycles[1] + c.stall_cycles[2])
            .sum();
        assert!(stalls > other, "indirect {stalls} vs rest {other}");
        assert!(s.traffic.dram_bytes() > 0);
    }

    #[test]
    fn imp_beats_baseline_on_indirect_workload() {
        let (p, mem, _) = indirect_program(16, 400, false);
        let base = run(SystemConfig::paper_default(16), p, mem);

        let (p2, mem2, _) = indirect_program(16, 400, false);
        let cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        let imp = run(cfg, p2, mem2);

        assert!(
            imp.runtime < base.runtime,
            "IMP {} vs Base {}",
            imp.runtime,
            base.runtime
        );
        let pf = imp.prefetch_total();
        assert!(pf.issued_indirect > 0, "indirect prefetches issued: {pf:?}");
        assert!(imp.coverage() > base.coverage());
    }

    #[test]
    fn perfect_prefetch_bounds_imp() {
        let (p, mem, _) = indirect_program(16, 400, false);
        let cfg = SystemConfig::paper_default(16).with_mem_mode(MemMode::PerfectPrefetch);
        let perf = run(cfg, p, mem);

        let (p2, mem2, _) = indirect_program(16, 400, false);
        let cfg2 = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        let imp = run(cfg2, p2, mem2);

        let (p3, mem3, _) = indirect_program(16, 400, false);
        let ideal = run(
            SystemConfig::paper_default(16).with_mem_mode(MemMode::Ideal),
            p3,
            mem3,
        );

        assert!(ideal.runtime <= perf.runtime, "Ideal fastest");
        assert!(
            perf.runtime <= imp.runtime,
            "PerfPref ({}) bounds IMP ({})",
            perf.runtime,
            imp.runtime
        );
        // PerfPref still moves data.
        assert!(perf.traffic.dram_bytes() > 0);
    }

    #[test]
    fn software_prefetch_helps_but_adds_instructions() {
        let (p, mem, _) = indirect_program(16, 400, false);
        let base = run(SystemConfig::paper_default(16), p, mem);

        let (p2, mem2, _) = indirect_program(16, 400, true);
        let extra = p2.total_instructions();
        let sw = run(SystemConfig::paper_default(16), p2, mem2);

        assert!(
            sw.runtime < base.runtime,
            "SW pref speeds up: {} vs {}",
            sw.runtime,
            base.runtime
        );
        assert!(extra > base.total_instructions(), "instruction overhead");
    }

    #[test]
    fn partial_mode_reduces_noc_traffic_with_imp() {
        let (p, mem, _) = indirect_program(16, 400, false);
        let cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        let full = run(cfg, p, mem);

        let (p2, mem2, _) = indirect_program(16, 400, false);
        let cfg2 = SystemConfig::paper_default(16)
            .with_prefetcher(PrefetcherKind::Imp)
            .with_partial(PartialMode::NocAndDram);
        let part = run(cfg2, p2, mem2);

        assert!(
            part.prefetch_total().partial_prefetches > 0,
            "partial prefetches issued"
        );
        assert!(
            part.traffic.noc_flit_hops < full.traffic.noc_flit_hops,
            "partial {} vs full {}",
            part.traffic.noc_flit_hops,
            full.traffic.noc_flit_hops
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (p, mem, _) = indirect_program(16, 200, false);
        let cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        let a = run(cfg.clone(), p, mem);
        let (p2, mem2, _) = indirect_program(16, 200, false);
        let b = run(cfg, p2, mem2);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.misses_by_class(), b.misses_by_class());
    }

    #[test]
    fn zero_cost_tlb_matches_ideal_translation_bit_for_bit() {
        // A finite TLB with zero walk latency and an Ideal prefetch
        // policy charges nothing anywhere: every counter the seed
        // simulator produced must be identical to the default ideal
        // translation (only the new TlbStats may differ).
        use imp_common::{TlbConfig, TranslationPolicy};
        let (p, mem, _) = indirect_program(16, 300, false);
        let ideal = run(
            SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp),
            p,
            mem,
        );
        let (p2, mem2, _) = indirect_program(16, 300, false);
        let zero_cost = TlbConfig::finite()
            .with_walk_latency(0)
            .with_policy(TranslationPolicy::Ideal);
        let finite = run(
            SystemConfig::paper_default(16)
                .with_prefetcher(PrefetcherKind::Imp)
                .with_tlb(zero_cost),
            p2,
            mem2,
        );
        assert_eq!(ideal.runtime, finite.runtime);
        assert_eq!(ideal.cores, finite.cores);
        assert_eq!(ideal.prefetch, finite.prefetch);
        assert_eq!(ideal.traffic, finite.traffic);
        assert!(finite.tlb_total().lookups() > 0, "the TLB did run");
        assert_eq!(ideal.tlb_total(), Default::default());
    }

    #[test]
    fn drop_on_miss_drops_indirect_prefetches_and_walks_stall() {
        use imp_common::{TlbConfig, TranslationPolicy};
        let (p, mem, _) = indirect_program(16, 400, false);
        let base_cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        let ideal = run(base_cfg.clone(), p, mem);

        let (p2, mem2, _) = indirect_program(16, 400, false);
        let dropper = run(
            base_cfg
                .clone()
                .with_tlb(TlbConfig::finite().with_policy(TranslationPolicy::DropOnMiss)),
            p2,
            mem2,
        );
        let t = dropper.tlb_total();
        assert!(t.misses > 0, "cold pages must miss the dTLB");
        assert!(t.walk_cycles > 0, "demand walks are charged");
        assert!(
            t.prefetch_drops > 0,
            "IMP's value-derived prefetches land on unseen pages: {t:?}"
        );
        assert!(
            dropper.runtime > ideal.runtime,
            "translation costs must show: {} vs {}",
            dropper.runtime,
            ideal.runtime
        );
        let walk_stalls: u64 = dropper.cores.iter().map(|c| c.walk_stall_cycles).sum();
        assert!(walk_stalls > 0, "cores account their walk stalls");

        let (p3, mem3, _) = indirect_program(16, 400, false);
        let walker = run(
            base_cfg.with_tlb(TlbConfig::finite().with_policy(TranslationPolicy::NonBlockingWalk)),
            p3,
            mem3,
        );
        let t = walker.tlb_total();
        assert!(t.prefetch_walks > 0, "prefetches walk instead of dying");
        assert_eq!(t.prefetch_drops, 0);
        assert!(
            walker.prefetch_total().issued_indirect > dropper.prefetch_total().issued_indirect,
            "walking keeps prefetches DropOnMiss killed"
        );
    }

    #[test]
    fn walk_dram_traffic_is_accounted_when_enabled() {
        use imp_common::TlbConfig;
        let (p, mem, _) = indirect_program(16, 200, false);
        let quiet_cfg = SystemConfig::paper_default(16).with_tlb(TlbConfig::finite());
        let quiet = run(quiet_cfg.clone(), p, mem);

        let (p2, mem2, _) = indirect_program(16, 200, false);
        let mut noisy_cfg = quiet_cfg;
        noisy_cfg.tlb.walk_dram_traffic = true;
        let noisy = run(noisy_cfg, p2, mem2);
        assert_eq!(
            quiet.runtime, noisy.runtime,
            "first-order walk traffic is accounting-only"
        );
        assert!(noisy.traffic.dram_read_bytes > quiet.traffic.dram_read_bytes);
        assert!(noisy.traffic.dram_accesses > quiet.traffic.dram_accesses);
    }

    #[test]
    fn invalid_tlb_config_is_a_build_error() {
        use imp_common::TlbConfig;
        let mut cfg = SystemConfig::paper_default(16);
        cfg.tlb = TlbConfig::finite().with_page_bytes(3000);
        let mut p = Program::new("noop", 16);
        for c in 0..16 {
            p.core_mut(c).push(Op::compute(1));
        }
        match System::try_new(cfg, p, FunctionalMemory::new()) {
            Err(BuildError::Vm(e)) => assert!(e.to_string().contains("power of two"), "{e}"),
            other => panic!("expected a Vm build error, got {:?}", other.err()),
        }
    }

    #[test]
    fn barriers_synchronize_cores() {
        // Core 0 computes long, all others wait at the barrier; nobody
        // passes until core 0 arrives.
        let cores = 16;
        let mut p = Program::new("barrier", cores);
        p.core_mut(0).push(Op::compute(10_000));
        for c in 0..cores {
            p.core_mut(c).push(Op::barrier());
            p.core_mut(c).push(Op::compute(10));
        }
        let cfg = SystemConfig::paper_default(16).with_mem_mode(MemMode::Ideal);
        let s = run(cfg, p, FunctionalMemory::new());
        for c in 0..cores {
            assert!(
                s.cores[c].done_cycle >= 10_000,
                "core {c} finished at {} before the barrier released",
                s.cores[c].done_cycle
            );
        }
    }

    #[test]
    fn coherent_sharing_invalidates_readers() {
        // All cores read one line, then core 0 writes it: ACKwise must
        // broadcast (sharers > 4) and the write must complete.
        let cores = 16;
        let mut space = AddressSpace::new();
        let mem = FunctionalMemory::new();
        let x = space.alloc_array::<u64>("x", 8);
        let mut p = Program::new("sharing", cores);
        for c in 0..cores {
            p.core_mut(c)
                .push(Op::load(x.addr_of(0), 8, Pc::new(1), AccessClass::Other));
        }
        p.barrier();
        p.core_mut(0)
            .push(Op::store(x.addr_of(0), 8, Pc::new(2), AccessClass::Other));
        let s = run(SystemConfig::paper_default(16), p, mem);
        assert!(s.runtime > 0);
        // The broadcast invalidation shows up as NoC messages well above
        // the minimum for 17 accesses.
        assert!(
            s.traffic.noc_messages > 40,
            "messages {}",
            s.traffic.noc_messages
        );
    }

    #[test]
    fn ooo_core_model_runs_and_overlaps() {
        let (p, mem, _) = indirect_program(16, 300, false);
        let io = run(SystemConfig::paper_default(16), p, mem);

        let (p2, mem2, _) = indirect_program(16, 300, false);
        let cfg =
            SystemConfig::paper_default(16).with_core_model(imp_common::CoreModel::OutOfOrder);
        let ooo = run(cfg, p2, mem2);
        assert!(
            ooo.runtime < io.runtime,
            "OoO ({}) should beat in-order ({})",
            ooo.runtime,
            io.runtime
        );
    }

    #[test]
    fn probe_observes_without_perturbing_and_ledger_reconciles() {
        use imp_common::{TlbConfig, TranslationPolicy};
        let cfg = || {
            SystemConfig::paper_default(16)
                .with_prefetcher(PrefetcherKind::Imp)
                .with_tlb(TlbConfig::finite().with_policy(TranslationPolicy::NonBlockingWalk))
        };
        let (p, mem, _) = indirect_program(16, 300, false);
        let bare = run(cfg(), p, mem);

        let (p2, mem2, _) = indirect_program(16, 300, false);
        let probe = imp_obs::Probe::new(&imp_obs::ObsConfig::full(4096, 1000));
        let mut sys = System::new(cfg(), p2, mem2);
        sys.attach_probe(probe.clone());
        let probed = sys.run();

        // Observation never changes the simulation.
        assert_eq!(bare.runtime, probed.runtime);
        assert_eq!(bare.cores, probed.cores);
        assert_eq!(bare.prefetch, probed.prefetch);
        assert_eq!(bare.traffic, probed.traffic);

        let report = probe
            .finish_into_report(probed.runtime)
            .expect("probe was enabled");
        assert!(
            report.reconciles(),
            "fills {} != used {} + late {} + evicted_unused {}",
            report.ledger_total.fills,
            report.ledger_total.used,
            report.ledger_total.late,
            report.ledger_total.evicted_unused
        );
        // Ledger counts mirror the prefetch statistics they ride along:
        // exact for issues (no sw prefetches here), bounded for the
        // rest (untracked fills — prefetches merged into existing MSHR
        // entries — are excluded from the ledger by design).
        let pf = probed.prefetch_total();
        assert_eq!(
            report.ledger_total.issued,
            pf.issued_stream + pf.issued_indirect
        );
        assert!(report.ledger_total.used <= pf.covered);
        assert!(report.ledger_total.late <= pf.late);
        assert!(report.ledger_total.used > 0, "some prefetch was covered");
        assert!(!report.ledger_per_pc.is_empty());
        assert!(report.demand_latency.count() > 0);
        assert!(report.walk_latency.count() > 0, "finite TLB must walk");
        assert!(!report.epochs.is_empty());
        let trace = report.trace.as_ref().expect("tracing was on");
        assert!(!trace.is_empty());
        let json = trace.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn ghb_does_not_help_fresh_indirect_streams() {
        let (p, mem, _) = indirect_program(16, 300, false);
        let base = run(SystemConfig::paper_default(16), p, mem);
        let (p2, mem2, _) = indirect_program(16, 300, false);
        let cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Ghb);
        let ghb = run(cfg, p2, mem2);
        // Within a few percent of baseline (the paper: "no benefits").
        let ratio = ghb.runtime as f64 / base.runtime as f64;
        assert!(
            ratio > 0.9,
            "GHB should not dramatically beat baseline: {ratio}"
        );
    }
}
