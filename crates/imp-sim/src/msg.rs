//! Coherence / memory protocol messages carried by the NoC.

use imp_common::{LineAddr, SectorMask};

/// Message kinds of the simplified MSI + ACKwise protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Read request, L1 -> home L2 tile. Header-only.
    GetS,
    /// Write / upgrade request, L1 -> home. Header-only.
    GetX,
    /// Data (or upgrade grant) home -> requester. Payload = sectors.
    Data,
    /// Invalidate, home -> sharer. Header-only.
    Inv,
    /// Invalidation ack, sharer -> home. Header-only.
    InvAck,
    /// Home asks the Modified owner to downgrade (`invalidate = false`)
    /// or relinquish (`invalidate = true`) the line. Header-only.
    Fetch {
        /// True for write requests (owner must invalidate).
        invalidate: bool,
    },
    /// Owner's reply carrying the line back to home. Payload = line.
    FetchResp,
    /// Dirty L1 eviction writeback, L1 -> home. Payload = dirty sectors.
    WbL1,
    /// Home -> memory controller read. Header-only.
    MemRead,
    /// Memory controller -> home data. Payload = DRAM granule.
    MemReadResp,
    /// Home -> memory controller writeback. Payload = granule.
    MemWrite,
}

impl MsgKind {
    /// Stable small code for trace annotations (the observability layer
    /// tags home-tile events with it; renumbering would silently
    /// re-label existing traces).
    pub fn code(self) -> u32 {
        match self {
            MsgKind::GetS => 0,
            MsgKind::GetX => 1,
            MsgKind::Data => 2,
            MsgKind::Inv => 3,
            MsgKind::InvAck => 4,
            MsgKind::Fetch { invalidate: false } => 5,
            MsgKind::Fetch { invalidate: true } => 6,
            MsgKind::FetchResp => 7,
            MsgKind::WbL1 => 8,
            MsgKind::MemRead => 9,
            MsgKind::MemReadResp => 10,
            MsgKind::MemWrite => 11,
        }
    }
}

/// One protocol message.
#[derive(Clone, Copy, Debug)]
pub struct Msg {
    /// Message kind.
    pub kind: MsgKind,
    /// The cache line concerned.
    pub line: LineAddr,
    /// Source tile.
    pub src: u32,
    /// Destination tile.
    pub dst: u32,
    /// The core whose request started the transaction.
    pub requester: u32,
    /// Requested / carried sectors at L1 (8-byte) granularity.
    pub sectors: SectorMask,
    /// Write intent (GetX) / grants Modified (Data).
    pub exclusive: bool,
    /// Payload size in bytes (for NoC flit accounting and DRAM sizing).
    pub payload_bytes: u64,
}
