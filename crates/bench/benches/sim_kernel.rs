//! Raw simulation-kernel throughput: simulated ops/sec for single cells
//! driven straight through `Sim` — no result store, no sweep machinery —
//! so the number isolates the event loop, cache/TLB lookups, and core
//! engines this PR's speed overhaul targets.
//!
//! Emits a `BENCH_sim_kernel.json` snapshot (rows = workload/config
//! cells, column = simulated ops/sec) alongside the Criterion signal.

use criterion::{criterion_group, criterion_main, Criterion};
use imp_common::config::CoreModel;
use imp_experiments::{scale_from_env, Sim, Table};
use std::time::Instant;

/// The measured cells: the two kernel-stressing workloads under the
/// prefetchers that exercise the hot paths differently (none = pure
/// demand path, imp = prefetch machinery on top), plus the OoO engine.
fn cells() -> Vec<(String, Sim)> {
    let scale = scale_from_env();
    let mut v: Vec<(String, Sim)> = Vec::new();
    for w in ["spmv", "pagerank"] {
        for p in ["none", "imp"] {
            v.push((
                format!("{w}/{p}"),
                Sim::workload(w).scale(scale).cores(16).prefetcher(p),
            ));
        }
    }
    v.push((
        "spmv/imp/ooo".into(),
        Sim::workload("spmv")
            .scale(scale)
            .cores(16)
            .prefetcher("imp")
            .core_model(CoreModel::OutOfOrder),
    ));
    v
}

fn snapshot() {
    let mut table = Table::new("sim_kernel".to_string(), vec!["simulated_ops_per_sec"]);
    for (name, sim) in cells() {
        let artifact = sim.build_artifact().expect("build workload");
        // One warm-up run keeps the first cell from paying one-time
        // costs (lazy registry init, page-in) inside its measurement.
        let stats = sim.run_on(&artifact).expect("warm-up run");
        let ops: u64 = stats.cores.iter().map(|c| c.instructions).sum();
        let t = Instant::now();
        let timed = sim.run_on(&artifact).expect("timed run");
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(timed, stats, "simulation is deterministic");
        table.row(&name, vec![ops as f64 / secs]);
    }
    println!("{table}");
    imp_bench::emit_snapshot("sim_kernel", &table);
}

fn bench(c: &mut Criterion) {
    snapshot();

    // Criterion signal: one representative cell end to end on a
    // prebuilt artifact (kernel only, no workload generation).
    let sim = Sim::workload("spmv")
        .scale(scale_from_env())
        .cores(16)
        .prefetcher("imp");
    let artifact = sim.build_artifact().expect("build workload");
    let mut group = c.benchmark_group("sim_kernel");
    group.sample_size(10);
    group.bench_function("spmv_imp_16c", |b| {
        b.iter(|| {
            let stats = sim.run_on(&artifact).expect("run");
            std::hint::black_box(stats.runtime)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
