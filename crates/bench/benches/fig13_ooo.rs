//! Regenerates the paper artifact: fig13_ooo.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::fig13_ooo(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(c, "fig13_ooo", "sgd", imp_experiments::Config::ImpOoo);
}

criterion_group!(benches, bench);
criterion_main!(benches);
