//! Regenerates Figure 11 (a/b/c): IMP with partial cacheline accessing
//! (NoC only / NoC + DRAM) vs Perfect Prefetching at 16/64/256 cores.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for cores in imp_bench::bench_core_counts() {
        println!("{}", imp_experiments::fig11_partial(cores));
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    imp_bench::criterion_probe(
        c,
        "fig11_partial",
        "lsh",
        imp_experiments::Config::ImpPartialNocDram,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
