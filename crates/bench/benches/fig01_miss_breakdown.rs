//! Regenerates the paper artifact: fig01_miss_breakdown.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::fig01_miss_breakdown(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "fig01_miss_breakdown",
        "pagerank",
        imp_experiments::Config::Base,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
