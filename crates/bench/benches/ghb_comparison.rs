//! Regenerates the paper artifact: ghb_comparison.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::ghb_comparison(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "ghb_comparison",
        "pagerank",
        imp_experiments::Config::Ghb,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
