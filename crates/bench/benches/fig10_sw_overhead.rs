//! Regenerates the paper artifact: fig10_sw_overhead.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::fig10_sw_overhead(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "fig10_sw_overhead",
        "pagerank",
        imp_experiments::Config::SwPref,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
