//! Regenerates the paper artifact: fig12_traffic.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::fig12_traffic(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "fig12_traffic",
        "lsh",
        imp_experiments::Config::ImpPartialNocDram,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
