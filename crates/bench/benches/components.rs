//! Microbenchmarks of the hardware-model components on their hot paths
//! (ablation-style: how cheap is the logic the paper adds to each L1?).

use criterion::{criterion_group, criterion_main, Criterion};
use imp_common::stats::AccessClass;
use imp_common::{Addr, ImpConfig, Pc};
use imp_obs::CoreProbe;
use imp_prefetch::{Access, Imp, L1Prefetcher, MapValueSource, PrefetchCtx, StreamPrefetcher};

fn bench(c: &mut Criterion) {
    let mut src = MapValueSource::new();
    let probe = CoreProbe::disabled();
    for i in 0..4096u64 {
        src.insert(Addr::new(0x10000 + 4 * i), 4, (i * 2654435761) % 100_000);
    }

    c.bench_function("imp_on_access_steady_state", |b| {
        let mut imp = Imp::new(ImpConfig::paper_default(), false, 1);
        let mut reqs = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            let k = i % 4096;
            i += 1;
            let b_addr = Addr::new(0x10000 + 4 * k);
            let v = (k * 2654435761) % 100_000;
            reqs.clear();
            let mut ctx =
                PrefetchCtx::new(Pc::new(1), AccessClass::Other, &mut src, &mut reqs, &probe);
            imp.on_access_ctx(Access::load_hit(Pc::new(1), b_addr, 4), &mut ctx);
            let mut ctx =
                PrefetchCtx::new(Pc::new(2), AccessClass::Other, &mut src, &mut reqs, &probe);
            imp.on_access_ctx(
                Access::load_miss(Pc::new(2), Addr::new(0x1_000_000 + 8 * v), 8),
                &mut ctx,
            );
        })
    });

    c.bench_function("stream_prefetcher_on_access", |b| {
        let mut sp = StreamPrefetcher::paper_default();
        let mut reqs = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            reqs.clear();
            let mut ctx =
                PrefetchCtx::new(Pc::new(1), AccessClass::Other, &mut src, &mut reqs, &probe);
            sp.on_access_ctx(
                Access::load_hit(Pc::new(1), Addr::new(0x40000 + 8 * i), 8),
                &mut ctx,
            );
            reqs.len()
        })
    });

    c.bench_function("mesh_send_contended", |b| {
        let mut mesh = imp_noc::Mesh::new(8, 2, 8);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            mesh.send(i, 63 - i, 64, u64::from(i))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
