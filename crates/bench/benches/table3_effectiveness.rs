//! Regenerates the paper artifact: table3_effectiveness.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::table3_effectiveness(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "table3_effectiveness",
        "spmv",
        imp_experiments::Config::Imp,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
