//! Regenerates the paper artifact: no_harm.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::no_harm(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(c, "no_harm", "dense", imp_experiments::Config::Imp);
}

criterion_group!(benches, bench);
criterion_main!(benches);
