//! Result-store throughput: a cold fig-9-style sweep (simulated ops/sec)
//! against the warm hit path (cells served from disk per second), with
//! the numbers emitted as a `BENCH_sweep_store.json` snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use imp_experiments::{Sim, Sweep, Table};
use imp_store::ResultStore;
use imp_workloads::Scale;
use std::time::Instant;

fn grid() -> Sweep {
    Sweep::from(Sim::workload("spmv").scale(Scale::Tiny))
        .workloads(["spmv", "pagerank"])
        .prefetchers(["none", "stream", "imp"])
        .cores([16])
}

fn snapshot(store: &ResultStore) {
    let sweep = grid();
    let n = sweep.cells().len();

    let t = Instant::now();
    let cold = sweep.run_with(store, |_| {}).expect("cold sweep");
    let cold_secs = t.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(cold.simulated, n, "snapshot starts from an empty store");
    let ops: u64 = cold
        .results
        .iter()
        .map(|r| {
            let stats = &r.as_ref().expect("cell result").stats;
            stats.cores.iter().map(|c| c.instructions).sum::<u64>()
        })
        .sum();

    let t = Instant::now();
    let warm = sweep.run_with(store, |_| {}).expect("warm sweep");
    let warm_secs = t.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(warm.simulated, 0, "warm pass must be all hits");

    let mut table = Table::new("sweep_store".to_string(), vec!["value"]);
    table.row("cells", vec![n as f64]);
    table.row("cold_simulated_ops_per_sec", vec![ops as f64 / cold_secs]);
    table.row("warm_hit_cells_per_sec", vec![n as f64 / warm_secs]);
    table.row(
        "warm_speedup",
        vec![(cold_secs / warm_secs * 100.0).round() / 100.0],
    );
    println!("{table}");
    imp_bench::emit_snapshot("sweep_store", &table);
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("imp-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("open store");
    snapshot(&store);

    // Criterion signal: the warm hit path end to end (probe, read,
    // checksum-verify, deliver — no simulation).
    let mut group = c.benchmark_group("sweep_store");
    group.sample_size(10);
    group.bench_function("warm_hit_path", |b| {
        b.iter(|| {
            let report = grid().run_with(&store, |_| {}).expect("warm sweep");
            assert_eq!(report.simulated, 0);
            std::hint::black_box(report.cached)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
