//! Regenerates the paper artifact: fig15_ipd_size.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!(
        "{}",
        imp_experiments::sensitivity(64, imp_experiments::SweepParam::IpdSize)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(c, "fig15_ipd_size", "symgs", imp_experiments::Config::Imp);
}

criterion_group!(benches, bench);
criterion_main!(benches);
