//! Regenerates the paper artifact: fig02_motivation.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::fig02_motivation(64));
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "fig02_motivation",
        "spmv",
        imp_experiments::Config::Ideal,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
