//! The sweep-speedup tracker: workload build+run vs replaying a shared
//! [`BuiltArtifact`] (and vs reloading it from an `.imptrace` file).
//!
//! The gap between `build_and_run` and `replay_shared_artifact` is the
//! per-cell saving `Sweep::run` banks for every cell after the first of
//! a (workload, cores, seed) group.

use criterion::{criterion_group, criterion_main, Criterion};
use imp_experiments::{scale_from_env, Sim};
use imp_workloads::BuiltArtifact;

fn bench(c: &mut Criterion) {
    let sim = Sim::workload("pagerank")
        .scale(scale_from_env())
        .cores(16)
        .prefetcher("imp");
    let artifact = sim.build_artifact().expect("stock workload builds");
    let path = std::env::temp_dir().join(format!("imp-bench-{}.imptrace", std::process::id()));
    artifact.save(&path).expect("writable temp dir");

    let mut g = c.benchmark_group("trace_replay");
    g.sample_size(5);
    g.bench_function("build_and_run", |b| b.iter(|| sim.run().expect("sim runs")));
    g.bench_function("replay_shared_artifact", |b| {
        b.iter(|| sim.run_on(&artifact).expect("replay runs"))
    });
    g.bench_function("load_imptrace_and_run", |b| {
        b.iter(|| {
            let loaded = BuiltArtifact::load(&path).expect("file loads");
            sim.run_on(&loaded).expect("replay runs")
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
