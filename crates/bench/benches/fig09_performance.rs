//! Regenerates Figure 9 (a/b/c): normalized throughput of Baseline, IMP
//! and Software Prefetching vs Perfect Prefetching at 16/64/256 cores.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for cores in imp_bench::bench_core_counts() {
        let table = imp_experiments::fig09_performance(cores);
        println!("{table}");
        imp_bench::emit_snapshot(&format!("fig09_{cores}c"), &table);
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    imp_bench::criterion_probe(
        c,
        "fig09_performance",
        "pagerank",
        imp_experiments::Config::Imp,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
