//! Regenerates the paper artifact: storage_cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!("{}", imp_experiments::storage_cost_table());
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(c, "storage_cost", "spmv", imp_experiments::Config::Base);
}

criterion_group!(benches, bench);
criterion_main!(benches);
