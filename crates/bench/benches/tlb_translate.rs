//! Translation-path throughput: dTLB hit path vs page-walk path.
//!
//! The hit path sits on every demand access of every core when a finite
//! TLB is configured, so its cost must stay negligible next to the
//! cache model; the walk path bounds how expensive a TLB-thrashing
//! workload can get.

use criterion::{criterion_group, criterion_main, Criterion};
use imp_common::{Addr, TlbConfig};
use imp_vm::Vm;

fn bench(c: &mut Criterion) {
    let cfg = TlbConfig::finite();
    let mut g = c.benchmark_group("tlb_translate");

    // Hit path: one hot page, translated over and over.
    g.bench_function("hit_path", |b| {
        let mut vm = Vm::new(&cfg, 1).expect("finite defaults are valid");
        vm.demand_translate(0, Addr::new(0x1000)); // prime
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 8) & 0xFFF;
            vm.demand_translate(0, Addr::new(0x1000 + offset))
        });
    });

    // Walk path: cycle a page pool far larger than the 64-entry TLB so
    // every translation misses, walks the radix table, and evicts. The
    // pool is bounded so the page table reaches a steady state instead
    // of growing with the iteration count.
    g.bench_function("walk_path", |b| {
        let mut vm = Vm::new(&cfg, 1).expect("finite defaults are valid");
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % 4096;
            vm.demand_translate(0, Addr::new(page * 4096))
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
