//! Translation-path throughput: dTLB hit path vs L2-TLB hit path vs
//! page-walk path.
//!
//! The hit path sits on every demand access of every core when a finite
//! TLB is configured, so its cost must stay negligible next to the
//! cache model; the L2 hit path is what a dTLB-thrashing workload pays
//! when a shared second level catches it; the walk path bounds how
//! expensive a fully TLB-missing workload can get.

use criterion::{criterion_group, criterion_main, Criterion};
use imp_common::{Addr, TlbConfig};
use imp_vm::Vm;

fn bench(c: &mut Criterion) {
    let cfg = TlbConfig::finite();
    let mut g = c.benchmark_group("tlb_translate");

    // Hit path: one hot page, translated over and over.
    g.bench_function("hit_path", |b| {
        let mut vm = Vm::new(&cfg, 1).expect("finite defaults are valid");
        vm.demand_translate(0, Addr::new(0x1000)); // prime
        let mut offset = 0u64;
        b.iter(|| {
            offset = (offset + 8) & 0xFFF;
            vm.demand_translate(0, Addr::new(0x1000 + offset))
        });
    });

    // L2 hit path: cycle a page pool larger than the 64-entry dTLB but
    // comfortably inside a 2048-entry shared L2 TLB. After the first
    // lap every translation misses the dTLB and hits the L2 — the
    // steady state of a dTLB-thrashing, L2-friendly workload.
    g.bench_function("l2_hit_path", |b| {
        let l2_cfg = cfg.with_l2(256, 8);
        let mut vm = Vm::new(&l2_cfg, 1).expect("L2 geometry is valid");
        for page in 0..256u64 {
            vm.demand_translate(0, Addr::new(page * 4096)); // prime the L2
        }
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % 256;
            vm.demand_translate(0, Addr::new(page * 4096))
        });
    });

    // Walk path: cycle a page pool far larger than the 64-entry TLB so
    // every translation misses, walks the radix table, and evicts. The
    // pool is bounded so the page table reaches a steady state instead
    // of growing with the iteration count.
    g.bench_function("walk_path", |b| {
        let mut vm = Vm::new(&cfg, 1).expect("finite defaults are valid");
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 1) % 4096;
            vm.demand_translate(0, Addr::new(page * 4096))
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
