//! Regenerates the paper artifact: fig16_distance.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_table() {
    println!(
        "{}",
        imp_experiments::sensitivity(64, imp_experiments::SweepParam::Distance)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    imp_bench::criterion_probe(
        c,
        "fig16_distance",
        "graph500",
        imp_experiments::Config::Imp,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
