//! Benchmark harness for the IMP reproduction.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper: it prints the paper-style rows once (the reproduction
//! artifact), then runs a small Criterion measurement of a representative
//! simulation so `cargo bench` reports a stable timing signal.
//!
//! Knobs:
//! * `IMP_SCALE=tiny|small|large` — input sizing (default `small`).
//! * `IMP_BENCH_CORES=16,64` — restrict the core counts swept by the
//!   multi-panel figures (default: the paper's 16, 64, 256).

use criterion::Criterion;
use imp_experiments::{system_config, Config};
use imp_sim::System;
use imp_workloads::{by_name, Scale, WorkloadParams};

/// Writes `table` as a machine-readable `BENCH_<name>.json` perf
/// snapshot into `IMP_BENCH_DIR` (default: the current directory) and
/// returns the path. Benches call this after printing their
/// human-readable rows so CI can archive the numbers; a failed write
/// warns instead of failing the bench. The JSON carries a
/// `"provenance"` object (git SHA, rustc version, host core count) so
/// archived snapshots stay comparable across machines and revisions.
pub fn emit_snapshot(name: &str, table: &imp_experiments::Table) -> std::path::PathBuf {
    let dir = std::env::var_os("IMP_BENCH_DIR")
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut json = table.to_json();
    debug_assert!(json.ends_with('}'));
    json.pop();
    json.push_str(&format!(",\"provenance\":{}}}", provenance_json()));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// One line of trimmed stdout from `cmd args...`, or `None` if the
/// command is missing or failed.
fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

/// The `"provenance"` object embedded in every snapshot: where and
/// from what the numbers came. Every field degrades to `"unknown"`
/// rather than failing the bench (e.g. outside a git checkout).
fn provenance_json() -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let unknown = || "unknown".to_string();
    let sha = command_line("git", &["rev-parse", "HEAD"]).unwrap_or_else(unknown);
    let rustc = command_line("rustc", &["-V"]).unwrap_or_else(unknown);
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!(
        "{{\"git_sha\":\"{}\",\"rustc\":\"{}\",\"host_cores\":{cores}}}",
        escape(&sha),
        escape(&rustc)
    )
}

/// Core counts for multi-panel figures, from `IMP_BENCH_CORES` or the
/// paper's default sweep.
pub fn bench_core_counts() -> Vec<u32> {
    match std::env::var("IMP_BENCH_CORES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![16, 64, 256],
    }
}

/// Standard Criterion measurement attached to every figure bench: one
/// fresh 16-core tiny-scale simulation of the given app/config.
pub fn criterion_probe(c: &mut Criterion, name: &str, app: &'static str, config: Config) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function("tiny_16c_probe", |b| {
        b.iter(|| {
            let params = WorkloadParams::new(16, Scale::Tiny);
            let built = by_name(app).unwrap().build(&params);
            let stats = System::new(system_config(16, config), built.program, built.mem).run();
            std::hint::black_box(stats.runtime)
        })
    });
    group.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_embeds_provenance() {
        let dir = std::env::temp_dir().join(format!("imp-bench-prov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("IMP_BENCH_DIR", &dir);
        let mut table = imp_experiments::Table::new("prov".into(), vec!["runtime"]);
        table.row("x", vec![1.0]);
        let path = emit_snapshot("prov_test", &table);
        std::env::remove_var("IMP_BENCH_DIR");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"provenance\""), "{json}");
        for key in ["\"git_sha\":", "\"rustc\":", "\"host_cores\":"] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        assert!(
            !json.contains("\"host_cores\":0"),
            "parallelism resolves on this host: {json}"
        );
        assert!(json.ends_with("}}"), "table object stays closed: {json}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
