//! Benchmark harness for the IMP reproduction.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper: it prints the paper-style rows once (the reproduction
//! artifact), then runs a small Criterion measurement of a representative
//! simulation so `cargo bench` reports a stable timing signal.
//!
//! Knobs:
//! * `IMP_SCALE=tiny|small|large` — input sizing (default `small`).
//! * `IMP_BENCH_CORES=16,64` — restrict the core counts swept by the
//!   multi-panel figures (default: the paper's 16, 64, 256).

use criterion::Criterion;
use imp_experiments::{system_config, Config};
use imp_sim::System;
use imp_workloads::{by_name, Scale, WorkloadParams};

/// Writes `table` as a machine-readable `BENCH_<name>.json` perf
/// snapshot into `IMP_BENCH_DIR` (default: the current directory) and
/// returns the path. Benches call this after printing their
/// human-readable rows so CI can archive the numbers; a failed write
/// warns instead of failing the bench.
pub fn emit_snapshot(name: &str, table: &imp_experiments::Table) -> std::path::PathBuf {
    let dir = std::env::var_os("IMP_BENCH_DIR")
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, table.to_json()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// Core counts for multi-panel figures, from `IMP_BENCH_CORES` or the
/// paper's default sweep.
pub fn bench_core_counts() -> Vec<u32> {
    match std::env::var("IMP_BENCH_CORES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![16, 64, 256],
    }
}

/// Standard Criterion measurement attached to every figure bench: one
/// fresh 16-core tiny-scale simulation of the given app/config.
pub fn criterion_probe(c: &mut Criterion, name: &str, app: &'static str, config: Config) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function("tiny_16c_probe", |b| {
        b.iter(|| {
            let params = WorkloadParams::new(16, Scale::Tiny);
            let built = by_name(app).unwrap().build(&params);
            let stats = System::new(system_config(16, config), built.program, built.mem).run();
            std::hint::black_box(stats.runtime)
        })
    });
    group.finish();
}
