//! Property tests: functional memory behaves like a giant byte array.

use imp_common::Addr;
use imp_mem::{AddressSpace, FunctionalMemory};
use proptest::prelude::*;

proptest! {
    /// Independent writes read back independently (no aliasing).
    #[test]
    fn writes_do_not_alias(ops in proptest::collection::vec((0u64..1_000_000, any::<u64>()), 1..50)) {
        let mut mem = FunctionalMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, v) in &ops {
            let addr = addr * 8; // aligned, disjoint u64 cells
            mem.write_u64(Addr::new(addr), *v);
            model.insert(addr, *v);
        }
        for (addr, v) in model {
            prop_assert_eq!(mem.read_u64(Addr::new(addr)), v);
        }
    }

    /// Byte-level writes compose into the right integers.
    #[test]
    fn byte_writes_compose(base in 0u64..1_000_000, v in any::<u32>()) {
        let mut mem = FunctionalMemory::new();
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            mem.write_u8(Addr::new(base + i as u64), *b);
        }
        prop_assert_eq!(mem.read_u32(Addr::new(base)), v);
    }

    /// Snapshots round-trip arbitrary populated memories exactly —
    /// contents, page mapping, and the snapshot bytes themselves.
    #[test]
    fn snapshot_restore_roundtrip(
        writes in proptest::collection::vec((0u64..50_000_000, any::<u64>()), 0..60),
    ) {
        let mut mem = FunctionalMemory::new();
        for (addr, v) in &writes {
            mem.write_u64(Addr::new(*addr), *v);
        }
        let image = mem.snapshot();
        let back = FunctionalMemory::restore(&image).unwrap();
        prop_assert_eq!(back.mapped_pages(), mem.mapped_pages());
        for (addr, _) in &writes {
            prop_assert_eq!(back.read_u64(Addr::new(*addr)), mem.read_u64(Addr::new(*addr)));
        }
        prop_assert_eq!(back.snapshot(), image);
    }

    /// A truncated snapshot never restores to a silently wrong memory.
    #[test]
    fn snapshot_truncation_detected(
        writes in proptest::collection::vec((0u64..1_000_000, any::<u64>()), 1..10),
        cut in 1usize..100,
    ) {
        let mut mem = FunctionalMemory::new();
        for (addr, v) in &writes {
            mem.write_u64(Addr::new(*addr), *v);
        }
        let image = mem.snapshot();
        prop_assume!(cut < image.len());
        prop_assert!(FunctionalMemory::restore(&image[..image.len() - cut]).is_err());
    }

    /// Allocations never overlap, whatever the request sizes.
    #[test]
    fn allocations_disjoint(sizes in proptest::collection::vec(1u64..10_000, 1..30)) {
        let mut space = AddressSpace::new();
        let allocs: Vec<_> = sizes.iter().enumerate()
            .map(|(i, &s)| space.alloc(&format!("a{i}"), s))
            .collect();
        for (i, a) in allocs.iter().enumerate() {
            for b in allocs.iter().skip(i + 1) {
                prop_assert!(a.end() <= b.base || b.end() <= a.base);
            }
        }
    }
}
