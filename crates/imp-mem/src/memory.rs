//! Sparse page-backed functional memory.

use imp_common::{Addr, FastMap};
use std::fmt;
use std::sync::Arc;

const PAGE_SHIFT: u64 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A sparse byte-addressable memory.
///
/// Reads from unmapped locations return zero: this mirrors a zero-filled
/// fresh allocation and, importantly, makes speculative reads by the
/// prefetcher (which may run past the end of an index array, Section 6.1.1
/// of the paper) well-defined rather than a simulator fault.
///
/// Pages are reference-counted and copy-on-write: `clone()` costs one
/// `Arc` bump per mapped page, and a write to a shared page copies just
/// that page. One populated memory image can therefore back many
/// concurrent simulator instances (the build-once sweep path) for free —
/// the simulator only ever reads it.
#[derive(Clone, Debug, Default)]
pub struct FunctionalMemory {
    pages: FastMap<u64, Arc<[u8; PAGE_BYTES]>>,
}

impl FunctionalMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped 4 KB pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let (page, off) = split(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte, mapping the page on demand.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let (page, off) = split(addr);
        self.page_mut(page)[off] = value;
    }

    /// Reads `buf.len()` bytes starting at `addr` (little-endian layout).
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        // Accesses that stay inside one page (the overwhelmingly common
        // case: the simulator reads 1–8-byte values) cost a single page
        // lookup instead of one per byte.
        let (page, off) = split(addr);
        if let Some(end) = off.checked_add(buf.len()) {
            if end <= PAGE_BYTES {
                match self.pages.get(&page) {
                    Some(p) => buf.copy_from_slice(&p[off..end]),
                    None => buf.fill(0),
                }
                return;
            }
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.offset(i as i64));
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        if buf.is_empty() {
            return; // never map a page for a zero-length write
        }
        let (page, off) = split(addr);
        if let Some(end) = off.checked_add(buf.len()) {
            if end <= PAGE_BYTES {
                self.page_mut(page)[off..end].copy_from_slice(buf);
                return;
            }
        }
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr.offset(i as i64), *b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: Addr) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an unsigned little-endian integer of `size` bytes
    /// (1, 2, 4 or 8), zero-extended to `u64`. This is the operation the
    /// IMP hardware performs when it reads an index value at stream
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: Addr, size: u32) -> u64 {
        match size {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported integer size {size}"),
        }
    }

    /// Serializes the populated pages into a deterministic byte image:
    /// page count, then each page as `page_number (u64 le)` + its 4096
    /// bytes, sorted by page number. Restoring with
    /// [`FunctionalMemory::restore`] reproduces the memory exactly
    /// (including which pages are mapped).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut numbers: Vec<u64> = self.pages.keys().copied().collect();
        numbers.sort_unstable();
        let mut out = Vec::with_capacity(8 + numbers.len() * (8 + PAGE_BYTES));
        out.extend_from_slice(&(numbers.len() as u64).to_le_bytes());
        for n in numbers {
            out.extend_from_slice(&n.to_le_bytes());
            out.extend_from_slice(&self.pages[&n][..]);
        }
        out
    }

    /// Rebuilds a memory from a [`FunctionalMemory::snapshot`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the image is truncated, has
    /// bytes left over, or repeats a page number.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
            let available = bytes.len() - *pos;
            if n > available {
                return Err(SnapshotError::Truncated {
                    needed: n,
                    available,
                });
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let mut pos = 0;
        let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        // The count is untrusted until checked against the bytes that
        // follow — cap the pre-allocation by what the image could
        // actually hold so a corrupt header errors instead of aborting.
        let possible = (bytes.len() - pos) / (8 + PAGE_BYTES);
        let mut pages = FastMap::default();
        pages.reserve((count as usize).min(possible));
        for _ in 0..count {
            let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            let data: [u8; PAGE_BYTES] =
                take(&mut pos, PAGE_BYTES)?.try_into().expect("page-sized");
            if pages.insert(n, Arc::new(data)).is_some() {
                return Err(SnapshotError::DuplicatePage(n));
            }
        }
        if pos != bytes.len() {
            return Err(SnapshotError::TrailingBytes(bytes.len() - pos));
        }
        Ok(FunctionalMemory { pages })
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_BYTES] {
        Arc::make_mut(
            self.pages
                .entry(page)
                .or_insert_with(|| Arc::new([0u8; PAGE_BYTES])),
        )
    }
}

/// Why a [`FunctionalMemory::snapshot`] image could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image ended before a page record was complete.
    Truncated {
        /// Bytes the next record needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// The image has bytes after the declared page records.
    TrailingBytes(usize),
    /// The same page number appears twice.
    DuplicatePage(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "truncated memory snapshot: record needs {needed} bytes, {available} left"
            ),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} unexpected bytes after the memory snapshot")
            }
            SnapshotError::DuplicatePage(p) => {
                write!(f, "page {p:#x} appears twice in the memory snapshot")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn split(addr: Addr) -> (u64, usize) {
    (
        addr.raw() >> PAGE_SHIFT,
        (addr.raw() & (PAGE_BYTES as u64 - 1)) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_zero() {
        let m = FunctionalMemory::new();
        assert_eq!(m.read_u64(Addr::new(0xdead_beef)), 0);
        assert_eq!(m.read_u8(Addr::new(0)), 0);
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip_all_widths() {
        let mut m = FunctionalMemory::new();
        m.write_u8(Addr::new(10), 0xAB);
        m.write_u16(Addr::new(20), 0xBEEF);
        m.write_u32(Addr::new(30), 0xDEAD_BEEF);
        m.write_u64(Addr::new(40), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(Addr::new(10)), 0xAB);
        assert_eq!(m.read_u16(Addr::new(20)), 0xBEEF);
        assert_eq!(m.read_u32(Addr::new(30)), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(Addr::new(40)), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn reads_span_page_boundaries() {
        let mut m = FunctionalMemory::new();
        let addr = Addr::new(PAGE_BYTES as u64 - 3);
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn read_uint_matches_width() {
        let mut m = FunctionalMemory::new();
        m.write_u64(Addr::new(0), u64::MAX);
        assert_eq!(m.read_uint(Addr::new(0), 1), 0xFF);
        assert_eq!(m.read_uint(Addr::new(0), 2), 0xFFFF);
        assert_eq!(m.read_uint(Addr::new(0), 4), 0xFFFF_FFFF);
        assert_eq!(m.read_uint(Addr::new(0), 8), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "unsupported integer size")]
    fn read_uint_rejects_odd_sizes() {
        let m = FunctionalMemory::new();
        let _ = m.read_uint(Addr::new(0), 3);
    }

    #[test]
    fn clones_are_copy_on_write() {
        let mut a = FunctionalMemory::new();
        a.write_u64(Addr::new(100), 7);
        let mut b = a.clone();
        b.write_u64(Addr::new(100), 9);
        assert_eq!(a.read_u64(Addr::new(100)), 7, "original unchanged");
        assert_eq!(b.read_u64(Addr::new(100)), 9);
        // Writing elsewhere in the clone maps a page only in the clone.
        b.write_u8(Addr::new(1 << 30), 1);
        assert_eq!(a.mapped_pages(), 1);
        assert_eq!(b.mapped_pages(), 2);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = FunctionalMemory::new();
        m.write_u64(Addr::new(40), 0x0123_4567_89AB_CDEF);
        m.write_u32(Addr::new(PAGE_BYTES as u64 * 5 + 8), 0xDEAD_BEEF);
        let image = m.snapshot();
        let back = FunctionalMemory::restore(&image).unwrap();
        assert_eq!(back.mapped_pages(), m.mapped_pages());
        assert_eq!(back.read_u64(Addr::new(40)), 0x0123_4567_89AB_CDEF);
        assert_eq!(
            back.read_u32(Addr::new(PAGE_BYTES as u64 * 5 + 8)),
            0xDEAD_BEEF
        );
        // Snapshots are deterministic byte-for-byte.
        assert_eq!(back.snapshot(), image);
    }

    #[test]
    fn snapshot_restore_rejects_malformed_images() {
        let mut m = FunctionalMemory::new();
        m.write_u8(Addr::new(0), 1);
        let image = m.snapshot();
        assert!(matches!(
            FunctionalMemory::restore(&image[..image.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut padded = image.clone();
        padded.push(0);
        assert!(matches!(
            FunctionalMemory::restore(&padded),
            Err(SnapshotError::TrailingBytes(1))
        ));
        // Duplicate the single page record and fix up the count.
        let mut dup = image.clone();
        dup.extend_from_slice(&image[8..]);
        dup[0..8].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(
            FunctionalMemory::restore(&dup),
            Err(SnapshotError::DuplicatePage(0))
        ));
        // An absurd page count errors instead of allocating for it.
        let mut huge = image;
        huge[0..8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            FunctionalMemory::restore(&huge),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}
