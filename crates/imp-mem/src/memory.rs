//! Sparse page-backed functional memory.

use imp_common::Addr;
use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A sparse byte-addressable memory.
///
/// Reads from unmapped locations return zero: this mirrors a zero-filled
/// fresh allocation and, importantly, makes speculative reads by the
/// prefetcher (which may run past the end of an index array, Section 6.1.1
/// of the paper) well-defined rather than a simulator fault.
#[derive(Debug, Default)]
pub struct FunctionalMemory {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl FunctionalMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped 4 KB pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let (page, off) = split(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte, mapping the page on demand.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let (page, off) = split(addr);
        self.page_mut(page)[off] = value;
    }

    /// Reads `buf.len()` bytes starting at `addr` (little-endian layout).
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr.offset(i as i64));
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr.offset(i as i64), *b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: Addr) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads an unsigned little-endian integer of `size` bytes
    /// (1, 2, 4 or 8), zero-extended to `u64`. This is the operation the
    /// IMP hardware performs when it reads an index value at stream
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: Addr, size: u32) -> u64 {
        match size {
            1 => u64::from(self.read_u8(addr)),
            2 => u64::from(self.read_u16(addr)),
            4 => u64::from(self.read_u32(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported integer size {size}"),
        }
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }
}

fn split(addr: Addr) -> (u64, usize) {
    (
        addr.raw() >> PAGE_SHIFT,
        (addr.raw() & (PAGE_BYTES as u64 - 1)) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_zero() {
        let m = FunctionalMemory::new();
        assert_eq!(m.read_u64(Addr::new(0xdead_beef)), 0);
        assert_eq!(m.read_u8(Addr::new(0)), 0);
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip_all_widths() {
        let mut m = FunctionalMemory::new();
        m.write_u8(Addr::new(10), 0xAB);
        m.write_u16(Addr::new(20), 0xBEEF);
        m.write_u32(Addr::new(30), 0xDEAD_BEEF);
        m.write_u64(Addr::new(40), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(Addr::new(10)), 0xAB);
        assert_eq!(m.read_u16(Addr::new(20)), 0xBEEF);
        assert_eq!(m.read_u32(Addr::new(30)), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(Addr::new(40)), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn reads_span_page_boundaries() {
        let mut m = FunctionalMemory::new();
        let addr = Addr::new(PAGE_BYTES as u64 - 3);
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn read_uint_matches_width() {
        let mut m = FunctionalMemory::new();
        m.write_u64(Addr::new(0), u64::MAX);
        assert_eq!(m.read_uint(Addr::new(0), 1), 0xFF);
        assert_eq!(m.read_uint(Addr::new(0), 2), 0xFFFF);
        assert_eq!(m.read_uint(Addr::new(0), 4), 0xFFFF_FFFF);
        assert_eq!(m.read_uint(Addr::new(0), 8), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "unsupported integer size")]
    fn read_uint_rejects_odd_sizes() {
        let m = FunctionalMemory::new();
        let _ = m.read_uint(Addr::new(0), 3);
    }
}
