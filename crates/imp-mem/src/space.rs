//! Virtual address-space layout for workload data structures.

use crate::typed::{ArrayRef, BitVecRef, MemScalar};
use imp_common::{Addr, MemRegion, PagePolicy, LINE_BYTES};

/// Description of one allocated region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// Human-readable name (for debugging and experiment dumps).
    pub name: String,
    /// First byte address.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
    /// Page-size policy the workload declared for this region (the
    /// `madvise(MADV_HUGEPAGE)` axis). [`PagePolicy::Base4K`] by
    /// default; set with [`AddressSpace::set_policy`].
    pub policy: PagePolicy,
}

impl Allocation {
    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.base.offset(self.bytes as i64)
    }

    /// True if `a` falls inside this allocation.
    pub fn contains(&self, a: Addr) -> bool {
        a >= self.base && a < self.end()
    }
}

/// A bump allocator for the simulated 48-bit virtual address space.
///
/// Allocations are cache-line aligned and separated by a guard gap of a few
/// lines so that distinct arrays never share a cache line (which would
/// muddy the ground-truth access classification) and so that a base address
/// of one array cannot be mistaken for the tail of another by the Indirect
/// Pattern Detector.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
    allocations: Vec<Allocation>,
}

/// Arrays start above the zero page to keep `Addr(0)` trivially invalid.
const BASE: u64 = 0x1_0000;
/// Guard gap between allocations, in bytes.
const GUARD: u64 = 4 * LINE_BYTES;
const ADDR_LIMIT: u64 = 1 << 48;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            next: BASE,
            allocations: Vec::new(),
        }
    }

    /// Allocates `bytes` bytes aligned to a cache line.
    ///
    /// # Panics
    ///
    /// Panics if the 48-bit address space is exhausted.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> Allocation {
        let base = self.next;
        let padded = bytes.max(1).div_ceil(LINE_BYTES) * LINE_BYTES;
        assert!(
            base + padded + GUARD < ADDR_LIMIT,
            "48-bit address space exhausted"
        );
        self.next = base + padded + GUARD;
        let a = Allocation {
            name: name.to_string(),
            base: Addr::new(base),
            bytes,
            policy: PagePolicy::Base4K,
        };
        self.allocations.push(a.clone());
        a
    }

    /// Allocates a typed array of `len` elements of `T`.
    pub fn alloc_array<T: MemScalar>(&mut self, name: &str, len: u64) -> ArrayRef<T> {
        let a = self.alloc(name, len * T::SIZE_BYTES as u64);
        ArrayRef::new(a.base, len)
    }

    /// Allocates a bit vector of `bits` bits (rounded up to whole lines).
    pub fn alloc_bitvec(&mut self, name: &str, bits: u64) -> BitVecRef {
        let a = self.alloc(name, bits.div_ceil(8));
        BitVecRef::new(a.base, bits)
    }

    /// All allocations made so far, in order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Declares the page-size policy of the allocation named `name`
    /// (the simulated `madvise`). Returns `false` when no allocation
    /// has that name.
    pub fn set_policy(&mut self, name: &str, policy: PagePolicy) -> bool {
        let mut found = false;
        for a in self.allocations.iter_mut().filter(|a| a.name == name) {
            a.policy = policy;
            found = true;
        }
        found
    }

    /// The allocations as serializable [`MemRegion`] records — the
    /// per-region placement list workload artifacts carry.
    pub fn regions(&self) -> Vec<MemRegion> {
        self.allocations
            .iter()
            .map(|a| MemRegion {
                name: a.name.clone(),
                base: a.base.raw(),
                bytes: a.bytes,
                policy: a.policy,
            })
            .collect()
    }

    /// Total bytes allocated (the working-set size, excluding guards).
    pub fn total_bytes(&self) -> u64 {
        self.allocations.iter().map(|a| a.bytes).sum()
    }

    /// Finds the allocation containing `a`, if any.
    pub fn find(&self, a: Addr) -> Option<&Allocation> {
        self.allocations.iter().find(|al| al.contains(a))
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 100);
        let b = s.alloc("b", 1);
        let c = s.alloc("c", 64);
        for al in [&a, &b, &c] {
            assert_eq!(al.base.raw() % LINE_BYTES, 0, "{}", al.name);
        }
        // Disjoint with at least the guard gap between them.
        assert!(a.end().raw() + GUARD <= b.base.raw() + LINE_BYTES);
        assert!(b.base.raw() >= a.base.raw() + 128 + GUARD);
        assert!(c.base.raw() > b.end().raw());
    }

    #[test]
    fn find_locates_containing_allocation() {
        let mut s = AddressSpace::new();
        let a = s.alloc("x", 256);
        assert_eq!(s.find(a.base).map(|al| al.name.as_str()), Some("x"));
        assert_eq!(
            s.find(a.base.offset(255)).map(|al| al.name.as_str()),
            Some("x")
        );
        assert_eq!(s.find(a.base.offset(256)), None);
        assert_eq!(s.find(Addr::new(0)), None);
    }

    #[test]
    fn total_bytes_counts_payload_only() {
        let mut s = AddressSpace::new();
        s.alloc("a", 100);
        s.alloc("b", 28);
        assert_eq!(s.total_bytes(), 128);
    }

    #[test]
    fn policies_default_base_and_are_settable_per_region() {
        let mut s = AddressSpace::new();
        s.alloc("idx", 256);
        s.alloc("target", 1024);
        assert!(s
            .allocations()
            .iter()
            .all(|a| a.policy == PagePolicy::Base4K));
        assert!(s.set_policy("target", PagePolicy::Huge2M));
        assert!(!s.set_policy("nope", PagePolicy::Huge2M));
        let regions = s.regions();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].policy, PagePolicy::Base4K);
        assert_eq!(regions[1].policy, PagePolicy::Huge2M);
        assert_eq!(regions[1].name, "target");
        assert_eq!(regions[1].bytes, 1024);
        assert_eq!(regions[1].base, s.allocations()[1].base.raw());
    }

    #[test]
    fn typed_array_layout() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_array::<u32>("idx", 16);
        assert_eq!(arr.addr_of(0), arr.base());
        assert_eq!(arr.addr_of(1).raw(), arr.base().raw() + 4);
        assert_eq!(arr.len(), 16);
    }
}
