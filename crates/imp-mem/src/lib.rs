//! Functional memory for the IMP simulator.
//!
//! IMP prefetches `A[B[i + delta]]` by *reading the value* of `B[i + delta]`
//! from memory (paper Section 3.1), so the simulator needs real data behind
//! virtual addresses, not just an address trace. This crate provides:
//!
//! * [`FunctionalMemory`] — a sparse, page-backed byte store,
//! * [`AddressSpace`] — a bump allocator handing out array placements in a
//!   48-bit virtual address space,
//! * [`ArrayRef`] — typed views that let workload generators write index
//!   arrays (and read them back) at simulated addresses.
//!
//! # Example
//!
//! ```
//! use imp_mem::{AddressSpace, FunctionalMemory};
//!
//! let mut space = AddressSpace::new();
//! let mut mem = FunctionalMemory::new();
//! let b = space.alloc_array::<u32>("B", 100);
//! b.write(&mut mem, 5, 42);
//! assert_eq!(b.read(&mem, 5), 42);
//! assert_eq!(mem.read_u32(b.addr_of(5)), 42);
//! ```

mod memory;
mod space;
mod typed;

pub use memory::{FunctionalMemory, SnapshotError};
pub use space::{AddressSpace, Allocation};
pub use typed::{ArrayRef, BitVecRef, MemScalar};
