//! Typed views over functional memory.

use crate::FunctionalMemory;
use imp_common::Addr;
use std::marker::PhantomData;

/// Scalar types that can live in simulated memory.
///
/// This trait is sealed: the simulator only needs the fixed set of
/// primitive widths below.
pub trait MemScalar: Copy + private::Sealed {
    /// Element size in bytes (a power of two; this is what makes IMP's
    /// shift-based address generation of Eq. (2) applicable).
    const SIZE_BYTES: u32;

    /// Writes the value at `addr`.
    fn store(self, mem: &mut FunctionalMemory, addr: Addr);

    /// Reads a value from `addr`.
    fn load(mem: &FunctionalMemory, addr: Addr) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! impl_mem_scalar {
    ($t:ty, $size:expr, $w:ident, $r:ident, $to:expr, $from:expr) => {
        impl MemScalar for $t {
            const SIZE_BYTES: u32 = $size;
            fn store(self, mem: &mut FunctionalMemory, addr: Addr) {
                mem.$w(addr, ($to)(self));
            }
            fn load(mem: &FunctionalMemory, addr: Addr) -> Self {
                ($from)(mem.$r(addr))
            }
        }
    };
}

impl_mem_scalar!(u8, 1, write_u8, read_u8, |v| v, |v| v);
impl_mem_scalar!(u16, 2, write_u16, read_u16, |v| v, |v| v);
impl_mem_scalar!(u32, 4, write_u32, read_u32, |v| v, |v| v);
impl_mem_scalar!(u64, 8, write_u64, read_u64, |v| v, |v| v);
impl_mem_scalar!(i32, 4, write_u32, read_u32, |v: i32| v as u32, |v: u32| v
    as i32);
impl_mem_scalar!(i64, 8, write_u64, read_u64, |v: i64| v as u64, |v: u64| v
    as i64);
impl_mem_scalar!(f32, 4, write_u32, read_u32, f32::to_bits, f32::from_bits);
impl_mem_scalar!(f64, 8, write_u64, read_u64, f64::to_bits, f64::from_bits);

/// A typed array placed in simulated memory.
///
/// `ArrayRef` is a lightweight handle (base + length); the backing bytes
/// live in a [`FunctionalMemory`] passed to each operation, so handles can
/// be freely copied into workload generators.
#[derive(Debug)]
pub struct ArrayRef<T> {
    base: Addr,
    len: u64,
    _t: PhantomData<T>,
}

impl<T> Clone for ArrayRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArrayRef<T> {}

impl<T: MemScalar> ArrayRef<T> {
    /// Creates a view of `len` elements starting at `base`.
    pub fn new(base: Addr, len: u64) -> Self {
        ArrayRef {
            base,
            len,
            _t: PhantomData,
        }
    }

    /// Base address of element 0.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        T::SIZE_BYTES
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is out of bounds.
    pub fn addr_of(&self, i: u64) -> Addr {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base.offset((i * T::SIZE_BYTES as u64) as i64)
    }

    /// Reads element `i`.
    pub fn read(&self, mem: &FunctionalMemory, i: u64) -> T {
        T::load(mem, self.addr_of(i))
    }

    /// Writes element `i`.
    pub fn write(&self, mem: &mut FunctionalMemory, i: u64, v: T) {
        v.store(mem, self.addr_of(i));
    }

    /// Copies a host slice into simulated memory starting at element 0.
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the array.
    pub fn fill_from(&self, mem: &mut FunctionalMemory, values: &[T]) {
        assert!(values.len() as u64 <= self.len, "slice longer than array");
        for (i, v) in values.iter().enumerate() {
            self.write(mem, i as u64, *v);
        }
    }
}

/// A bit vector in simulated memory (used by Triangle Counting; accessed
/// indirectly with the paper's shift of -3, i.e. coefficient 1/8).
#[derive(Clone, Copy, Debug)]
pub struct BitVecRef {
    base: Addr,
    bits: u64,
}

impl BitVecRef {
    /// Creates a view of `bits` bits starting at `base`.
    pub fn new(base: Addr, bits: u64) -> Self {
        BitVecRef { base, bits }
    }

    /// Base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of bits.
    pub fn len_bits(&self) -> u64 {
        self.bits
    }

    /// Byte address holding bit `i`: `base + (i >> 3)`. This is exactly
    /// the address the workload's `A[B[i]]` access touches with
    /// coefficient 1/8.
    pub fn addr_of_bit(&self, i: u64) -> Addr {
        debug_assert!(i < self.bits, "bit {i} out of bounds ({} bits)", self.bits);
        self.base.offset((i >> 3) as i64)
    }

    /// Reads bit `i`.
    pub fn get(&self, mem: &FunctionalMemory, i: u64) -> bool {
        let byte = mem.read_u8(self.addr_of_bit(i));
        byte & (1 << (i & 7)) != 0
    }

    /// Sets bit `i` to `v`.
    pub fn set(&self, mem: &mut FunctionalMemory, i: u64, v: bool) {
        let addr = self.addr_of_bit(i);
        let mut byte = mem.read_u8(addr);
        if v {
            byte |= 1 << (i & 7);
        } else {
            byte &= !(1 << (i & 7));
        }
        mem.write_u8(addr, byte);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressSpace;

    #[test]
    fn array_roundtrip_every_type() {
        let mut s = AddressSpace::new();
        let mut m = FunctionalMemory::new();
        let a = s.alloc_array::<f64>("f", 4);
        a.write(&mut m, 0, 3.25);
        a.write(&mut m, 3, -1.5);
        assert_eq!(a.read(&m, 0), 3.25);
        assert_eq!(a.read(&m, 3), -1.5);

        let b = s.alloc_array::<i32>("i", 4);
        b.write(&mut m, 1, -7);
        assert_eq!(b.read(&m, 1), -7);

        let c = s.alloc_array::<u64>("u", 2);
        c.write(&mut m, 0, u64::MAX);
        assert_eq!(c.read(&m, 0), u64::MAX);
    }

    #[test]
    fn fill_from_writes_prefix() {
        let mut s = AddressSpace::new();
        let mut m = FunctionalMemory::new();
        let a = s.alloc_array::<u32>("x", 8);
        a.fill_from(&mut m, &[1, 2, 3]);
        assert_eq!(a.read(&m, 0), 1);
        assert_eq!(a.read(&m, 2), 3);
        assert_eq!(a.read(&m, 3), 0); // untouched stays zero
    }

    #[test]
    fn addresses_follow_element_size() {
        let mut s = AddressSpace::new();
        let a = s.alloc_array::<u16>("h", 10);
        assert_eq!(a.addr_of(4).raw() - a.base().raw(), 8);
        assert_eq!(a.elem_bytes(), 2);
    }

    #[test]
    fn bitvec_addressing_is_coeff_one_eighth() {
        let mut s = AddressSpace::new();
        let bv = s.alloc_bitvec("bits", 1024);
        // bit i lives at base + i/8: the shift -3 pattern of the paper.
        assert_eq!(bv.addr_of_bit(0), bv.base());
        assert_eq!(bv.addr_of_bit(7), bv.base());
        assert_eq!(bv.addr_of_bit(8).raw(), bv.base().raw() + 1);
        assert_eq!(bv.addr_of_bit(1023).raw(), bv.base().raw() + 127);
    }

    #[test]
    fn bitvec_set_get() {
        let mut s = AddressSpace::new();
        let mut m = FunctionalMemory::new();
        let bv = s.alloc_bitvec("bits", 100);
        assert!(!bv.get(&m, 42));
        bv.set(&mut m, 42, true);
        assert!(bv.get(&m, 42));
        assert!(!bv.get(&m, 41));
        assert!(!bv.get(&m, 43));
        bv.set(&mut m, 42, false);
        assert!(!bv.get(&m, 42));
    }
}
