//! Property tests for the foundation types.

use imp_common::{Addr, Cycle, EventQueue, LineAddr, SectorMask};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The plain priority queue the calendar-wheel [`EventQueue`] must be
/// observably identical to: a binary heap keyed `(time, seq)`.
#[derive(Default)]
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    seq: u64,
}

impl ReferenceQueue {
    fn push(&mut self, time: Cycle, payload: u32) {
        self.heap.push(Reverse((time, self.seq, payload)));
        self.seq += 1;
    }
    fn pop(&mut self) -> Option<(Cycle, u32)> {
        self.heap.pop().map(|Reverse((t, _, p))| (t, p))
    }
    fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

proptest! {
    /// Touch masks always cover the accessed byte range (within the line).
    #[test]
    fn touch_mask_covers_access(addr in 0u64..1_000_000, size in 1u32..16) {
        let a = Addr::new(addr);
        let m = SectorMask::l1_touch(a, size);
        prop_assert!(!m.is_empty());
        // The first byte's sector must be set.
        let first = (addr % 64) / 8;
        prop_assert!(m.bits() & (1 << first) != 0);
    }

    /// Set algebra: (a - b) and (a & b) partition a.
    #[test]
    fn mask_set_algebra(a in 0u8..=255, b in 0u8..=255) {
        let (a, b) = (SectorMask::from_bits(a), SectorMask::from_bits(b));
        let minus = a.minus(b);
        let inter = a.intersect(b);
        prop_assert_eq!(minus.union(inter).bits(), a.bits());
        prop_assert_eq!(minus.intersect(b).bits(), 0);
        prop_assert!(a.union(b).contains(a));
    }

    /// min_consecutive_run is within [1, popcount] for non-empty masks.
    #[test]
    fn min_run_bounds(bits in 1u8..=255) {
        let m = SectorMask::from_bits(bits);
        let run = m.min_consecutive_run().unwrap();
        prop_assert!(run >= 1);
        prop_assert!(run <= m.count());
    }

    /// Line address round trip: every byte of a line maps back to it.
    #[test]
    fn line_roundtrip(addr in 0u64..1_000_000_000) {
        let line = LineAddr::containing(Addr::new(addr));
        prop_assert!(line.base().raw() <= addr);
        prop_assert!(addr < line.base().raw() + 64);
    }

    /// The calendar-wheel queue is observably identical to a binary
    /// heap keyed `(time, seq)` under arbitrary push/pop interleavings.
    /// Pushed times are relative to the last popped time, which drives
    /// events into every region: same-cycle FIFO runs, the wheel
    /// window, the overflow heap, and (degenerate) pushes into the past.
    #[test]
    fn event_wheel_matches_heap_reference(
        script in proptest::collection::vec((0u8..4, 0u64..2000), 0..300)
    ) {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut payload = 0u32;
        let mut last_pop: Cycle = 0;
        for (action, dt) in script {
            if action == 0 {
                // Pop from both; results must agree exactly.
                prop_assert_eq!(wheel.peek_time(), reference.peek_time());
                let got = wheel.pop();
                prop_assert_eq!(got, reference.pop());
                if let Some((t, _)) = got {
                    last_pop = t;
                }
            } else {
                // Push around the frontier: mostly near future (the
                // wheel), sometimes far (overflow) or before the
                // frontier (degenerate past push).
                let time = match action {
                    1 => last_pop + (dt % 8),            // dense near-future
                    2 => last_pop + dt * 73,             // sparse, into overflow
                    _ => last_pop.saturating_sub(dt % 50), // at or before frontier
                };
                wheel.push(time, payload);
                reference.push(time, payload);
                payload += 1;
            }
            prop_assert_eq!(wheel.len(), reference.heap.len());
        }
        // Drain: the full remaining order must match.
        while let Some(expect) = reference.pop() {
            prop_assert_eq!(wheel.pop(), Some(expect));
        }
        prop_assert!(wheel.is_empty());
    }

    /// Widening to L2 never loses coverage: any set L1 sector's half-line
    /// is set in the L2 mask.
    #[test]
    fn widen_preserves_coverage(bits in 0u8..=255) {
        let l1 = SectorMask::from_bits(bits);
        let l2 = l1.widen_to_l2();
        for s in 0..8u32 {
            if bits & (1 << s) != 0 {
                prop_assert!(l2.bits() & (1 << (s / 4)) != 0);
            }
        }
    }
}
