//! Property tests for the foundation types.

use imp_common::{Addr, LineAddr, SectorMask};
use proptest::prelude::*;

proptest! {
    /// Touch masks always cover the accessed byte range (within the line).
    #[test]
    fn touch_mask_covers_access(addr in 0u64..1_000_000, size in 1u32..16) {
        let a = Addr::new(addr);
        let m = SectorMask::l1_touch(a, size);
        prop_assert!(!m.is_empty());
        // The first byte's sector must be set.
        let first = (addr % 64) / 8;
        prop_assert!(m.bits() & (1 << first) != 0);
    }

    /// Set algebra: (a - b) and (a & b) partition a.
    #[test]
    fn mask_set_algebra(a in 0u8..=255, b in 0u8..=255) {
        let (a, b) = (SectorMask::from_bits(a), SectorMask::from_bits(b));
        let minus = a.minus(b);
        let inter = a.intersect(b);
        prop_assert_eq!(minus.union(inter).bits(), a.bits());
        prop_assert_eq!(minus.intersect(b).bits(), 0);
        prop_assert!(a.union(b).contains(a));
    }

    /// min_consecutive_run is within [1, popcount] for non-empty masks.
    #[test]
    fn min_run_bounds(bits in 1u8..=255) {
        let m = SectorMask::from_bits(bits);
        let run = m.min_consecutive_run().unwrap();
        prop_assert!(run >= 1);
        prop_assert!(run <= m.count());
    }

    /// Line address round trip: every byte of a line maps back to it.
    #[test]
    fn line_roundtrip(addr in 0u64..1_000_000_000) {
        let line = LineAddr::containing(Addr::new(addr));
        prop_assert!(line.base().raw() <= addr);
        prop_assert!(addr < line.base().raw() + 64);
    }

    /// Widening to L2 never loses coverage: any set L1 sector's half-line
    /// is set in the L2 mask.
    #[test]
    fn widen_preserves_coverage(bits in 0u8..=255) {
        let l1 = SectorMask::from_bits(bits);
        let l2 = l1.widen_to_l2();
        for s in 0..8u32 {
            if bits & (1 << s) != 0 {
                prop_assert!(l2.bits() & (1 << (s / 4)) != 0);
            }
        }
    }
}
