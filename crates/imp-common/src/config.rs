//! System configuration (Table 1) and IMP configuration (Table 2).

use crate::Cycle;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Core microarchitecture model (Section 6.3.1 compares these).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoreModel {
    /// In-order, single-issue (the paper's default core, Table 1).
    #[default]
    InOrder,
    /// Modest out-of-order core with a 32-entry reorder buffer, mimicking
    /// a Silvermont-class many-core design (Section 6.3.1).
    OutOfOrder,
}

/// Which hardware prefetcher is attached to each L1 data cache.
///
/// This closed enum survives as shorthand for the paper's four stock
/// configurations; it converts into the open [`PrefetcherSpec`] that
/// [`SystemConfig`] actually carries. Custom and composite prefetchers
/// (registered through `imp-prefetch`'s plugin registry) are addressed by
/// spec, not by this enum.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrefetcherKind {
    /// No prefetching at all.
    None,
    /// Stream prefetcher only (the paper's *Baseline*).
    #[default]
    Stream,
    /// Stream prefetcher plus IMP (the paper's contribution).
    Imp,
    /// Stream prefetcher plus a Global History Buffer correlation
    /// prefetcher (Section 5.4 comparison).
    Ghb,
}

impl PrefetcherKind {
    /// The registry name this stock configuration maps to.
    pub fn registry_name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::Stream => "stream",
            PrefetcherKind::Imp => "imp",
            PrefetcherKind::Ghb => "ghb",
        }
    }
}

/// One prefetcher parameter value.
///
/// Parameters are interpreted by the factory that builds the prefetcher;
/// unknown keys are rejected at build time so typos surface early.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// Boolean flag.
    Bool(bool),
    /// Integer knob (table sizes, distances, seeds).
    Int(i64),
    /// Floating-point knob.
    Float(f64),
    /// Free-form string (e.g. a component list for combinators).
    Str(String),
}

impl ParamValue {
    /// The value as an unsigned integer, if it is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            ParamValue::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a `u32`, if it is a non-negative `Int` in range.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as a `usize`, if it is a non-negative `Int` in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a float (`Float` or lossless `Int`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            ParamValue::Float(v) => Some(v),
            ParamValue::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            ParamValue::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Int(i64::from(v))
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v:?}"),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// An open, serialization-friendly prefetcher selection: a registry name
/// plus factory-specific parameters.
///
/// Replaces direct [`PrefetcherKind`] dispatch in [`SystemConfig`]: the
/// simulator resolves the name against `imp-prefetch`'s plugin registry,
/// so downstream users can attach prefetchers the core crates have never
/// heard of.
///
/// The textual form is `name` or `name:key=value,key=value`, and
/// round-trips through [`fmt::Display`] / [`FromStr`]:
///
/// ```
/// use imp_common::config::PrefetcherSpec;
///
/// let spec: PrefetcherSpec = "stream:distance=8,verbose=true".parse().unwrap();
/// assert_eq!(spec.name, "stream");
/// assert_eq!(spec.get("distance").and_then(|v| v.as_u32()), Some(8));
/// assert_eq!(spec.to_string().parse::<PrefetcherSpec>().unwrap(), spec);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PrefetcherSpec {
    /// Registry key of the factory that builds this prefetcher.
    pub name: String,
    /// Factory-specific parameters (sorted for stable rendering).
    pub params: BTreeMap<String, ParamValue>,
}

impl PrefetcherSpec {
    /// A spec with no parameters.
    pub fn new(name: impl Into<String>) -> Self {
        PrefetcherSpec {
            name: name.into(),
            params: BTreeMap::new(),
        }
    }

    /// Returns a copy with `key` set to `value`.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Looks a parameter up.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.params.get(key)
    }
}

impl Default for PrefetcherSpec {
    /// The paper's Baseline (stream prefetcher).
    fn default() -> Self {
        PrefetcherSpec::new("stream")
    }
}

impl From<PrefetcherKind> for PrefetcherSpec {
    fn from(kind: PrefetcherKind) -> Self {
        PrefetcherSpec::new(kind.registry_name())
    }
}

impl TryFrom<&str> for PrefetcherSpec {
    type Error = SpecParseError;

    fn try_from(text: &str) -> Result<Self, SpecParseError> {
        text.parse()
    }
}

/// Error from parsing a [`PrefetcherSpec`] string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecParseError {
    /// What was wrong with the input.
    pub reason: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefetcher spec: {}", self.reason)
    }
}

impl std::error::Error for SpecParseError {}

impl FromStr for PrefetcherSpec {
    type Err = SpecParseError;

    fn from_str(text: &str) -> Result<Self, SpecParseError> {
        let (name, rest) = match text.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (text, None),
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(SpecParseError {
                reason: format!("empty name in {text:?}"),
            });
        }
        let mut spec = PrefetcherSpec::new(name);
        if let Some(rest) = rest {
            for pair in rest.split(',').filter(|p| !p.trim().is_empty()) {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(SpecParseError {
                        reason: format!("expected key=value, got {pair:?}"),
                    });
                };
                let v = v.trim();
                let value = if let Ok(b) = v.parse::<bool>() {
                    ParamValue::Bool(b)
                } else if let Ok(i) = v.parse::<i64>() {
                    ParamValue::Int(i)
                } else if let Ok(x) = v.parse::<f64>() {
                    ParamValue::Float(x)
                } else {
                    ParamValue::Str(v.to_string())
                };
                spec.params.insert(k.trim().to_string(), value);
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for PrefetcherSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { ':' } else { ',' })?;
        }
        Ok(())
    }
}

/// Execution mode of the memory subsystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemMode {
    /// Full model: caches, coherence, NoC, DRAM (Baseline/IMP/etc.).
    #[default]
    Realistic,
    /// *Perfect Prefetching*: every access hits in L1, but each would-be
    /// miss still pushes a full line transfer through the NoC and DRAM;
    /// a core may run at most `perfpref_lead` cycles ahead of its oldest
    /// incomplete fetch. Finite-bandwidth upper bound for any prefetcher.
    PerfectPrefetch,
    /// *Ideal*: every access hits in L1 and generates no traffic.
    Ideal,
}

/// Partial cacheline accessing mode (Section 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartialMode {
    /// Always move full cache lines.
    #[default]
    Off,
    /// Partial lines between L1 and L2 (NoC) only; DRAM still moves
    /// full lines.
    NocOnly,
    /// Partial lines in the NoC and 32-byte-granule accesses to DRAM.
    NocAndDram,
}

/// DRAM timing model selection (Table 1 lists both).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DramModelKind {
    /// Simple model: fixed 100 ns latency, 10 GB/s per memory controller.
    /// The paper reports this is within 5% of DRAMSim and uses it for the
    /// partial-accessing experiments.
    #[default]
    Simple,
    /// Banked DDR3-like model (10-10-10-24, 8 banks per rank, 1 rank per
    /// controller), standing in for DRAMSim.
    Ddr3,
}

/// How prefetch addresses are translated when the dTLB misses.
///
/// IMP's indirect prefetches are computed from *data values*, so they
/// land on arbitrary virtual pages; unlike demand accesses (which always
/// stall for a page-table walk), hardware has a choice for prefetches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TranslationPolicy {
    /// Drop any prefetch whose page is not TLB-resident (the
    /// conservative hardware default: prefetchers never trigger walks).
    #[default]
    DropOnMiss,
    /// Trigger a non-blocking page-table walk for the prefetch's page
    /// and issue the prefetch once the walk completes. The core never
    /// stalls, but walk cycles are charged and the TLB is filled
    /// (possibly evicting entries demand accesses wanted).
    NonBlockingWalk,
    /// Prefetches translate for free and never touch the TLB; demand
    /// accesses still pay full translation costs.
    Ideal,
}

impl TranslationPolicy {
    /// Short stable name (sweep axes, table headers).
    pub const fn name(self) -> &'static str {
        match self {
            TranslationPolicy::DropOnMiss => "drop",
            TranslationPolicy::NonBlockingWalk => "walk",
            TranslationPolicy::Ideal => "ideal",
        }
    }
}

/// Per-region page-size policy: how a workload memory region is backed
/// by translation pages.
///
/// Real deployments mix page sizes per region (`madvise(MADV_HUGEPAGE)`
/// on the hot arrays); this is the per-allocation knob workload
/// generators record in their [`MemRegion`] list and `Sim::page_policy`
/// overrides at run time. The default, [`PagePolicy::Base4K`], backs
/// the region with base pages (`TlbConfig::page_bytes`, 4 KB by
/// default) and is bit-identical to the simulator before per-region
/// placement existed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PagePolicy {
    /// Base translation pages (`TlbConfig::page_bytes`; 4 KB default).
    #[default]
    Base4K,
    /// Huge pages one radix level up
    /// ([`TlbConfig::huge_page_bytes`]; 2 MB for a 4 KB base).
    Huge2M,
    /// Huge pages when the region is at least `threshold_bytes` long,
    /// base pages otherwise — the transparent-huge-page heuristic.
    Auto {
        /// Minimum region size (bytes) that promotes to huge pages.
        threshold_bytes: u64,
    },
}

impl PagePolicy {
    /// Canonical form for digesting: stable across runs, distinct
    /// across distinct policies (an `Auto` threshold is part of the
    /// identity, unlike [`PagePolicy::name`]).
    pub fn canonical(self) -> String {
        match self {
            PagePolicy::Auto { threshold_bytes } => format!("auto:{threshold_bytes}"),
            other => other.name().to_string(),
        }
    }

    /// Short stable name (sweep axes, table headers).
    pub const fn name(self) -> &'static str {
        match self {
            PagePolicy::Base4K => "4k",
            PagePolicy::Huge2M => "2m",
            PagePolicy::Auto { .. } => "auto",
        }
    }

    /// Whether a region of `region_bytes` resolves to huge pages under
    /// this policy.
    pub const fn is_huge_for(self, region_bytes: u64) -> bool {
        match self {
            PagePolicy::Base4K => false,
            PagePolicy::Huge2M => true,
            PagePolicy::Auto { threshold_bytes } => region_bytes >= threshold_bytes,
        }
    }
}

/// One named workload memory region and the page-size policy it
/// declared: the unit of per-region placement.
///
/// Generators record one `MemRegion` per allocated array; the list
/// travels inside the `Built` artifact (and its `.imptrace`
/// serialization) so replays preserve placement, and `Sim::page_policy`
/// overrides resolve against the names here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemRegion {
    /// Allocation name (e.g. `"pr0"`, `"adj"`).
    pub name: String,
    /// First byte address.
    pub base: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Page-size policy the generator declared for this region.
    pub policy: PagePolicy,
}

impl MemRegion {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }
}

/// How page-table walks are timed.
///
/// A walk is a pointer chase through the radix table: one page-table
/// entry read per level, each dependent on the previous. The model
/// decides what each of those PTE reads costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WalkModel {
    /// Every level costs a flat `TlbConfig::walk_latency` cycles and
    /// generates no memory traffic (beyond the optional first-order
    /// `walk_dram_traffic` accounting). Bit-identical to the simulator
    /// before walks became first-class memory traffic.
    #[default]
    Flat,
    /// Each PTE read is routed through the memory hierarchy: it crosses
    /// the NoC to the line's home L2 slice, hits there if the
    /// page-table working set is warm, and otherwise fetches the PTE
    /// line from DRAM (filling the L2, contending with demand traffic,
    /// and showing up in cache/NoC/DRAM statistics).
    Cached,
}

impl WalkModel {
    /// Short stable name (sweep axes, table headers).
    pub const fn name(self) -> &'static str {
        match self {
            WalkModel::Flat => "flat",
            WalkModel::Cached => "cached",
        }
    }
}

/// Per-core dTLB and page-walk configuration.
///
/// The default, [`TlbConfig::ideal`], models the seed simulator exactly:
/// every address translates instantly and no translation state exists,
/// so results are bit-identical to a build without the virtual-memory
/// subsystem. [`TlbConfig::finite`] enables a set-associative LRU dTLB
/// per core, backed by a shared radix page table whose walker charges
/// `walk_latency` cycles per radix level.
///
/// The page size here is the *translation* granule and is decoupled from
/// `imp-mem`'s fixed 4 KB functional-memory backing pages — sweeping
/// `page_bytes` changes TLB reach and walk depth, never data contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Ideal translation: infinite, zero-cost (the seed behavior).
    /// When set, every other field is ignored.
    pub ideal: bool,
    /// TLB sets.
    pub sets: u32,
    /// TLB ways per set.
    pub ways: u32,
    /// Translation page size in bytes (a power of two, at least one
    /// cache line).
    pub page_bytes: u64,
    /// Page-walk latency in cycles *per radix level* (a 4 KB page in a
    /// 48-bit space walks 4 levels).
    pub walk_latency: Cycle,
    /// How prefetch addresses are translated.
    pub policy: TranslationPolicy,
    /// Account each walk level as an 8-byte DRAM read in the traffic
    /// statistics (first-order walk traffic; only meaningful under
    /// [`WalkModel::Flat`] — the `Cached` model accounts real traffic).
    pub walk_dram_traffic: bool,
    /// Sets of the shared second-level TLB (0 disables the L2 TLB; when
    /// enabled, `l2_sets` and `l2_ways` must both be non-zero).
    pub l2_sets: u32,
    /// Ways per set of the shared second-level TLB.
    pub l2_ways: u32,
    /// Cycles a translation stalls when it misses the per-core dTLB but
    /// hits the shared L2 TLB.
    pub l2_latency: Cycle,
    /// Translation prefetching: let the prefetcher prefill L2-TLB
    /// entries for the pages its value-derived (indirect) predictions
    /// target, so later prefetches to those pages survive `DropOnMiss`.
    pub tlb_prefetch: bool,
    /// How page-table walks are timed (flat per-level latency, or PTE
    /// reads routed through the shared cache hierarchy).
    pub walk_model: WalkModel,
    /// Sets of the per-core huge-page sub-TLB (the x86-style split
    /// dTLB's second structure, caching [`TlbConfig::huge_page_bytes`]
    /// translations). Only consulted when a run places regions on huge
    /// pages; must be non-zero together with `huge_ways` then.
    pub huge_sets: u32,
    /// Ways per set of the per-core huge-page sub-TLB.
    pub huge_ways: u32,
}

impl TlbConfig {
    /// Ideal (infinite, zero-cost) translation — the default, and
    /// bit-identical to the simulator before the `imp-vm` subsystem
    /// existed.
    pub const fn ideal() -> Self {
        TlbConfig {
            ideal: true,
            ..Self::finite()
        }
    }

    /// A finite dTLB at typical first-level sizing: 64 entries (16 sets
    /// x 4 ways), 4 KB pages, 25 cycles per walk level, prefetches
    /// dropped on TLB miss, no L2 TLB, flat walk timing — bit-identical
    /// to the configuration before the shared L2 TLB existed.
    pub const fn finite() -> Self {
        TlbConfig {
            ideal: false,
            sets: 16,
            ways: 4,
            page_bytes: 4096,
            walk_latency: 25,
            policy: TranslationPolicy::DropOnMiss,
            walk_dram_traffic: false,
            l2_sets: 0,
            l2_ways: 0,
            l2_latency: 8,
            tlb_prefetch: false,
            walk_model: WalkModel::Flat,
            // Skylake-style 2 MB dTLB sizing: 32 entries, 4-way.
            huge_sets: 8,
            huge_ways: 4,
        }
    }

    /// Total TLB entries.
    pub const fn entries(&self) -> u32 {
        self.sets * self.ways
    }

    /// Address bytes covered by a full TLB (its *reach*).
    pub const fn reach_bytes(&self) -> u64 {
        self.entries() as u64 * self.page_bytes
    }

    /// Returns a copy with the way count replaced.
    #[must_use]
    pub const fn with_ways(mut self, ways: u32) -> Self {
        self.ways = ways;
        self
    }

    /// Returns a copy with the page size replaced.
    #[must_use]
    pub const fn with_page_bytes(mut self, bytes: u64) -> Self {
        self.page_bytes = bytes;
        self
    }

    /// Returns a copy with the prefetch-translation policy replaced.
    #[must_use]
    pub const fn with_policy(mut self, policy: TranslationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with the per-level walk latency replaced.
    #[must_use]
    pub const fn with_walk_latency(mut self, cycles: Cycle) -> Self {
        self.walk_latency = cycles;
        self
    }

    /// Returns a copy with a shared L2 TLB of `sets` x `ways` entries
    /// behind the per-core dTLBs (`with_l2(0, 0)` disables it again).
    #[must_use]
    pub const fn with_l2(mut self, sets: u32, ways: u32) -> Self {
        self.l2_sets = sets;
        self.l2_ways = ways;
        self
    }

    /// Returns a copy with the L2-TLB hit latency replaced.
    #[must_use]
    pub const fn with_l2_latency(mut self, cycles: Cycle) -> Self {
        self.l2_latency = cycles;
        self
    }

    /// Returns a copy with translation prefetching switched on or off.
    #[must_use]
    pub const fn with_tlb_prefetch(mut self, on: bool) -> Self {
        self.tlb_prefetch = on;
        self
    }

    /// Returns a copy with the walk-timing model replaced.
    #[must_use]
    pub const fn with_walk_model(mut self, model: WalkModel) -> Self {
        self.walk_model = model;
        self
    }

    /// Returns a copy with the huge-page sub-TLB geometry replaced.
    #[must_use]
    pub const fn with_huge_tlb(mut self, sets: u32, ways: u32) -> Self {
        self.huge_sets = sets;
        self.huge_ways = ways;
        self
    }

    /// The huge-page size paired with `page_bytes`: one radix level up
    /// (x86-style — 512 base pages, so 2 MB for the default 4 KB base).
    /// A huge leaf therefore sits one level shallower in the page
    /// table, and walks for huge-mapped regions read one fewer
    /// page-table entry.
    pub const fn huge_page_bytes(&self) -> u64 {
        self.page_bytes << 9
    }

    /// Total huge-page sub-TLB entries per core.
    pub const fn huge_entries(&self) -> u32 {
        self.huge_sets * self.huge_ways
    }

    /// Address bytes covered by a full huge-page sub-TLB (its *reach*).
    pub const fn huge_reach_bytes(&self) -> u64 {
        self.huge_entries() as u64 * self.huge_page_bytes()
    }

    /// Whether a shared L2 TLB is configured.
    pub const fn has_l2(&self) -> bool {
        self.l2_sets > 0 || self.l2_ways > 0
    }

    /// Total L2-TLB entries.
    pub const fn l2_entries(&self) -> u32 {
        self.l2_sets * self.l2_ways
    }

    /// Address bytes covered by a full L2 TLB (its *reach*).
    pub const fn l2_reach_bytes(&self) -> u64 {
        self.l2_entries() as u64 * self.page_bytes
    }

    /// This config if it is already finite, otherwise [`TlbConfig::finite`]
    /// defaults — how sweep axes upgrade an ideal base when a TLB knob
    /// is varied.
    #[must_use]
    pub const fn finite_or_self(self) -> Self {
        if self.ideal {
            Self::finite()
        } else {
            self
        }
    }

    /// Canonical form for digesting: every timing-relevant field in a
    /// stable order. Two configs produce the same string iff they run
    /// identically; the string is what `imp-store` hashes into a cell
    /// digest, so any new field that changes timing must be appended
    /// here (appending changes the digest, which safely invalidates
    /// cached results).
    pub fn canonical(&self) -> String {
        if self.ideal {
            return "tlb[ideal]".to_string();
        }
        format!(
            "tlb[sets:{},ways:{},page:{},walk:{},policy:{},wtraf:{},\
             l2s:{},l2w:{},l2lat:{},tp:{},wm:{},hs:{},hw:{}]",
            self.sets,
            self.ways,
            self.page_bytes,
            self.walk_latency,
            self.policy.name(),
            self.walk_dram_traffic,
            self.l2_sets,
            self.l2_ways,
            self.l2_latency,
            self.tlb_prefetch,
            self.walk_model.name(),
            self.huge_sets,
            self.huge_ways,
        )
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Cache geometry for one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Access latency in cycles (tag + data).
    pub latency: Cycle,
    /// Number of sectors per line when partial accessing is enabled
    /// (1 means the cache is not sectored).
    pub sectors: u32,
    /// Number of MSHRs (outstanding misses, demand + prefetch).
    pub mshrs: u32,
}

/// Memory-hierarchy configuration derived from Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct MemConfig {
    /// Cache line size in bytes (64 in the paper).
    pub line_bytes: u64,
    /// Private L1 data cache (32 KB, 4-way).
    pub l1d: CacheConfig,
    /// Shared L2 slice per tile (2/sqrt(N) MB, 8-way).
    pub l2_slice: CacheConfig,
    /// ACKwise sharer-pointer count: broadcast when sharers exceed this.
    pub ackwise_k: u32,
    /// NoC hop latency in cycles (1 router + 1 link).
    pub hop_latency: Cycle,
    /// Flit width in bytes (64 bits).
    pub flit_bytes: u64,
    /// Number of memory controllers (sqrt(N), diamond placement).
    pub mem_controllers: u32,
    /// DRAM model.
    pub dram: DramModelKind,
    /// Simple-model DRAM latency in cycles (100 ns at 1 GHz).
    pub dram_latency: Cycle,
    /// Simple-model per-controller bandwidth in bytes per cycle
    /// (10 GB/s at 1 GHz = 10 B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// Minimum DRAM transfer granule in bytes (32 B, Section 4.1).
    pub dram_granule: u64,
}

/// IMP hardware parameters (Table 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImpConfig {
    /// Prefetch Table entries (16).
    pub pt_entries: usize,
    /// Maximum indirect ways per primary pattern (2).
    pub max_ways: usize,
    /// Maximum indirect levels per way (2).
    pub max_levels: usize,
    /// Maximum indirect prefetch distance (16).
    pub max_prefetch_distance: u32,
    /// Indirect Pattern Detector entries (4).
    pub ipd_entries: usize,
    /// Candidate shift values. `2, 3, 4` are left shifts (coefficients
    /// 4, 8, 16); `-3` is a right shift (coefficient 1/8 for bit vectors).
    pub shifts: Vec<i8>,
    /// BaseAddr array length per IPD entry (4): how many cache misses
    /// after an index access are paired with it.
    pub baseaddr_array_len: usize,
    /// Saturating-counter threshold before indirect prefetching starts.
    pub confidence_threshold: u32,
    /// Maximum value of the confidence counter.
    pub confidence_max: u32,
    /// Stream-table stride confirmations required before the stream is
    /// considered established (and stream prefetching begins).
    pub stream_threshold: u32,
    /// How many lines ahead the stream prefetcher runs once established.
    pub stream_distance: u32,
    /// Initial back-off (in index accesses) after a failed IPD detection;
    /// doubles after each failure (Section 3.2.2).
    pub detect_backoff_initial: u32,
    /// Granularity Predictor: sampled cachelines per pattern (4).
    pub gp_samples: usize,
}

impl ImpConfig {
    /// The paper's default IMP configuration (Table 2).
    pub fn paper_default() -> Self {
        ImpConfig {
            pt_entries: 16,
            max_ways: 2,
            max_levels: 2,
            max_prefetch_distance: 16,
            ipd_entries: 4,
            shifts: vec![2, 3, 4, -3],
            baseaddr_array_len: 4,
            confidence_threshold: 2,
            confidence_max: 8,
            stream_threshold: 2,
            stream_distance: 4,
            detect_backoff_initial: 4,
            gp_samples: 4,
        }
    }
}

impl Default for ImpConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full system configuration (Table 1 plus run modes).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores / tiles (16, 64 or 256 in the paper).
    pub cores: u32,
    /// Core model.
    pub core_model: CoreModel,
    /// Reorder-buffer entries for the out-of-order core (32).
    pub rob_entries: u32,
    /// Memory subsystem mode.
    pub mem_mode: MemMode,
    /// Prefetcher attached to each L1, resolved against the prefetcher
    /// plugin registry at system-build time.
    pub prefetcher: PrefetcherSpec,
    /// Partial cacheline accessing mode.
    pub partial: PartialMode,
    /// Per-core dTLB and page-walk model (ideal — zero-cost — by
    /// default, which reproduces the pre-`imp-vm` simulator exactly).
    pub tlb: TlbConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// IMP parameters.
    pub imp: ImpConfig,
    /// Lead (in cycles) for the PerfectPrefetch mode.
    pub perfpref_lead: Cycle,
    /// Adaptive prefetcher manager attached to the system, resolved
    /// against the manager policy table at build time (`static`,
    /// `throttle`, `tree`). `None` — the default — runs unmanaged and
    /// keeps the canonical form (and therefore every stored result
    /// digest) identical to pre-manager builds.
    pub manager: Option<PrefetcherSpec>,
}

impl SystemConfig {
    /// The paper's baseline system scaled to `cores` (Table 1 and the
    /// scalability assumptions of Section 5.1): total L2 and total DRAM
    /// bandwidth scale with sqrt(N).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a positive perfect square (the mesh is
    /// sqrt(N) x sqrt(N)).
    pub fn paper_default(cores: u32) -> Self {
        let side = (cores as f64).sqrt() as u32;
        assert!(
            side * side == cores && cores > 0,
            "cores must be a perfect square"
        );
        // L2 slice: 2/sqrt(N) MB per tile.
        let l2_slice_bytes = 2 * 1024 * 1024 / u64::from(side);
        SystemConfig {
            cores,
            core_model: CoreModel::InOrder,
            rob_entries: 32,
            mem_mode: MemMode::Realistic,
            prefetcher: PrefetcherSpec::default(),
            partial: PartialMode::Off,
            tlb: TlbConfig::ideal(),
            mem: MemConfig {
                line_bytes: crate::LINE_BYTES,
                l1d: CacheConfig {
                    size_bytes: 32 * 1024,
                    associativity: 4,
                    latency: 1,
                    sectors: crate::L1_SECTORS,
                    mshrs: 64,
                },
                l2_slice: CacheConfig {
                    size_bytes: l2_slice_bytes,
                    associativity: 8,
                    latency: 8,
                    sectors: crate::L2_SECTORS,
                    mshrs: 32,
                },
                ackwise_k: 4,
                hop_latency: 2,
                flit_bytes: 8,
                mem_controllers: side,
                dram: DramModelKind::Simple,
                dram_latency: 100,
                dram_bytes_per_cycle: 10.0,
                dram_granule: 32,
            },
            imp: ImpConfig::paper_default(),
            perfpref_lead: 4096,
            manager: None,
        }
    }

    /// Mesh side length (sqrt of the core count).
    pub fn mesh_side(&self) -> u32 {
        (self.cores as f64).sqrt() as u32
    }

    /// Convenience: returns a copy with the prefetcher replaced. Accepts
    /// a [`PrefetcherKind`], a [`PrefetcherSpec`], or a spec string such
    /// as `"imp"` or `"stream:distance=8"`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec string; use `Sim::prefetcher` (which
    /// surfaces a `SimError`) or [`PrefetcherSpec`'s `FromStr`] when the
    /// string comes from untrusted input.
    #[must_use]
    pub fn with_prefetcher<S>(mut self, p: S) -> Self
    where
        S: TryInto<PrefetcherSpec>,
        S::Error: fmt::Display,
    {
        self.prefetcher = p.try_into().unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Convenience: returns a copy with the adaptive manager replaced.
    /// Accepts anything [`with_prefetcher`](Self::with_prefetcher)
    /// does; the spec names a manager policy (`static`, `throttle`,
    /// `tree:spec=...`), validated at system-build time.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec string, like `with_prefetcher`.
    #[must_use]
    pub fn with_manager<S>(mut self, m: S) -> Self
    where
        S: TryInto<PrefetcherSpec>,
        S::Error: fmt::Display,
    {
        self.manager = Some(m.try_into().unwrap_or_else(|e| panic!("{e}")));
        self
    }

    /// Convenience: returns a copy with the partial-accessing mode replaced.
    #[must_use]
    pub fn with_partial(mut self, p: PartialMode) -> Self {
        self.partial = p;
        self
    }

    /// Convenience: returns a copy with the memory mode replaced.
    #[must_use]
    pub fn with_mem_mode(mut self, m: MemMode) -> Self {
        self.mem_mode = m;
        self
    }

    /// Convenience: returns a copy with the core model replaced.
    #[must_use]
    pub fn with_core_model(mut self, m: CoreModel) -> Self {
        self.core_model = m;
        self
    }

    /// Convenience: returns a copy with the TLB configuration replaced.
    #[must_use]
    pub fn with_tlb(mut self, t: TlbConfig) -> Self {
        self.tlb = t;
        self
    }

    /// Canonical form for digesting: every field that can change a
    /// simulation result, rendered in a stable order. This is the
    /// configuration half of the content address `imp-store` files
    /// results under; see [`TlbConfig::canonical`] for the maintenance
    /// contract (timing-relevant fields must appear here).
    pub fn canonical(&self) -> String {
        let m = &self.mem;
        let i = &self.imp;
        let shifts: Vec<String> = i.shifts.iter().map(|s| s.to_string()).collect();
        // The manager suffix is appended only when a manager is set:
        // unmanaged configs keep their historical canonical form, so
        // every pre-manager store digest stays valid.
        let mgr = match &self.manager {
            None => String::new(),
            Some(spec) => format!(";mgr:{spec}"),
        };
        format!(
            "cores:{};core:{:?};rob:{};mode:{:?};pf:{};partial:{:?};{};\
             mem[line:{},l1:{}/{}/{}/{}/{},l2:{}/{}/{}/{}/{},ack:{},hop:{},flit:{},\
             mc:{},dram:{:?}/{}/{:?}/{}];\
             imp[pt:{},ways:{},lvls:{},dist:{},ipd:{},shifts:{},ba:{},conf:{}/{},\
             stream:{}/{},backoff:{},gp:{}];lead:{}{}",
            self.cores,
            self.core_model,
            self.rob_entries,
            self.mem_mode,
            self.prefetcher,
            self.partial,
            self.tlb.canonical(),
            m.line_bytes,
            m.l1d.size_bytes,
            m.l1d.associativity,
            m.l1d.latency,
            m.l1d.sectors,
            m.l1d.mshrs,
            m.l2_slice.size_bytes,
            m.l2_slice.associativity,
            m.l2_slice.latency,
            m.l2_slice.sectors,
            m.l2_slice.mshrs,
            m.ackwise_k,
            m.hop_latency,
            m.flit_bytes,
            m.mem_controllers,
            m.dram,
            m.dram_latency,
            m.dram_bytes_per_cycle,
            m.dram_granule,
            i.pt_entries,
            i.max_ways,
            i.max_levels,
            i.max_prefetch_distance,
            i.ipd_entries,
            shifts.join("/"),
            i.baseaddr_array_len,
            i.confidence_threshold,
            i.confidence_max,
            i.stream_threshold,
            i.stream_distance,
            i.detect_backoff_initial,
            i.gp_samples,
            self.perfpref_lead,
            mgr,
        )
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scaling_assumptions() {
        // Total L2 = 2 * sqrt(N) MB; MCs = sqrt(N).
        for (n, total_l2_mb, mcs) in [(16u32, 8u64, 4u32), (64, 16, 8), (256, 32, 16)] {
            let c = SystemConfig::paper_default(n);
            let total = c.mem.l2_slice.size_bytes * u64::from(n);
            assert_eq!(total, total_l2_mb * 1024 * 1024, "N={n}");
            assert_eq!(c.mem.mem_controllers, mcs, "N={n}");
        }
    }

    #[test]
    fn table1_fixed_parameters() {
        let c = SystemConfig::paper_default(64);
        assert_eq!(c.mem.line_bytes, 64);
        assert_eq!(c.mem.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.mem.l1d.associativity, 4);
        assert_eq!(c.mem.l2_slice.associativity, 8);
        assert_eq!(c.mem.hop_latency, 2);
        assert_eq!(c.mem.flit_bytes, 8);
        assert_eq!(c.mem.ackwise_k, 4);
        assert_eq!(c.mem.dram_latency, 100);
        assert!((c.mem.dram_bytes_per_cycle - 10.0).abs() < 1e-9);
    }

    #[test]
    fn table2_imp_parameters() {
        let i = ImpConfig::paper_default();
        assert_eq!(i.pt_entries, 16);
        assert_eq!(i.max_ways, 2);
        assert_eq!(i.max_levels, 2);
        assert_eq!(i.max_prefetch_distance, 16);
        assert_eq!(i.ipd_entries, 4);
        assert_eq!(i.shifts, vec![2, 3, 4, -3]);
        assert_eq!(i.baseaddr_array_len, 4);
        assert_eq!(i.gp_samples, 4);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_core_count_rejected() {
        let _ = SystemConfig::paper_default(48);
    }

    #[test]
    fn spec_parses_and_round_trips() {
        let spec: PrefetcherSpec = "imp:distance=8,partial=true,scale=0.5,tag=x"
            .parse()
            .unwrap();
        assert_eq!(spec.name, "imp");
        assert_eq!(spec.get("distance"), Some(&ParamValue::Int(8)));
        assert_eq!(spec.get("partial"), Some(&ParamValue::Bool(true)));
        assert_eq!(spec.get("scale"), Some(&ParamValue::Float(0.5)));
        assert_eq!(spec.get("tag"), Some(&ParamValue::Str("x".to_string())));
        let rendered = spec.to_string();
        assert_eq!(rendered.parse::<PrefetcherSpec>().unwrap(), spec);
        assert_eq!(
            "ghb".parse::<PrefetcherSpec>().unwrap(),
            PrefetcherSpec::new("ghb")
        );
    }

    #[test]
    fn spec_rejects_malformed_text() {
        assert!("".parse::<PrefetcherSpec>().is_err());
        assert!(":a=1".parse::<PrefetcherSpec>().is_err());
        assert!("imp:distance".parse::<PrefetcherSpec>().is_err());
    }

    #[test]
    fn tlb_defaults_are_ideal_and_finite_builders_compose() {
        let cfg = SystemConfig::paper_default(64);
        assert!(cfg.tlb.ideal, "default must reproduce the seed simulator");
        assert_eq!(cfg.tlb, TlbConfig::ideal());

        let t = TlbConfig::finite()
            .with_ways(8)
            .with_page_bytes(64 * 1024)
            .with_policy(TranslationPolicy::NonBlockingWalk)
            .with_walk_latency(10);
        assert!(!t.ideal);
        assert_eq!(t.entries(), 16 * 8);
        assert_eq!(t.reach_bytes(), 128 * 64 * 1024);
        assert_eq!(t.policy, TranslationPolicy::NonBlockingWalk);

        assert_eq!(TlbConfig::ideal().finite_or_self(), TlbConfig::finite());
        assert_eq!(t.finite_or_self(), t);
        assert_eq!(
            SystemConfig::paper_default(16).with_tlb(t).tlb.page_bytes,
            64 * 1024
        );
    }

    #[test]
    fn l2_tlb_and_walk_model_knobs_compose_and_default_off() {
        let f = TlbConfig::finite();
        assert!(!f.has_l2(), "no L2 TLB unless asked for");
        assert!(!f.tlb_prefetch);
        assert_eq!(f.walk_model, WalkModel::Flat);

        let t = TlbConfig::finite()
            .with_l2(128, 8)
            .with_l2_latency(12)
            .with_tlb_prefetch(true)
            .with_walk_model(WalkModel::Cached);
        assert!(t.has_l2());
        assert_eq!(t.l2_entries(), 1024);
        assert_eq!(t.l2_reach_bytes(), 1024 * 4096);
        assert_eq!(t.l2_latency, 12);
        assert!(t.tlb_prefetch);
        assert_eq!(t.walk_model, WalkModel::Cached);
        assert!(!t.with_l2(0, 0).has_l2());
        assert_eq!(WalkModel::Flat.name(), "flat");
        assert_eq!(WalkModel::Cached.name(), "cached");
    }

    #[test]
    fn huge_page_knobs_and_policies_compose() {
        let f = TlbConfig::finite();
        assert_eq!(f.huge_page_bytes(), 2 * 1024 * 1024, "4 KB base -> 2 MB");
        assert_eq!(f.huge_entries(), 32, "Skylake-style 2M dTLB sizing");
        assert_eq!(f.huge_reach_bytes(), 32 * 2 * 1024 * 1024);
        let t = f.with_huge_tlb(4, 2).with_page_bytes(64 * 1024);
        assert_eq!((t.huge_sets, t.huge_ways), (4, 2));
        assert_eq!(t.huge_page_bytes(), (64 * 1024) << 9, "one level up");

        assert!(!PagePolicy::Base4K.is_huge_for(u64::MAX));
        assert!(PagePolicy::Huge2M.is_huge_for(0));
        let auto = PagePolicy::Auto {
            threshold_bytes: 1 << 20,
        };
        assert!(!auto.is_huge_for((1 << 20) - 1));
        assert!(auto.is_huge_for(1 << 20));
        assert_eq!(PagePolicy::default(), PagePolicy::Base4K);
        assert_eq!(
            [
                PagePolicy::Base4K.name(),
                PagePolicy::Huge2M.name(),
                auto.name()
            ],
            ["4k", "2m", "auto"]
        );

        let r = MemRegion {
            name: "pr0".into(),
            base: 0x1_0000,
            bytes: 4096,
            policy: PagePolicy::Huge2M,
        };
        assert_eq!(r.end(), 0x1_1000);
    }

    #[test]
    fn canonical_forms_are_stable_and_distinguish_configs() {
        let a = SystemConfig::paper_default(16);
        assert_eq!(a.canonical(), a.clone().canonical(), "deterministic");
        // Every knob that changes timing must change the canonical form.
        let variants = [
            a.clone().with_prefetcher(PrefetcherKind::Imp),
            a.clone().with_partial(PartialMode::NocAndDram),
            a.clone().with_mem_mode(MemMode::Ideal),
            a.clone().with_core_model(CoreModel::OutOfOrder),
            a.clone().with_tlb(TlbConfig::finite()),
            a.clone().with_manager("static"),
            SystemConfig::paper_default(64),
        ];
        for v in &variants {
            assert_ne!(a.canonical(), v.canonical(), "{}", v.canonical());
        }
        // Manager specs distinguish each other, and the unmanaged form
        // carries no manager suffix at all (pre-manager digests must
        // stay valid).
        assert!(!a.canonical().contains(";mgr:"));
        assert_ne!(
            a.clone().with_manager("static").canonical(),
            a.clone().with_manager("throttle").canonical()
        );
        assert!(a
            .clone()
            .with_manager("throttle:epoch=5000")
            .canonical()
            .ends_with(";mgr:throttle:epoch=5000"));
        // TLB canonical: ideal collapses, finite knobs all surface.
        assert_eq!(TlbConfig::ideal().canonical(), "tlb[ideal]");
        let f = TlbConfig::finite();
        for other in [
            f.with_ways(8),
            f.with_page_bytes(1 << 16),
            f.with_policy(TranslationPolicy::NonBlockingWalk),
            f.with_l2(128, 8),
            f.with_tlb_prefetch(true),
            f.with_walk_model(WalkModel::Cached),
            f.with_huge_tlb(4, 2),
        ] {
            assert_ne!(f.canonical(), other.canonical(), "{}", other.canonical());
        }
        // Page policies: the Auto threshold is part of the identity.
        assert_eq!(PagePolicy::Base4K.canonical(), "4k");
        assert_eq!(PagePolicy::Huge2M.canonical(), "2m");
        assert_ne!(
            PagePolicy::Auto { threshold_bytes: 1 }.canonical(),
            PagePolicy::Auto { threshold_bytes: 2 }.canonical()
        );
    }

    #[test]
    fn kind_converts_to_spec() {
        for (kind, name) in [
            (PrefetcherKind::None, "none"),
            (PrefetcherKind::Stream, "stream"),
            (PrefetcherKind::Imp, "imp"),
            (PrefetcherKind::Ghb, "ghb"),
        ] {
            assert_eq!(PrefetcherSpec::from(kind), PrefetcherSpec::new(name));
        }
        let cfg = SystemConfig::paper_default(16).with_prefetcher(PrefetcherKind::Imp);
        assert_eq!(cfg.prefetcher.name, "imp");
        let cfg = cfg.with_prefetcher("hybrid:components=stream+imp");
        assert_eq!(cfg.prefetcher.name, "hybrid");
    }
}
