//! System configuration (Table 1) and IMP configuration (Table 2).

use crate::Cycle;

/// Core microarchitecture model (Section 6.3.1 compares these).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoreModel {
    /// In-order, single-issue (the paper's default core, Table 1).
    #[default]
    InOrder,
    /// Modest out-of-order core with a 32-entry reorder buffer, mimicking
    /// a Silvermont-class many-core design (Section 6.3.1).
    OutOfOrder,
}

/// Which hardware prefetcher is attached to each L1 data cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PrefetcherKind {
    /// No prefetching at all.
    None,
    /// Stream prefetcher only (the paper's *Baseline*).
    #[default]
    Stream,
    /// Stream prefetcher plus IMP (the paper's contribution).
    Imp,
    /// Stream prefetcher plus a Global History Buffer correlation
    /// prefetcher (Section 5.4 comparison).
    Ghb,
}

/// Execution mode of the memory subsystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemMode {
    /// Full model: caches, coherence, NoC, DRAM (Baseline/IMP/etc.).
    #[default]
    Realistic,
    /// *Perfect Prefetching*: every access hits in L1, but each would-be
    /// miss still pushes a full line transfer through the NoC and DRAM;
    /// a core may run at most `perfpref_lead` cycles ahead of its oldest
    /// incomplete fetch. Finite-bandwidth upper bound for any prefetcher.
    PerfectPrefetch,
    /// *Ideal*: every access hits in L1 and generates no traffic.
    Ideal,
}

/// Partial cacheline accessing mode (Section 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartialMode {
    /// Always move full cache lines.
    #[default]
    Off,
    /// Partial lines between L1 and L2 (NoC) only; DRAM still moves
    /// full lines.
    NocOnly,
    /// Partial lines in the NoC and 32-byte-granule accesses to DRAM.
    NocAndDram,
}

/// DRAM timing model selection (Table 1 lists both).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DramModelKind {
    /// Simple model: fixed 100 ns latency, 10 GB/s per memory controller.
    /// The paper reports this is within 5% of DRAMSim and uses it for the
    /// partial-accessing experiments.
    #[default]
    Simple,
    /// Banked DDR3-like model (10-10-10-24, 8 banks per rank, 1 rank per
    /// controller), standing in for DRAMSim.
    Ddr3,
}

/// Cache geometry for one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Access latency in cycles (tag + data).
    pub latency: Cycle,
    /// Number of sectors per line when partial accessing is enabled
    /// (1 means the cache is not sectored).
    pub sectors: u32,
    /// Number of MSHRs (outstanding misses, demand + prefetch).
    pub mshrs: u32,
}

/// Memory-hierarchy configuration derived from Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct MemConfig {
    /// Cache line size in bytes (64 in the paper).
    pub line_bytes: u64,
    /// Private L1 data cache (32 KB, 4-way).
    pub l1d: CacheConfig,
    /// Shared L2 slice per tile (2/sqrt(N) MB, 8-way).
    pub l2_slice: CacheConfig,
    /// ACKwise sharer-pointer count: broadcast when sharers exceed this.
    pub ackwise_k: u32,
    /// NoC hop latency in cycles (1 router + 1 link).
    pub hop_latency: Cycle,
    /// Flit width in bytes (64 bits).
    pub flit_bytes: u64,
    /// Number of memory controllers (sqrt(N), diamond placement).
    pub mem_controllers: u32,
    /// DRAM model.
    pub dram: DramModelKind,
    /// Simple-model DRAM latency in cycles (100 ns at 1 GHz).
    pub dram_latency: Cycle,
    /// Simple-model per-controller bandwidth in bytes per cycle
    /// (10 GB/s at 1 GHz = 10 B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// Minimum DRAM transfer granule in bytes (32 B, Section 4.1).
    pub dram_granule: u64,
}

/// IMP hardware parameters (Table 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImpConfig {
    /// Prefetch Table entries (16).
    pub pt_entries: usize,
    /// Maximum indirect ways per primary pattern (2).
    pub max_ways: usize,
    /// Maximum indirect levels per way (2).
    pub max_levels: usize,
    /// Maximum indirect prefetch distance (16).
    pub max_prefetch_distance: u32,
    /// Indirect Pattern Detector entries (4).
    pub ipd_entries: usize,
    /// Candidate shift values. `2, 3, 4` are left shifts (coefficients
    /// 4, 8, 16); `-3` is a right shift (coefficient 1/8 for bit vectors).
    pub shifts: Vec<i8>,
    /// BaseAddr array length per IPD entry (4): how many cache misses
    /// after an index access are paired with it.
    pub baseaddr_array_len: usize,
    /// Saturating-counter threshold before indirect prefetching starts.
    pub confidence_threshold: u32,
    /// Maximum value of the confidence counter.
    pub confidence_max: u32,
    /// Stream-table stride confirmations required before the stream is
    /// considered established (and stream prefetching begins).
    pub stream_threshold: u32,
    /// How many lines ahead the stream prefetcher runs once established.
    pub stream_distance: u32,
    /// Initial back-off (in index accesses) after a failed IPD detection;
    /// doubles after each failure (Section 3.2.2).
    pub detect_backoff_initial: u32,
    /// Granularity Predictor: sampled cachelines per pattern (4).
    pub gp_samples: usize,
}

impl ImpConfig {
    /// The paper's default IMP configuration (Table 2).
    pub fn paper_default() -> Self {
        ImpConfig {
            pt_entries: 16,
            max_ways: 2,
            max_levels: 2,
            max_prefetch_distance: 16,
            ipd_entries: 4,
            shifts: vec![2, 3, 4, -3],
            baseaddr_array_len: 4,
            confidence_threshold: 2,
            confidence_max: 8,
            stream_threshold: 2,
            stream_distance: 4,
            detect_backoff_initial: 4,
            gp_samples: 4,
        }
    }
}

impl Default for ImpConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full system configuration (Table 1 plus run modes).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores / tiles (16, 64 or 256 in the paper).
    pub cores: u32,
    /// Core model.
    pub core_model: CoreModel,
    /// Reorder-buffer entries for the out-of-order core (32).
    pub rob_entries: u32,
    /// Memory subsystem mode.
    pub mem_mode: MemMode,
    /// Prefetcher attached to each L1.
    pub prefetcher: PrefetcherKind,
    /// Partial cacheline accessing mode.
    pub partial: PartialMode,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// IMP parameters.
    pub imp: ImpConfig,
    /// Lead (in cycles) for the PerfectPrefetch mode.
    pub perfpref_lead: Cycle,
}

impl SystemConfig {
    /// The paper's baseline system scaled to `cores` (Table 1 and the
    /// scalability assumptions of Section 5.1): total L2 and total DRAM
    /// bandwidth scale with sqrt(N).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a positive perfect square (the mesh is
    /// sqrt(N) x sqrt(N)).
    pub fn paper_default(cores: u32) -> Self {
        let side = (cores as f64).sqrt() as u32;
        assert!(side * side == cores && cores > 0, "cores must be a perfect square");
        // L2 slice: 2/sqrt(N) MB per tile.
        let l2_slice_bytes = 2 * 1024 * 1024 / u64::from(side);
        SystemConfig {
            cores,
            core_model: CoreModel::InOrder,
            rob_entries: 32,
            mem_mode: MemMode::Realistic,
            prefetcher: PrefetcherKind::Stream,
            partial: PartialMode::Off,
            mem: MemConfig {
                line_bytes: crate::LINE_BYTES,
                l1d: CacheConfig {
                    size_bytes: 32 * 1024,
                    associativity: 4,
                    latency: 1,
                    sectors: crate::L1_SECTORS,
                    mshrs: 64,
                },
                l2_slice: CacheConfig {
                    size_bytes: l2_slice_bytes,
                    associativity: 8,
                    latency: 8,
                    sectors: crate::L2_SECTORS,
                    mshrs: 32,
                },
                ackwise_k: 4,
                hop_latency: 2,
                flit_bytes: 8,
                mem_controllers: side,
                dram: DramModelKind::Simple,
                dram_latency: 100,
                dram_bytes_per_cycle: 10.0,
                dram_granule: 32,
            },
            imp: ImpConfig::paper_default(),
            perfpref_lead: 4096,
        }
    }

    /// Mesh side length (sqrt of the core count).
    pub fn mesh_side(&self) -> u32 {
        (self.cores as f64).sqrt() as u32
    }

    /// Convenience: returns a copy with the prefetcher replaced.
    #[must_use]
    pub fn with_prefetcher(mut self, p: PrefetcherKind) -> Self {
        self.prefetcher = p;
        self
    }

    /// Convenience: returns a copy with the partial-accessing mode replaced.
    #[must_use]
    pub fn with_partial(mut self, p: PartialMode) -> Self {
        self.partial = p;
        self
    }

    /// Convenience: returns a copy with the memory mode replaced.
    #[must_use]
    pub fn with_mem_mode(mut self, m: MemMode) -> Self {
        self.mem_mode = m;
        self
    }

    /// Convenience: returns a copy with the core model replaced.
    #[must_use]
    pub fn with_core_model(mut self, m: CoreModel) -> Self {
        self.core_model = m;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scaling_assumptions() {
        // Total L2 = 2 * sqrt(N) MB; MCs = sqrt(N).
        for (n, total_l2_mb, mcs) in [(16u32, 8u64, 4u32), (64, 16, 8), (256, 32, 16)] {
            let c = SystemConfig::paper_default(n);
            let total = c.mem.l2_slice.size_bytes * u64::from(n);
            assert_eq!(total, total_l2_mb * 1024 * 1024, "N={n}");
            assert_eq!(c.mem.mem_controllers, mcs, "N={n}");
        }
    }

    #[test]
    fn table1_fixed_parameters() {
        let c = SystemConfig::paper_default(64);
        assert_eq!(c.mem.line_bytes, 64);
        assert_eq!(c.mem.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.mem.l1d.associativity, 4);
        assert_eq!(c.mem.l2_slice.associativity, 8);
        assert_eq!(c.mem.hop_latency, 2);
        assert_eq!(c.mem.flit_bytes, 8);
        assert_eq!(c.mem.ackwise_k, 4);
        assert_eq!(c.mem.dram_latency, 100);
        assert!((c.mem.dram_bytes_per_cycle - 10.0).abs() < 1e-9);
    }

    #[test]
    fn table2_imp_parameters() {
        let i = ImpConfig::paper_default();
        assert_eq!(i.pt_entries, 16);
        assert_eq!(i.max_ways, 2);
        assert_eq!(i.max_levels, 2);
        assert_eq!(i.max_prefetch_distance, 16);
        assert_eq!(i.ipd_entries, 4);
        assert_eq!(i.shifts, vec![2, 3, 4, -3]);
        assert_eq!(i.baseaddr_array_len, 4);
        assert_eq!(i.gp_samples, 4);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_core_count_rejected() {
        let _ = SystemConfig::paper_default(48);
    }
}
