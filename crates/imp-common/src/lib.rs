//! Common foundation types for the IMP (Indirect Memory Prefetcher)
//! reproduction: addresses, cycles, system/prefetcher configuration
//! (Tables 1 and 2 of the paper), a deterministic discrete-event queue,
//! statistics counters, and a small seedable RNG.
//!
//! Everything in this crate is dependency-free and deterministic; the
//! simulator built on top of it replays identically for a given seed.
//!
//! # Example
//!
//! ```
//! use imp_common::{Addr, LineAddr, config::SystemConfig};
//!
//! let cfg = SystemConfig::paper_default(64);
//! assert_eq!(cfg.cores, 64);
//! let a = Addr::new(0x1234);
//! assert_eq!(LineAddr::containing(a).base().raw(), 0x1200);
//! ```

pub mod addr;
pub mod config;
pub mod event;
pub mod hash;
pub mod rng;
pub mod stats;

pub use addr::{Addr, LineAddr, Pc, SectorMask};
pub use config::{
    CoreModel, ImpConfig, MemConfig, MemRegion, PagePolicy, ParamValue, PrefetcherKind,
    PrefetcherSpec, SystemConfig, TlbConfig, TranslationPolicy, WalkModel,
};
pub use event::EventQueue;
pub use hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use rng::{fnv1a, SplitMix64};
pub use stats::{CoreStats, PrefetchStats, SystemStats, TlbStats, TrafficStats};

/// Simulated time, in core clock cycles (1 GHz in the paper's Table 1).
pub type Cycle = u64;

/// Number of bytes in a cache line throughout the modelled system (Table 1).
pub const LINE_BYTES: u64 = 64;

/// L1 sector size in bytes for partial cacheline accessing (Table 2):
/// one on-die network flit.
pub const L1_SECTOR_BYTES: u64 = 8;

/// L2 sector size in bytes for partial cacheline accessing (Table 2):
/// half a cache line, matching the assumed minimum DRAM transfer.
pub const L2_SECTOR_BYTES: u64 = 32;

/// Number of L1 sectors per line.
pub const L1_SECTORS: u32 = (LINE_BYTES / L1_SECTOR_BYTES) as u32;

/// Number of L2 sectors per line.
pub const L2_SECTORS: u32 = (LINE_BYTES / L2_SECTOR_BYTES) as u32;
