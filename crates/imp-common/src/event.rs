//! A deterministic discrete-event queue.
//!
//! Events with equal timestamps are popped in insertion order, which makes
//! whole-system simulations replay identically run to run.
//!
//! Internally the queue is a *calendar wheel*: a ring of
//! `WHEEL_SLOTS` FIFO buckets covers the near future (where almost
//! every simulation event lands — core wakes at `now + 1`, fixed NoC
//! hop and DRAM latencies), so push and pop are O(1) array operations
//! instead of binary-heap sift-downs. Events beyond the wheel horizon
//! go to a sorted overflow heap and are merged back in timestamp order
//! at pop time. The observable order is identical to a plain priority
//! queue with a `(time, seq)` key: strictly by time, FIFO within a
//! time.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Number of near-future buckets the calendar wheel covers (one bucket
/// per cycle). Must be a power of two and a multiple of 64.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: usize = WHEEL_SLOTS - 1;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// A time-ordered queue of events of type `E`.
///
/// # Example
///
/// ```
/// use imp_common::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // FIFO among equal times
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Bucket `t & WHEEL_MASK` holds the events at absolute time `t`
    /// for every `t` in `[base, base + WHEEL_SLOTS)`, each in push
    /// order (which is seq order, since seq is monotonic).
    wheel: Box<[VecDeque<(u64, E)>]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WHEEL_WORDS],
    /// Events currently resident in the wheel.
    wheel_len: usize,
    /// The earliest time the wheel can currently hold. Never moves
    /// backwards, and only advances to times whose earlier buckets have
    /// drained, so each bucket always holds at most one distinct time.
    base: Cycle,
    /// Events outside the wheel window: far-future timestamps, plus the
    /// (degenerate) case of a push earlier than `base`.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    len: usize,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            wheel_len: 0,
            base: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: Cycle, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if time >= self.base && time - self.base < WHEEL_SLOTS as Cycle {
            let b = (time as usize) & WHEEL_MASK;
            self.wheel[b].push_back((seq, payload));
            self.occupied[b / 64] |= 1 << (b % 64);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(Entry { time, seq, payload }));
        }
    }

    /// Removes and returns the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        let wheel_min = self.wheel_min();
        let take_overflow = match (wheel_min, self.overflow.peek()) {
            (None, Some(_)) => true,
            (Some((wt, ws, _)), Some(Reverse(o))) => (o.time, o.seq) < (wt, ws),
            _ => false,
        };
        self.len -= 1;
        if take_overflow {
            let Reverse(e) = self.overflow.pop().expect("peeked above");
            // Never move `base` backwards: a push earlier than `base`
            // must not re-open buckets that already drained.
            self.base = self.base.max(e.time);
            return Some((e.time, e.payload));
        }
        let (time, _, b) = wheel_min.expect("len > 0 and overflow did not win");
        let (_, payload) = self.wheel[b].pop_front().expect("occupied bucket");
        if self.wheel[b].is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.wheel_len -= 1;
        self.base = time;
        Some((time, payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        let wheel = self.wheel_min().map(|(t, s, _)| (t, s));
        let over = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o).0),
            (Some((t, _)), None) | (None, Some((t, _))) => Some(t),
            (None, None) => None,
        }
    }

    /// Earliest wheel event as `(time, seq, bucket)`: the first
    /// occupied bucket scanning the occupancy bitmap in circular order
    /// from `base` (bucket order from `base` is time order, since each
    /// bucket holds one distinct time within the window).
    #[inline]
    fn wheel_min(&self) -> Option<(Cycle, u64, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.base as usize) & WHEEL_MASK;
        let (sw, sb) = (start / 64, start % 64);
        let mut bucket = None;
        let first = self.occupied[sw] & (!0u64 << sb);
        if first != 0 {
            bucket = Some(sw * 64 + first.trailing_zeros() as usize);
        } else {
            for i in 1..=WHEEL_WORDS {
                let wi = (sw + i) % WHEEL_WORDS;
                let mut w = self.occupied[wi];
                if wi == sw {
                    // Wrapped all the way around: only the bits below
                    // the start position remain unchecked.
                    w &= (1u64 << sb) - 1;
                }
                if w != 0 {
                    bucket = Some(wi * 64 + w.trailing_zeros() as usize);
                    break;
                }
            }
        }
        let b = bucket.expect("wheel_len > 0 implies an occupied bucket");
        let time = self.base + ((b.wrapping_sub(start) & WHEEL_MASK) as Cycle);
        let &(seq, _) = self.wheel[b].front().expect("occupied bucket");
        Some((time, seq, b))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(3, 30);
        q.push(1, 10);
        q.push(2, 20);
        q.push(1, 11);
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(1, 10), (1, 11), (2, 20), (3, 30)]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn large_interleaving_is_stable() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(i % 10, i);
        }
        let mut last: Option<(u64, u64)> = None;
        while let Some((t, v)) = q.pop() {
            if let Some((lt, lv)) = last {
                // Within equal times, payloads must come out in insertion order.
                if t == lt {
                    assert!(v > lv);
                }
                assert!(t >= lt);
            }
            last = Some((t, v));
        }
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = EventQueue::new();
        q.push(WHEEL_SLOTS as u64 * 5, "far");
        q.push(1, "near");
        q.push(WHEEL_SLOTS as u64 * 5, "far2");
        assert_eq!(q.pop(), Some((1, "near")));
        // After the jump, the wheel re-bases at the overflow time.
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as u64 * 5, "far")));
        q.push(WHEEL_SLOTS as u64 * 5 + 1, "next");
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as u64 * 5, "far2")));
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as u64 * 5 + 1, "next")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_fifo_across_wheel_and_overflow() {
        let mut q = EventQueue::new();
        // Pushed while out of the window: lands in overflow.
        let t = WHEEL_SLOTS as u64 + 100;
        q.push(t, 0);
        q.push(0, 99);
        assert_eq!(q.pop(), Some((0, 99)));
        // Now `t` is within the (re-based) window: lands in the wheel.
        q.push(t, 1);
        // Overflow's seq is lower, so it must still pop first.
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
    }

    #[test]
    fn push_earlier_than_base_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(500, "late");
        q.push(500, "late2");
        assert_eq!(q.pop(), Some((500, "late")));
        // A (degenerate) push into the past must still come out before
        // anything later.
        q.push(100, "past");
        q.push(501, "later");
        assert_eq!(q.pop(), Some((100, "past")));
        assert_eq!(q.pop(), Some((500, "late2")));
        assert_eq!(q.pop(), Some((501, "later")));
    }

    #[test]
    fn wheel_wraps_across_its_horizon() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for round in 0..10u64 {
            for i in 0..7u64 {
                let t = round * 700 + i * 97;
                q.push(t, (round, i));
                expect.push((t, (round, i)));
            }
        }
        expect.sort_by_key(|&(t, _)| t); // stable: preserves push order per time
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, expect);
    }
}
