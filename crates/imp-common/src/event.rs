//! A deterministic discrete-event queue.
//!
//! Events with equal timestamps are popped in insertion order, which makes
//! whole-system simulations replay identically run to run.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events of type `E`.
///
/// # Example
///
/// ```
/// use imp_common::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // FIFO among equal times
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: Cycle, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(3, 30);
        q.push(1, 10);
        q.push(2, 20);
        q.push(1, 11);
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(1, 10), (1, 11), (2, 20), (3, 30)]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn large_interleaving_is_stable() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(i % 10, i);
        }
        let mut last: Option<(u64, u64)> = None;
        while let Some((t, v)) = q.pop() {
            if let Some((lt, lv)) = last {
                // Within equal times, payloads must come out in insertion order.
                if t == lt {
                    assert!(v > lv);
                }
                assert!(t >= lt);
            }
            last = Some((t, v));
        }
    }
}
