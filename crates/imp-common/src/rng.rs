//! A tiny deterministic RNG (SplitMix64) for components that need cheap
//! pseudo-randomness (e.g. the Granularity Predictor's line sampling)
//! without pulling a full RNG crate into the simulator's hot path.

/// SplitMix64: a fast, high-quality 64-bit generator with trivial seeding.
///
/// # Example
///
/// ```
/// use imp_common::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// 64-bit FNV-1a over `bytes`: a cheap, dependency-free hash used for
/// seed mixing and as the `.imptrace` integrity checksum. Not
/// cryptographic — it detects corruption, not tampering.
///
/// # Example
///
/// ```
/// use imp_common::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a(b"spmv"), fnv1a(b"symgs"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
