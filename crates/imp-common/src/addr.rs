//! Address newtypes: virtual byte addresses, cache-line addresses, program
//! counters, and sector masks for partial cacheline accessing.

use crate::{L1_SECTORS, L1_SECTOR_BYTES, LINE_BYTES};
use std::fmt;

/// A 48-bit virtual byte address.
///
/// The paper assumes a 48-bit address space when sizing the Prefetch Table
/// and Indirect Pattern Detector (Section 6.4.1); we keep addresses in a
/// `u64` but all allocated addresses stay below 2^48.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: i64) -> Self {
        Addr(self.0.wrapping_add(bytes as u64))
    }

    /// Byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-aligned address (the line number, not the byte address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Line containing byte address `a`.
    pub const fn containing(a: Addr) -> Self {
        LineAddr(a.0 / LINE_BYTES)
    }

    /// Creates a line address from a raw line number.
    pub const fn from_line_number(n: u64) -> Self {
        LineAddr(n)
    }

    /// The line number (byte address divided by the line size).
    pub const fn number(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The `n`-th line after this one.
    #[must_use]
    pub const fn step(self, n: i64) -> Self {
        LineAddr(self.0.wrapping_add(n as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0 * LINE_BYTES)
    }
}

/// A static instruction identifier (program counter).
///
/// Workload kernels assign a stable `Pc` to each load/store site; IMP's
/// Prefetch Table is indexed by the PC of the index-array access, which is
/// what makes the nested-loop optimization of Section 3.3.1 work.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u32);

impl Pc {
    /// Creates a PC from a raw identifier.
    pub const fn new(raw: u32) -> Self {
        Pc(raw)
    }

    /// Returns the raw identifier.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({})", self.0)
    }
}

/// A bit mask of valid/requested sectors within one cache line.
///
/// Bit `i` covers bytes `[i * sector_bytes, (i + 1) * sector_bytes)`. With
/// the paper's parameters a line has 8 L1 sectors (8 B each) or 2 L2
/// sectors (32 B each); an 8-bit mask covers both, with L2 masks using only
/// the low 2 bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectorMask(u8);

impl SectorMask {
    /// No sectors.
    pub const EMPTY: SectorMask = SectorMask(0);

    /// All 8 L1 sectors (a full line).
    pub const FULL_L1: SectorMask = SectorMask(0xFF);

    /// All 2 L2 sectors (a full line).
    pub const FULL_L2: SectorMask = SectorMask(0b11);

    /// Creates a mask from raw bits.
    pub const fn from_bits(bits: u8) -> Self {
        SectorMask(bits)
    }

    /// Raw mask bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Full mask for a line divided into `sectors` sectors.
    pub const fn full(sectors: u32) -> Self {
        if sectors >= 8 {
            SectorMask(0xFF)
        } else {
            SectorMask(((1u16 << sectors) - 1) as u8)
        }
    }

    /// The L1 sector mask touched by an access of `size` bytes at `addr`.
    ///
    /// Accesses never straddle lines in the modelled workloads; if one
    /// would, the mask is clipped to the containing line.
    pub fn l1_touch(addr: Addr, size: u32) -> Self {
        let first = addr.line_offset() / L1_SECTOR_BYTES;
        let last_byte = (addr.line_offset() + u64::from(size.max(1)) - 1).min(LINE_BYTES - 1);
        let last = last_byte / L1_SECTOR_BYTES;
        let mut m = 0u8;
        let mut s = first;
        while s <= last {
            m |= 1 << s;
            s += 1;
        }
        SectorMask(m)
    }

    /// Widens an L1 (8-sector) mask to the L2 (2-sector) granularity:
    /// each 32 B L2 sector is needed if any of its four 8 B L1 sectors is.
    pub const fn widen_to_l2(self) -> Self {
        let lo = if self.0 & 0x0F != 0 { 1 } else { 0 };
        let hi = if self.0 & 0xF0 != 0 { 2 } else { 0 };
        SectorMask(lo | hi)
    }

    /// Number of sectors set.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no sector is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when every sector of the given count is set.
    pub const fn is_full(self, sectors: u32) -> bool {
        self.0 == Self::full(sectors).0
    }

    /// Sectors in `self` that are not in `other`.
    #[must_use]
    pub const fn minus(self, other: Self) -> Self {
        SectorMask(self.0 & !other.0)
    }

    /// Union of two masks.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        SectorMask(self.0 | other.0)
    }

    /// Intersection of two masks.
    #[must_use]
    pub const fn intersect(self, other: Self) -> Self {
        SectorMask(self.0 & other.0)
    }

    /// True if all sectors of `other` are contained in `self`.
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of bytes covered by this mask at L1 granularity.
    pub const fn l1_bytes(self) -> u64 {
        self.count() as u64 * L1_SECTOR_BYTES
    }

    /// A mask of `granu` consecutive L1 sectors, aligned to `granu`,
    /// covering the sector that contains `addr`. Used when IMP issues a
    /// partial prefetch of the predicted granularity (Section 4.2).
    pub fn l1_granule_around(addr: Addr, granu: u32) -> Self {
        let granu = granu.clamp(1, L1_SECTORS);
        let sector = (addr.line_offset() / L1_SECTOR_BYTES) as u32;
        let start = sector / granu * granu;
        let mut m = 0u8;
        for s in start..(start + granu).min(L1_SECTORS) {
            m |= 1 << s;
        }
        SectorMask(m)
    }

    /// Length of the smallest run of consecutive set sectors, or `None`
    /// for an empty mask. This is the paper's `min_granu` statistic.
    pub fn min_consecutive_run(self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let mut best = u32::MAX;
        let mut run = 0u32;
        for i in 0..8 {
            if self.0 & (1 << i) != 0 {
                run += 1;
            } else if run > 0 {
                best = best.min(run);
                run = 0;
            }
        }
        if run > 0 {
            best = best.min(run);
        }
        Some(best)
    }
}

impl fmt::Debug for SectorMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SectorMask({:#010b})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_containing_rounds_down() {
        assert_eq!(LineAddr::containing(Addr::new(0)).base().raw(), 0);
        assert_eq!(LineAddr::containing(Addr::new(63)).base().raw(), 0);
        assert_eq!(LineAddr::containing(Addr::new(64)).base().raw(), 64);
        assert_eq!(
            LineAddr::containing(Addr::new(0x12345)).base().raw(),
            0x12340
        );
    }

    #[test]
    fn touch_mask_single_word() {
        // An 8-byte load at line offset 16 touches exactly sector 2.
        let m = SectorMask::l1_touch(Addr::new(64 + 16), 8);
        assert_eq!(m.bits(), 0b0000_0100);
        // A 4-byte load within sector 0.
        let m = SectorMask::l1_touch(Addr::new(4), 4);
        assert_eq!(m.bits(), 0b0000_0001);
    }

    #[test]
    fn touch_mask_straddles_sectors() {
        // A 16-byte access starting at offset 8 touches sectors 1 and 2.
        let m = SectorMask::l1_touch(Addr::new(8), 16);
        assert_eq!(m.bits(), 0b0000_0110);
    }

    #[test]
    fn widen_to_l2_masks() {
        assert_eq!(
            SectorMask::from_bits(0b0000_0001).widen_to_l2().bits(),
            0b01
        );
        assert_eq!(
            SectorMask::from_bits(0b0001_0000).widen_to_l2().bits(),
            0b10
        );
        assert_eq!(
            SectorMask::from_bits(0b1000_0001).widen_to_l2().bits(),
            0b11
        );
        assert_eq!(SectorMask::EMPTY.widen_to_l2().bits(), 0);
    }

    #[test]
    fn min_consecutive_run_counts_smallest() {
        assert_eq!(
            SectorMask::from_bits(0b0000_0000).min_consecutive_run(),
            None
        );
        assert_eq!(
            SectorMask::from_bits(0b0000_0001).min_consecutive_run(),
            Some(1)
        );
        assert_eq!(
            SectorMask::from_bits(0b0110_0001).min_consecutive_run(),
            Some(1)
        );
        assert_eq!(
            SectorMask::from_bits(0b0110_0011).min_consecutive_run(),
            Some(2)
        );
        assert_eq!(SectorMask::FULL_L1.min_consecutive_run(), Some(8));
    }

    #[test]
    fn granule_alignment() {
        // granu=2 around sector 3 -> sectors 2..4.
        let m = SectorMask::l1_granule_around(Addr::new(3 * 8), 2);
        assert_eq!(m.bits(), 0b0000_1100);
        // granu=8 is the full line.
        let m = SectorMask::l1_granule_around(Addr::new(40), 8);
        assert_eq!(m.bits(), 0xFF);
        // granu=1 is exactly the touched sector.
        let m = SectorMask::l1_granule_around(Addr::new(40), 1);
        assert_eq!(m.bits(), 0b0010_0000);
    }

    #[test]
    fn mask_set_operations() {
        let a = SectorMask::from_bits(0b1010);
        let b = SectorMask::from_bits(0b0110);
        assert_eq!(a.union(b).bits(), 0b1110);
        assert_eq!(a.intersect(b).bits(), 0b0010);
        assert_eq!(a.minus(b).bits(), 0b1000);
        assert!(a.contains(SectorMask::from_bits(0b1000)));
        assert!(!a.contains(b));
    }
}
