//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The per-access bookkeeping maps — MSHRs, directory entries, in-flight
//! transactions, functional-memory pages — are keyed by line numbers and
//! page numbers that a simulation probes millions of times per second.
//! `std`'s default SipHash is DoS-resistant but costs more than the probe
//! it guards; none of these maps are exposed to adversarial keys, so
//! every hot map uses this multiply-rotate hasher (the `FxHash` scheme
//! from the rustc compiler) instead.
//!
//! Determinism note: unlike `RandomState`, [`FastHasher`] is seed-free,
//! so map layout is identical across processes. No simulator result may
//! depend on map iteration order either way — the golden-number tests
//! pin that — but a fixed layout additionally keeps any accidental
//! order-sensitivity from hiding behind per-process seeds.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word hasher (FxHash): `state = (rotl5(state) ^ word) * K`.
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized, seed-free).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`]. Drop-in for the simulator's hot,
/// non-adversarial maps.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(1 << 32));
        // Line numbers differ in low bits; high bits of the hash decide
        // the bucket for large maps.
        assert_ne!(h(100) >> 48, h(101) >> 48);
    }

    #[test]
    fn byte_stream_matches_word_stream() {
        let mut a = FastHasher::default();
        a.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fast_map_round_trips() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i * 64, i as u32);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
    }
}
