//! A minimal, offline stand-in for the [criterion] benchmark harness.
//!
//! The container this repository builds in has no crates.io access, so the
//! bench targets compile against this API-compatible subset instead: it
//! runs each benchmark closure a fixed number of iterations, reports the
//! mean wall-clock time per iteration, and supports the `criterion_group!`
//! / `criterion_main!` entry points the bench files use. Timings are
//! honest but unsophisticated (no outlier rejection, no statistics); swap
//! the workspace `criterion` entry back to the real crate for publication
//! runs.
//!
//! [criterion]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Registers a standalone measurement.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named collection of measurements sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one closure under this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // One warm-up pass, then the timed samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut n = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        n += b.iters;
    }
    let mean = total.as_secs_f64() / n.max(1) as f64;
    println!("bench {name}: {:.3} ms/iter ({n} iters)", mean * 1e3);
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_function("probe", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 2);
    }
}
