//! A minimal, offline stand-in for the [proptest] property-testing crate.
//!
//! The container this repository builds in has no crates.io access, so the
//! property tests compile against this API-compatible subset: integer
//! range and `any::<T>()` strategies, tuples, `prop_map`,
//! `collection::vec`, and the `proptest!` / `prop_assert*!` /
//! `prop_assume!` macros. Each test runs 256 deterministic cases seeded
//! from the test name — no shrinking, no persistence. Swap the workspace
//! `proptest` entry back to the real crate when network access is
//! available.
//!
//! [proptest]: https://docs.rs/proptest

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for one `proptest!` parameter.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }

            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + (rng.next_u64() as u128) % (hi - lo + 1)) as $t
                }
            }

            impl crate::arbitrary::Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(::core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: ::core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: ::core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// SplitMix64-based deterministic RNG for case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs 256
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut cases = 0u32;
                let mut attempts = 0u32;
                while cases < 256 {
                    attempts += 1;
                    assert!(
                        attempts < 256 * 16,
                        "too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => cases += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("{}: {}", stringify!($name), msg),
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 10u8..=20, z in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        /// prop_map applies, tuples and vec compose, assume rejects.
        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..8, any::<u8>()), 2..6),
            even in (0u64..100).prop_map(|x| x * 2),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert_eq!(even % 2, 0);
            for (a, _) in v {
                prop_assert!(a < 8);
            }
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
