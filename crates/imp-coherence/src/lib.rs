//! ACKwise directory coherence (paper Table 1, citing Kurian et al.).
//!
//! ACKwise_k tracks up to `k` sharers precisely in limited directory
//! pointers; when an (k+1)-th sharer arrives the entry degrades to a
//! count, and invalidations must broadcast to every core (all of which
//! acknowledge). The paper uses k = 4.
//!
//! This crate holds the pure directory state machine; the full-system
//! simulator drives it and moves the actual messages.
//!
//! # Example
//!
//! ```
//! use imp_coherence::{Directory, DirState, InvTargets};
//! use imp_common::LineAddr;
//!
//! let mut d = Directory::new(4, 64);
//! let line = LineAddr::from_line_number(7);
//! for c in 0..3 {
//!     d.add_sharer(line, c);
//! }
//! match d.invalidation_targets(line, Some(0)) {
//!     InvTargets::Precise(v) => assert_eq!(v, vec![1, 2]),
//!     t => panic!("expected precise targets, got {t:?}"),
//! }
//! ```

use imp_common::{FastMap, LineAddr};

/// Sharer tracking for one line under ACKwise_k.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SharerSet {
    /// At most `k` precisely known sharers.
    Precise(Vec<u32>),
    /// More than `k` sharers: only a count is kept; invalidation must
    /// broadcast.
    Overflow {
        /// Number of sharers believed to exist (monotone over-estimate;
        /// silent evictions are not reported).
        count: u32,
    },
}

/// Directory state of one line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line.
    Uncached,
    /// One or more caches hold read-only copies.
    Shared(SharerSet),
    /// Exactly one cache holds a writable copy.
    Modified(u32),
}

/// Who must receive invalidations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvTargets {
    /// Nothing to invalidate.
    None,
    /// These cores, precisely.
    Precise(Vec<u32>),
    /// All cores (except the requester); ACKwise overflow.
    Broadcast,
}

impl InvTargets {
    /// Number of invalidation messages these targets imply in a system
    /// of `cores` cores with `requester_excluded` recipients already
    /// removed (1 for a precise request, 0 for a recall with no
    /// requester). Precise counts are exact; a broadcast invalidates
    /// everyone but the excluded recipients.
    pub fn count(&self, cores: u32, requester_excluded: u32) -> u32 {
        match self {
            InvTargets::None => 0,
            InvTargets::Precise(t) => t.len() as u32,
            InvTargets::Broadcast => cores.saturating_sub(requester_excluded),
        }
    }

    /// True for the ACKwise-overflow broadcast case.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, InvTargets::Broadcast)
    }
}

/// A directory slice: per-line ACKwise state for the lines homed here.
#[derive(Debug)]
pub struct Directory {
    k: usize,
    cores: u32,
    entries: FastMap<LineAddr, DirState>,
}

impl Directory {
    /// Creates a directory with `k` sharer pointers over `cores` cores.
    pub fn new(k: usize, cores: u32) -> Self {
        Directory {
            k,
            cores,
            entries: FastMap::default(),
        }
    }

    /// Total cores in the system.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Current state of `line`.
    pub fn state(&self, line: LineAddr) -> DirState {
        self.entries
            .get(&line)
            .cloned()
            .unwrap_or(DirState::Uncached)
    }

    /// The owning core if the line is Modified somewhere.
    pub fn owner(&self, line: LineAddr) -> Option<u32> {
        match self.entries.get(&line) {
            Some(DirState::Modified(o)) => Some(*o),
            _ => None,
        }
    }

    /// True if any cache may hold the line.
    pub fn is_cached(&self, line: LineAddr) -> bool {
        !matches!(self.state(line), DirState::Uncached)
    }

    /// Records `core` as a sharer (after serving a read).
    pub fn add_sharer(&mut self, line: LineAddr, core: u32) {
        let e = self.entries.entry(line).or_insert(DirState::Uncached);
        match e {
            DirState::Uncached => {
                *e = DirState::Shared(SharerSet::Precise(vec![core]));
            }
            DirState::Shared(SharerSet::Precise(v)) => {
                if !v.contains(&core) {
                    v.push(core);
                    if v.len() > self.k {
                        let count = v.len() as u32;
                        *e = DirState::Shared(SharerSet::Overflow { count });
                    }
                }
            }
            DirState::Shared(SharerSet::Overflow { count }) => {
                *count = (*count + 1).min(self.cores);
            }
            DirState::Modified(owner) => {
                // Downgrade path: owner plus the new reader share.
                let mut v = vec![*owner];
                if *owner != core {
                    v.push(core);
                }
                *e = DirState::Shared(SharerSet::Precise(v));
            }
        }
    }

    /// Records `core` as the exclusive owner (after serving a write).
    pub fn set_modified(&mut self, line: LineAddr, core: u32) {
        self.entries.insert(line, DirState::Modified(core));
    }

    /// Removes a core from the sharer set / ownership (writeback or
    /// invalidation ack). Overflow counts only decrement; they never
    /// regain precision (matching limited-pointer hardware).
    pub fn remove(&mut self, line: LineAddr, core: u32) {
        let Some(e) = self.entries.get_mut(&line) else {
            return;
        };
        match e {
            DirState::Uncached => {}
            DirState::Shared(SharerSet::Precise(v)) => {
                v.retain(|&c| c != core);
                if v.is_empty() {
                    self.entries.remove(&line);
                }
            }
            DirState::Shared(SharerSet::Overflow { count }) => {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    self.entries.remove(&line);
                }
            }
            DirState::Modified(o) => {
                if *o == core {
                    self.entries.remove(&line);
                }
            }
        }
    }

    /// Drops all tracking for `line` (L2 eviction recall).
    pub fn clear(&mut self, line: LineAddr) {
        self.entries.remove(&line);
    }

    /// Who must be invalidated to grant `exclude` (the requester, if
    /// any) exclusive access. Precise sets list the sharers; overflow
    /// broadcasts (the ACKwise mechanism).
    pub fn invalidation_targets(&self, line: LineAddr, exclude: Option<u32>) -> InvTargets {
        match self.entries.get(&line) {
            None | Some(DirState::Uncached) => InvTargets::None,
            Some(DirState::Modified(o)) => {
                if Some(*o) == exclude {
                    InvTargets::None
                } else {
                    InvTargets::Precise(vec![*o])
                }
            }
            Some(DirState::Shared(SharerSet::Precise(v))) => {
                let t: Vec<u32> = v.iter().copied().filter(|&c| Some(c) != exclude).collect();
                if t.is_empty() {
                    InvTargets::None
                } else {
                    InvTargets::Precise(t)
                }
            }
            Some(DirState::Shared(SharerSet::Overflow { .. })) => InvTargets::Broadcast,
        }
    }

    /// Number of lines with directory state (occupancy diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn inv_targets_count_covers_all_shapes() {
        assert_eq!(InvTargets::None.count(16, 1), 0);
        assert_eq!(InvTargets::Precise(vec![2, 5, 9]).count(16, 1), 3);
        assert_eq!(InvTargets::Broadcast.count(16, 1), 15);
        assert_eq!(
            InvTargets::Broadcast.count(16, 0),
            16,
            "recall, no requester"
        );
        assert!(InvTargets::Broadcast.is_broadcast());
        assert!(!InvTargets::Precise(vec![1]).is_broadcast());
    }

    #[test]
    fn read_then_write_transitions() {
        let mut d = Directory::new(4, 16);
        d.add_sharer(line(1), 3);
        assert_eq!(
            d.state(line(1)),
            DirState::Shared(SharerSet::Precise(vec![3]))
        );
        d.set_modified(line(1), 5);
        assert_eq!(d.owner(line(1)), Some(5));
        d.remove(line(1), 5);
        assert_eq!(d.state(line(1)), DirState::Uncached);
    }

    #[test]
    fn ackwise_overflow_at_k_plus_one() {
        let mut d = Directory::new(4, 16);
        for c in 0..4 {
            d.add_sharer(line(9), c);
        }
        assert!(matches!(
            d.state(line(9)),
            DirState::Shared(SharerSet::Precise(_))
        ));
        d.add_sharer(line(9), 4);
        assert_eq!(
            d.state(line(9)),
            DirState::Shared(SharerSet::Overflow { count: 5 })
        );
        assert_eq!(
            d.invalidation_targets(line(9), Some(0)),
            InvTargets::Broadcast
        );
    }

    #[test]
    fn precise_invalidation_excludes_requester() {
        let mut d = Directory::new(4, 16);
        d.add_sharer(line(2), 1);
        d.add_sharer(line(2), 2);
        d.add_sharer(line(2), 7);
        match d.invalidation_targets(line(2), Some(2)) {
            InvTargets::Precise(mut v) => {
                v.sort_unstable();
                assert_eq!(v, vec![1, 7]);
            }
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn duplicate_sharer_not_double_counted() {
        let mut d = Directory::new(4, 16);
        d.add_sharer(line(3), 1);
        d.add_sharer(line(3), 1);
        assert_eq!(
            d.state(line(3)),
            DirState::Shared(SharerSet::Precise(vec![1]))
        );
    }

    #[test]
    fn modified_downgrades_to_shared_pair_on_read() {
        let mut d = Directory::new(4, 16);
        d.set_modified(line(4), 6);
        d.add_sharer(line(4), 2);
        match d.state(line(4)) {
            DirState::Shared(SharerSet::Precise(v)) => {
                assert!(v.contains(&6) && v.contains(&2));
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn overflow_count_saturates_at_core_count() {
        let mut d = Directory::new(2, 4);
        for c in 0..4 {
            d.add_sharer(line(5), c);
        }
        d.add_sharer(line(5), 0); // duplicate adds in overflow still count
        assert_eq!(
            d.state(line(5)),
            DirState::Shared(SharerSet::Overflow { count: 4 })
        );
    }

    #[test]
    fn remove_from_overflow_decrements_and_clears() {
        let mut d = Directory::new(1, 8);
        d.add_sharer(line(6), 0);
        d.add_sharer(line(6), 1);
        assert!(matches!(
            d.state(line(6)),
            DirState::Shared(SharerSet::Overflow { count: 2 })
        ));
        d.remove(line(6), 0);
        d.remove(line(6), 1);
        assert_eq!(d.state(line(6)), DirState::Uncached);
        // Still broadcast while any overflow count remains.
        d.add_sharer(line(7), 0);
        d.add_sharer(line(7), 1);
        d.remove(line(7), 0);
        assert_eq!(d.invalidation_targets(line(7), None), InvTargets::Broadcast);
    }

    #[test]
    fn clear_drops_entry() {
        let mut d = Directory::new(4, 16);
        d.add_sharer(line(8), 0);
        d.clear(line(8));
        assert!(!d.is_cached(line(8)));
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn uncached_line_needs_no_invalidation() {
        let d = Directory::new(4, 16);
        assert_eq!(d.invalidation_targets(line(10), None), InvTargets::None);
    }
}
