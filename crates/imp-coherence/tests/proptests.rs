//! Property test: ACKwise invalidation targets always over-approximate
//! the true sharer set (correctness of limited-pointer tracking).

use imp_coherence::{Directory, InvTargets};
use imp_common::LineAddr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn invalidation_over_approximates_sharers(
        adds in proptest::collection::vec(0u32..16, 1..24),
        k in 1usize..6,
    ) {
        let mut dir = Directory::new(k, 16);
        let line = LineAddr::from_line_number(3);
        let mut truth = std::collections::BTreeSet::new();
        for c in &adds {
            dir.add_sharer(line, *c);
            truth.insert(*c);
        }
        match dir.invalidation_targets(line, None) {
            InvTargets::Broadcast => {} // trivially covers everyone
            InvTargets::Precise(v) => {
                // Precise mode must name every true sharer.
                for c in truth {
                    prop_assert!(v.contains(&c), "sharer {c} missing from {v:?}");
                }
            }
            InvTargets::None => prop_assert!(false, "sharers exist"),
        }
    }

    #[test]
    fn removing_all_sharers_clears_line(adds in proptest::collection::vec(0u32..8, 1..10)) {
        let mut dir = Directory::new(4, 8);
        let line = LineAddr::from_line_number(9);
        let mut seen = std::collections::BTreeSet::new();
        for c in &adds {
            dir.add_sharer(line, *c);
            seen.insert(*c);
        }
        // Remove one ack per *tracked* sharer. Overflow entries count
        // duplicates, so remove once per add in that case.
        match dir.invalidation_targets(line, None) {
            InvTargets::Precise(v) => {
                for c in v {
                    dir.remove(line, c);
                }
                prop_assert!(!dir.is_cached(line));
            }
            InvTargets::Broadcast => {
                for c in &adds {
                    dir.remove(line, *c);
                }
                prop_assert!(!dir.is_cached(line));
            }
            InvTargets::None => prop_assert!(false),
        }
    }
}
