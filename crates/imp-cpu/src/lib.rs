//! Core timing models: the paper's default in-order single-issue core and
//! the modest out-of-order core (32-entry reorder buffer) of Section
//! 6.3.1.
//!
//! Cores consume an [`imp_trace::Op`] stream and interact with the memory
//! hierarchy through a [`MemPort`] implemented by the full-system
//! simulator. A core runs in bounded episodes (to keep the global event
//! order tight), returning a [`CoreBlock`] describing what it is waiting
//! for.

mod inorder;
mod ooo;

pub use inorder::InOrderCore;
pub use ooo::OooCore;

use imp_common::stats::CoreStats;
use imp_common::{Addr, Cycle};
use imp_trace::Op;

/// Result of a demand access issued to the memory port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemResult {
    /// The access completes at the returned cycle (an L1 hit — or any
    /// access under the Ideal / PerfectPrefetch modes).
    Hit(Cycle),
    /// The access missed; the port will call
    /// [`CoreEngine::mem_complete`] with this token when data arrives.
    Miss(u64),
    /// A store that missed but retires through the store buffer: the
    /// core proceeds at the returned cycle while the line is fetched in
    /// the background (counts as a miss for statistics).
    StoreBuffered(Cycle),
    /// The dTLB missed: the access first stalls `walk` cycles for
    /// translation — an L2-TLB hit's latency, or a full page-table
    /// walk (flat-charged or routed through the memory hierarchy,
    /// depending on the `WalkModel`) — then behaves like `then` (whose
    /// embedded cycle values already include the translation delay).
    /// Cores account the translation share in
    /// `CoreStats::walk_stall_cycles`.
    TlbWalk {
        /// Cycles of the blocking translation (L2-TLB hit or walk).
        walk: Cycle,
        /// What the access resolved to once translated.
        then: WalkOutcome,
    },
}

/// How a dTLB-missing access completes after its page-table walk; each
/// variant mirrors the corresponding [`MemResult`] variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkOutcome {
    /// An L1 hit once translated; completes at the cycle (walk
    /// included).
    Hit(Cycle),
    /// An L1 miss once translated; completion arrives via
    /// [`CoreEngine::mem_complete`] with this token.
    Miss(u64),
    /// A store retiring through the store buffer once translated.
    StoreBuffered(Cycle),
}

impl MemResult {
    /// Splits a [`MemResult::TlbWalk`] into its walk-free equivalent
    /// plus the walk cycles (zero for the other variants). Core models
    /// use this to account the walk once and then handle the underlying
    /// outcome with their ordinary hit/miss logic.
    pub fn split_walk(self) -> (MemResult, Cycle) {
        match self {
            MemResult::TlbWalk { walk, then } => (
                match then {
                    WalkOutcome::Hit(d) => MemResult::Hit(d),
                    WalkOutcome::Miss(t) => MemResult::Miss(t),
                    WalkOutcome::StoreBuffered(d) => MemResult::StoreBuffered(d),
                },
                walk,
            ),
            other => (other, 0),
        }
    }

    /// Wraps a result behind `walk` page-walk cycles — the inverse of
    /// [`MemResult::split_walk`], kept next to it so the variant
    /// pairing lives in one place. Returns `self` unchanged when `walk`
    /// is zero; walks accumulate if `self` is already walk-wrapped.
    #[must_use]
    pub fn with_walk(self, walk: Cycle) -> MemResult {
        if walk == 0 {
            return self;
        }
        let then = match self {
            MemResult::Hit(d) => WalkOutcome::Hit(d),
            MemResult::Miss(t) => WalkOutcome::Miss(t),
            MemResult::StoreBuffered(d) => WalkOutcome::StoreBuffered(d),
            MemResult::TlbWalk { walk: inner, then } => {
                return MemResult::TlbWalk {
                    walk: inner + walk,
                    then,
                }
            }
        };
        MemResult::TlbWalk { walk, then }
    }
}

/// The memory side presented to a core by the simulator.
pub trait MemPort {
    /// Issues a demand load/store. `op` must be a memory op.
    fn access(&mut self, core: u32, op: &Op, now: Cycle) -> MemResult;

    /// Issues a (non-binding, non-blocking) software prefetch.
    fn sw_prefetch(&mut self, core: u32, addr: Addr, now: Cycle);
}

/// Why a core stopped running its episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreBlock {
    /// Nothing to wait for; resume at this cycle (compute progress or
    /// episode budget exhausted).
    UntilTime(Cycle),
    /// Waiting for one or more outstanding memory accesses; the
    /// simulator wakes the core after `mem_complete`.
    OnMemory,
    /// Reached a barrier; the simulator wakes the core when all cores
    /// arrive.
    AtBarrier,
    /// The op stream is exhausted.
    Done,
}

/// A core timing model.
pub trait CoreEngine {
    /// Runs from `now` until blocked; returns the blocking condition.
    fn run(&mut self, now: Cycle, port: &mut dyn MemPort) -> CoreBlock;

    /// Reports completion of the outstanding access `token` at `at`.
    fn mem_complete(&mut self, token: u64, at: Cycle);

    /// Execution statistics.
    fn stats(&self) -> &CoreStats;

    /// Finalizes statistics at program completion time.
    fn finish(&mut self, at: Cycle);

    /// Attaches an observation probe; the engine records its demand-miss
    /// completions (issue/fill/PC/line) through it. The default keeps
    /// engines that don't observe — including downstream plugin
    /// implementations — source-compatible.
    fn attach_probe(&mut self, probe: imp_obs::CoreProbe) {
        let _ = probe;
    }
}

/// Maximum cycles a core advances inside one episode before yielding to
/// the event loop. Bounds the timing skew between cores (the reference
/// Graphite simulator tolerates much larger lax-synchronization skew).
pub const EPISODE_BUDGET: Cycle = 256;
