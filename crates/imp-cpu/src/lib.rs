//! Core timing models: the paper's default in-order single-issue core and
//! the modest out-of-order core (32-entry reorder buffer) of Section
//! 6.3.1.
//!
//! Cores consume an [`imp_trace::Op`] stream and interact with the memory
//! hierarchy through a [`MemPort`] implemented by the full-system
//! simulator. A core runs in bounded episodes (to keep the global event
//! order tight), returning a [`CoreBlock`] describing what it is waiting
//! for.

mod inorder;
mod ooo;

pub use inorder::InOrderCore;
pub use ooo::OooCore;

use imp_common::stats::CoreStats;
use imp_common::{Addr, Cycle};
use imp_trace::Op;

/// Result of a demand access issued to the memory port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemResult {
    /// The access completes at the returned cycle (an L1 hit — or any
    /// access under the Ideal / PerfectPrefetch modes).
    Hit(Cycle),
    /// The access missed; the port will call
    /// [`CoreEngine::mem_complete`] with this token when data arrives.
    Miss(u64),
    /// A store that missed but retires through the store buffer: the
    /// core proceeds at the returned cycle while the line is fetched in
    /// the background (counts as a miss for statistics).
    StoreBuffered(Cycle),
}

/// The memory side presented to a core by the simulator.
pub trait MemPort {
    /// Issues a demand load/store. `op` must be a memory op.
    fn access(&mut self, core: u32, op: &Op, now: Cycle) -> MemResult;

    /// Issues a (non-binding, non-blocking) software prefetch.
    fn sw_prefetch(&mut self, core: u32, addr: Addr, now: Cycle);
}

/// Why a core stopped running its episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreBlock {
    /// Nothing to wait for; resume at this cycle (compute progress or
    /// episode budget exhausted).
    UntilTime(Cycle),
    /// Waiting for one or more outstanding memory accesses; the
    /// simulator wakes the core after `mem_complete`.
    OnMemory,
    /// Reached a barrier; the simulator wakes the core when all cores
    /// arrive.
    AtBarrier,
    /// The op stream is exhausted.
    Done,
}

/// A core timing model.
pub trait CoreEngine {
    /// Runs from `now` until blocked; returns the blocking condition.
    fn run(&mut self, now: Cycle, port: &mut dyn MemPort) -> CoreBlock;

    /// Reports completion of the outstanding access `token` at `at`.
    fn mem_complete(&mut self, token: u64, at: Cycle);

    /// Execution statistics.
    fn stats(&self) -> &CoreStats;

    /// Finalizes statistics at program completion time.
    fn finish(&mut self, at: Cycle);
}

/// Maximum cycles a core advances inside one episode before yielding to
/// the event loop. Bounds the timing skew between cores (the reference
/// Graphite simulator tolerates much larger lax-synchronization skew).
pub const EPISODE_BUDGET: Cycle = 256;
