//! The paper's default core: in-order, single-issue, blocking on every
//! demand miss (Table 1). Memory stall cycles are attributed to the
//! ground-truth class of the blocking access (Figures 1 and 2).

use crate::{CoreBlock, CoreEngine, MemPort, MemResult, EPISODE_BUDGET};
use imp_common::stats::{AccessClass, CoreStats};
use imp_common::{Addr, Cycle, LineAddr, Pc};
use imp_obs::CoreProbe;
use imp_trace::{Op, OpKind, OpLanes};
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
struct PendingMem {
    class: AccessClass,
    issued: Cycle,
    pc: Pc,
    line: LineAddr,
}

/// In-order, single-issue core.
#[derive(Debug)]
pub struct InOrderCore {
    id: u32,
    lanes: Arc<OpLanes>,
    idx: usize,
    pending: Option<PendingMem>,
    stats: CoreStats,
    probe: CoreProbe,
}

impl InOrderCore {
    /// Creates a core with id `id` running `ops`, decoding the stream
    /// into struct-of-arrays lanes. Prefer [`InOrderCore::from_lanes`]
    /// when a shared decoding already exists (e.g. from
    /// [`imp_trace::Program::lanes`]).
    pub fn new(id: u32, ops: impl Into<Arc<[Op]>>) -> Self {
        Self::from_lanes(id, Arc::new(OpLanes::from_ops(&ops.into())))
    }

    /// Creates a core running a shared lane decoding. The lanes are
    /// shared, not copied: passing the same `Arc<OpLanes>` to many cores
    /// (or many systems) costs a reference count per core.
    pub fn from_lanes(id: u32, lanes: Arc<OpLanes>) -> Self {
        InOrderCore {
            id,
            lanes,
            idx: 0,
            pending: None,
            stats: CoreStats::default(),
            probe: CoreProbe::disabled(),
        }
    }

    /// Fraction of the op stream already executed (diagnostics).
    pub fn progress(&self) -> f64 {
        if self.lanes.is_empty() {
            1.0
        } else {
            self.idx as f64 / self.lanes.len() as f64
        }
    }
}

impl CoreEngine for InOrderCore {
    fn run(&mut self, now: Cycle, port: &mut dyn MemPort) -> CoreBlock {
        assert!(
            self.pending.is_none(),
            "core resumed while blocked on memory"
        );
        let deadline = now + EPISODE_BUDGET;
        let mut t = now;
        // Iterate the contiguous kind/addr lanes; only memory ops pay
        // for reconstructing the full 16-byte record.
        let kinds = &self.lanes.kind;
        while t < deadline {
            let Some(&kind) = kinds.get(self.idx) else {
                self.stats.done_cycle = t;
                return CoreBlock::Done;
            };
            match kind {
                OpKind::Compute => {
                    let cycles = self.lanes.addr[self.idx];
                    self.stats.instructions += cycles;
                    self.idx += 1;
                    t += cycles.max(1);
                }
                OpKind::Barrier => {
                    self.idx += 1;
                    return CoreBlock::AtBarrier;
                }
                OpKind::SwPrefetch => {
                    self.stats.instructions += 1;
                    let addr = imp_common::Addr::new(self.lanes.addr[self.idx]);
                    port.sw_prefetch(self.id, addr, t);
                    self.idx += 1;
                    t += 1;
                }
                OpKind::Load | OpKind::Store => {
                    let op = self.lanes.op(self.idx);
                    self.stats.instructions += 1;
                    self.stats.l1_accesses += 1;
                    let (result, walk) = port.access(self.id, &op, t).split_walk();
                    self.stats.walk_stall_cycles += walk;
                    match result {
                        MemResult::TlbWalk { .. } => unreachable!("split_walk flattened this"),
                        MemResult::Hit(done) => {
                            self.stats.l1_hits += 1;
                            self.idx += 1;
                            t = done;
                        }
                        MemResult::StoreBuffered(done) => {
                            self.stats.l1_misses[op.class.index()] += 1;
                            self.idx += 1;
                            t = done;
                        }
                        MemResult::Miss(_) => {
                            self.stats.l1_misses[op.class.index()] += 1;
                            self.pending = Some(PendingMem {
                                class: op.class,
                                issued: t,
                                pc: op.pc,
                                line: LineAddr::containing(Addr::new(op.addr)),
                            });
                            self.idx += 1;
                            return CoreBlock::OnMemory;
                        }
                    }
                }
            }
        }
        CoreBlock::UntilTime(t)
    }

    fn mem_complete(&mut self, _token: u64, at: Cycle) {
        let p = self.pending.take().expect("no outstanding access");
        let latency = at.saturating_sub(p.issued);
        self.stats.mem_latency_sum += latency;
        self.stats.mem_latency_count += 1;
        // The stall is the latency beyond the 1-cycle hit cost.
        self.stats.stall_cycles[p.class.index()] += latency.saturating_sub(1);
        self.probe.demand_complete(p.pc, p.line, p.issued, at);
    }

    fn stats(&self) -> &CoreStats {
        &self.stats
    }

    fn finish(&mut self, at: Cycle) {
        self.stats.done_cycle = self.stats.done_cycle.max(at);
    }

    fn attach_probe(&mut self, probe: CoreProbe) {
        self.probe = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::stats::AccessClass;
    use imp_common::{Addr, Pc};

    /// A scriptable port: addresses below `hit_below` hit, others miss.
    struct FakePort {
        hit_below: u64,
        tokens: u64,
        prefetches: Vec<Addr>,
    }

    impl MemPort for FakePort {
        fn access(&mut self, _core: u32, op: &Op, now: Cycle) -> MemResult {
            if op.addr < self.hit_below {
                MemResult::Hit(now + 1)
            } else {
                self.tokens += 1;
                MemResult::Miss(self.tokens)
            }
        }
        fn sw_prefetch(&mut self, _core: u32, addr: Addr, _now: Cycle) {
            self.prefetches.push(addr);
        }
    }

    fn load(addr: u64, class: AccessClass) -> Op {
        Op::load(Addr::new(addr), 8, Pc::new(1), class)
    }

    #[test]
    fn hits_take_one_cycle_each() {
        let ops = vec![
            Op::compute(5),
            load(0x10, AccessClass::Stream),
            load(0x20, AccessClass::Stream),
        ];
        let mut core = InOrderCore::new(0, ops);
        let mut port = FakePort {
            hit_below: u64::MAX,
            tokens: 0,
            prefetches: vec![],
        };
        assert_eq!(core.run(0, &mut port), CoreBlock::Done);
        assert_eq!(core.stats().instructions, 7);
        assert_eq!(core.stats().l1_hits, 2);
        assert_eq!(core.stats().total_misses(), 0);
    }

    #[test]
    fn miss_blocks_and_attributes_stall() {
        let ops = vec![load(0x1000, AccessClass::Indirect), Op::compute(1)];
        let mut core = InOrderCore::new(0, ops);
        let mut port = FakePort {
            hit_below: 0,
            tokens: 0,
            prefetches: vec![],
        };
        assert_eq!(core.run(0, &mut port), CoreBlock::OnMemory);
        assert_eq!(core.stats().l1_misses[AccessClass::Indirect.index()], 1);
        core.mem_complete(1, 101);
        // 101 cycles total latency, 100 beyond the hit cost.
        assert_eq!(
            core.stats().stall_cycles[AccessClass::Indirect.index()],
            100
        );
        assert_eq!(core.stats().mem_latency_sum, 101);
        assert_eq!(core.run(101, &mut port), CoreBlock::Done);
    }

    #[test]
    fn long_compute_yields_in_episodes() {
        let ops = vec![Op::compute(10_000)];
        let mut core = InOrderCore::new(0, ops);
        let mut port = FakePort {
            hit_below: u64::MAX,
            tokens: 0,
            prefetches: vec![],
        };
        match core.run(0, &mut port) {
            CoreBlock::UntilTime(t) => assert!(t >= 10_000),
            b => panic!("unexpected {b:?}"),
        }
        assert_eq!(core.run(10_000, &mut port), CoreBlock::Done);
    }

    #[test]
    fn barrier_reported_and_resumes_past_it() {
        let ops = vec![Op::barrier(), Op::compute(1)];
        let mut core = InOrderCore::new(0, ops);
        let mut port = FakePort {
            hit_below: u64::MAX,
            tokens: 0,
            prefetches: vec![],
        };
        assert_eq!(core.run(0, &mut port), CoreBlock::AtBarrier);
        assert_eq!(core.run(50, &mut port), CoreBlock::Done);
        assert_eq!(core.stats().instructions, 1);
    }

    #[test]
    fn sw_prefetch_does_not_block() {
        let ops = vec![
            Op::sw_prefetch(Addr::new(0x5000), Pc::new(2)),
            Op::compute(1),
        ];
        let mut core = InOrderCore::new(0, ops);
        let mut port = FakePort {
            hit_below: 0,
            tokens: 0,
            prefetches: vec![],
        };
        assert_eq!(core.run(0, &mut port), CoreBlock::Done);
        assert_eq!(port.prefetches, vec![Addr::new(0x5000)]);
        assert_eq!(core.stats().instructions, 2);
    }

    #[test]
    fn tlb_walk_blocks_and_is_accounted() {
        /// Every access pays a 100-cycle walk; loads then hit, stores
        /// miss into the store buffer.
        struct WalkPort;
        impl MemPort for WalkPort {
            fn access(&mut self, _core: u32, op: &Op, now: Cycle) -> MemResult {
                let then = if op.kind == OpKind::Store {
                    crate::WalkOutcome::StoreBuffered(now + 101)
                } else {
                    crate::WalkOutcome::Hit(now + 101)
                };
                MemResult::TlbWalk { walk: 100, then }
            }
            fn sw_prefetch(&mut self, _core: u32, _addr: Addr, _now: Cycle) {}
        }
        let ops = vec![
            load(0x1000, AccessClass::Indirect),
            Op::store(Addr::new(0x2000), 8, Pc::new(2), AccessClass::Other),
        ];
        let mut core = InOrderCore::new(0, ops);
        assert_eq!(core.run(0, &mut WalkPort), CoreBlock::Done);
        assert_eq!(core.stats().walk_stall_cycles, 200);
        assert_eq!(core.stats().l1_hits, 1);
        assert_eq!(core.stats().l1_misses[AccessClass::Other.index()], 1);
        assert!(core.stats().done_cycle >= 202, "walks serialize the core");
    }

    #[test]
    #[should_panic(expected = "resumed while blocked")]
    fn resume_while_pending_is_a_bug() {
        let ops = vec![load(0x1000, AccessClass::Other)];
        let mut core = InOrderCore::new(0, ops);
        let mut port = FakePort {
            hit_below: 0,
            tokens: 0,
            prefetches: vec![],
        };
        core.run(0, &mut port);
        core.run(1, &mut port);
    }
}
