//! A modest out-of-order core (Section 6.3.1): 32-entry reorder buffer,
//! single-issue dispatch/retire, loads issued at dispatch unless their
//! address depends on an incomplete earlier load (the `dep` field of the
//! op stream encodes `A[B[i]]`'s dependence on the `B[i]` load).

use crate::{CoreBlock, CoreEngine, MemPort, MemResult, EPISODE_BUDGET};
use imp_common::stats::{AccessClass, CoreStats};
use imp_common::{Addr, Cycle, LineAddr, Pc};
use imp_obs::CoreProbe;
use imp_trace::{Op, OpKind, OpLanes};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
struct RobSlot {
    /// Completion cycle; `None` while an access is outstanding.
    complete: Option<Cycle>,
    /// Load sequence number if this slot is a load (for dependents).
    load_seq: Option<u64>,
    class: AccessClass,
    issued: Cycle,
}

/// Out-of-order core with a bounded reorder buffer.
#[derive(Debug)]
pub struct OooCore {
    id: u32,
    lanes: Arc<OpLanes>,
    idx: usize,
    rob: VecDeque<RobSlot>,
    rob_cap: usize,
    last_dispatch: Cycle,
    /// Completion time of recent loads by sequence number.
    load_complete: HashMap<u64, Option<Cycle>>,
    /// Sequence numbers of the most recent loads, newest last.
    recent_loads: VecDeque<u64>,
    next_load_seq: u64,
    /// Outstanding memory tokens -> (load sequence number, PC, line).
    tokens: HashMap<u64, (u64, Pc, LineAddr)>,
    stats: CoreStats,
    probe: CoreProbe,
}

const RECENT_LOAD_WINDOW: usize = 8;

impl OooCore {
    /// Creates an OoO core with a `rob_cap`-entry reorder buffer,
    /// decoding the stream into struct-of-arrays lanes. Prefer
    /// [`OooCore::from_lanes`] when a shared decoding already exists.
    pub fn new(id: u32, ops: impl Into<Arc<[Op]>>, rob_cap: usize) -> Self {
        Self::from_lanes(id, Arc::new(OpLanes::from_ops(&ops.into())), rob_cap)
    }

    /// Creates an OoO core running a shared lane decoding (see
    /// [`crate::InOrderCore::from_lanes`]).
    pub fn from_lanes(id: u32, lanes: Arc<OpLanes>, rob_cap: usize) -> Self {
        OooCore {
            id,
            lanes,
            idx: 0,
            rob: VecDeque::with_capacity(rob_cap),
            rob_cap,
            last_dispatch: 0,
            load_complete: HashMap::new(),
            recent_loads: VecDeque::new(),
            next_load_seq: 0,
            tokens: HashMap::new(),
            stats: CoreStats::default(),
            probe: CoreProbe::disabled(),
        }
    }

    fn retire_completed(&mut self, now: Cycle) {
        while let Some(head) = self.rob.front() {
            match head.complete {
                Some(c) if c <= now => {
                    self.rob.pop_front();
                }
                _ => break,
            }
        }
    }

    /// Completion time of the dependency `dep` loads back, if resolved.
    /// `Err(())` means the dependency is a still-outstanding access.
    fn dep_complete(&self, dep: u8) -> Result<Option<Cycle>, ()> {
        if dep == 0 {
            return Ok(None);
        }
        let n = self.recent_loads.len();
        let Some(&seq) = self.recent_loads.get(n.wrapping_sub(dep as usize)) else {
            return Ok(None); // dependency left the window: assume resolved
        };
        match self.load_complete.get(&seq) {
            Some(Some(c)) => Ok(Some(*c)),
            Some(None) => Err(()),
            None => Ok(None),
        }
    }

    fn note_load(&mut self, seq: u64, complete: Option<Cycle>) {
        self.load_complete.insert(seq, complete);
        self.recent_loads.push_back(seq);
        if self.recent_loads.len() > RECENT_LOAD_WINDOW {
            if let Some(old) = self.recent_loads.pop_front() {
                self.load_complete.remove(&old);
            }
        }
    }
}

impl CoreEngine for OooCore {
    fn run(&mut self, now: Cycle, port: &mut dyn MemPort) -> CoreBlock {
        let deadline = now + EPISODE_BUDGET;
        let mut t = now;
        loop {
            self.retire_completed(t);
            if self.idx >= self.lanes.len() {
                if self.rob.iter().any(|s| s.complete.is_none()) {
                    return CoreBlock::OnMemory;
                }
                return match self.rob.iter().filter_map(|s| s.complete).max() {
                    Some(c) if c > t => CoreBlock::UntilTime(c),
                    _ => {
                        self.stats.done_cycle = t;
                        CoreBlock::Done
                    }
                };
            }
            // Structural stall: ROB full.
            if self.rob.len() >= self.rob_cap {
                let head = self.rob.front().expect("rob non-empty");
                return match head.complete {
                    None => CoreBlock::OnMemory,
                    Some(c) => CoreBlock::UntilTime(c.max(t + 1)),
                };
            }
            if t >= deadline {
                return CoreBlock::UntilTime(t);
            }
            let kind = self.lanes.kind[self.idx];
            match kind {
                OpKind::Barrier => {
                    // Barriers drain the ROB.
                    if self.rob.iter().any(|s| s.complete.is_none()) {
                        return CoreBlock::OnMemory;
                    }
                    if let Some(c) = self.rob.iter().filter_map(|s| s.complete).max() {
                        if c > t {
                            return CoreBlock::UntilTime(c);
                        }
                    }
                    self.rob.clear();
                    self.idx += 1;
                    return CoreBlock::AtBarrier;
                }
                OpKind::Compute => {
                    let cycles = self.lanes.addr[self.idx];
                    let dispatch = t.max(self.last_dispatch + 1);
                    let n = cycles.max(1);
                    self.stats.instructions += cycles;
                    self.rob.push_back(RobSlot {
                        complete: Some(dispatch + n),
                        load_seq: None,
                        class: AccessClass::Other,
                        issued: dispatch,
                    });
                    self.last_dispatch = dispatch + n - 1;
                    self.idx += 1;
                    t = t.max(dispatch);
                }
                OpKind::SwPrefetch => {
                    let dispatch = t.max(self.last_dispatch + 1);
                    self.stats.instructions += 1;
                    let addr = imp_common::Addr::new(self.lanes.addr[self.idx]);
                    port.sw_prefetch(self.id, addr, dispatch);
                    self.last_dispatch = dispatch;
                    self.idx += 1;
                    t = t.max(dispatch);
                }
                OpKind::Load | OpKind::Store => {
                    // Address dependence on an earlier load.
                    let ready = match self.dep_complete(self.lanes.dep[self.idx]) {
                        Err(()) => return CoreBlock::OnMemory,
                        Ok(Some(c)) => c,
                        Ok(None) => 0,
                    };
                    let dispatch = t.max(self.last_dispatch + 1).max(ready);
                    if dispatch >= deadline {
                        return CoreBlock::UntilTime(dispatch);
                    }
                    let op = self.lanes.op(self.idx);
                    self.stats.instructions += 1;
                    self.stats.l1_accesses += 1;
                    let seq = self.next_load_seq;
                    self.next_load_seq += 1;
                    let (result, walk) = port.access(self.id, &op, dispatch).split_walk();
                    self.stats.walk_stall_cycles += walk;
                    match result {
                        MemResult::TlbWalk { .. } => unreachable!("split_walk flattened this"),
                        MemResult::StoreBuffered(done) => {
                            self.stats.l1_misses[op.class.index()] += 1;
                            self.rob.push_back(RobSlot {
                                complete: Some(done),
                                load_seq: Some(seq),
                                class: op.class,
                                issued: dispatch,
                            });
                        }
                        MemResult::Hit(done) => {
                            self.stats.l1_hits += 1;
                            self.rob.push_back(RobSlot {
                                complete: Some(done),
                                load_seq: Some(seq),
                                class: op.class,
                                issued: dispatch,
                            });
                            if op.kind == OpKind::Load {
                                self.note_load(seq, Some(done));
                            }
                        }
                        MemResult::Miss(token) => {
                            self.stats.l1_misses[op.class.index()] += 1;
                            self.rob.push_back(RobSlot {
                                complete: None,
                                load_seq: Some(seq),
                                class: op.class,
                                issued: dispatch,
                            });
                            self.tokens.insert(
                                token,
                                (seq, op.pc, LineAddr::containing(Addr::new(op.addr))),
                            );
                            if op.kind == OpKind::Load {
                                self.note_load(seq, None);
                            }
                        }
                    }
                    self.last_dispatch = dispatch;
                    self.idx += 1;
                    t = t.max(dispatch);
                }
            }
        }
    }

    fn mem_complete(&mut self, token: u64, at: Cycle) {
        let Some((seq, pc, line)) = self.tokens.remove(&token) else {
            return;
        };
        for slot in &mut self.rob {
            if slot.load_seq == Some(seq) && slot.complete.is_none() {
                slot.complete = Some(at);
                let latency = at.saturating_sub(slot.issued);
                self.stats.mem_latency_sum += latency;
                self.stats.mem_latency_count += 1;
                self.stats.stall_cycles[slot.class.index()] += latency.saturating_sub(1);
                self.probe.demand_complete(pc, line, slot.issued, at);
            }
        }
        if let Some(c) = self.load_complete.get_mut(&seq) {
            *c = Some(at);
        }
    }

    fn stats(&self) -> &CoreStats {
        &self.stats
    }

    fn finish(&mut self, at: Cycle) {
        self.stats.done_cycle = self.stats.done_cycle.max(at);
    }

    fn attach_probe(&mut self, probe: CoreProbe) {
        self.probe = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_common::{Addr, Pc};

    struct FakePort {
        miss_latency: Cycle,
        outstanding: Vec<(u64, Cycle)>,
        next_token: u64,
        hit: bool,
    }

    impl FakePort {
        fn new(hit: bool, miss_latency: Cycle) -> Self {
            FakePort {
                miss_latency,
                outstanding: vec![],
                next_token: 0,
                hit,
            }
        }
    }

    impl MemPort for FakePort {
        fn access(&mut self, _core: u32, _op: &Op, now: Cycle) -> MemResult {
            if self.hit {
                MemResult::Hit(now + 1)
            } else {
                self.next_token += 1;
                self.outstanding
                    .push((self.next_token, now + self.miss_latency));
                MemResult::Miss(self.next_token)
            }
        }
        fn sw_prefetch(&mut self, _core: u32, _addr: Addr, _now: Cycle) {}
    }

    fn load(addr: u64) -> Op {
        Op::load(Addr::new(addr), 8, Pc::new(1), AccessClass::Indirect)
    }

    /// Drives core + fake port until done, delivering memory completions
    /// in time order. Returns the finish cycle.
    fn run_to_done(core: &mut OooCore, port: &mut FakePort) -> Cycle {
        let mut now = 0;
        for _ in 0..100_000 {
            match core.run(now, port) {
                CoreBlock::Done => return now,
                CoreBlock::UntilTime(t) => now = t.max(now + 1),
                CoreBlock::OnMemory => {
                    port.outstanding.sort_by_key(|&(_, c)| c);
                    let (tok, c) = port.outstanding.remove(0);
                    now = now.max(c);
                    core.mem_complete(tok, c);
                }
                CoreBlock::AtBarrier => {}
            }
        }
        panic!("did not finish");
    }

    #[test]
    fn independent_misses_overlap() {
        // 8 independent loads, 100-cycle misses: an OoO core overlaps
        // them; total time must be far below 8 x 100.
        let ops: Vec<Op> = (0..8).map(|i| load(0x1000 + i * 0x1000)).collect();
        let mut core = OooCore::new(0, ops, 32);
        let mut port = FakePort::new(false, 100);
        let t = run_to_done(&mut core, &mut port);
        assert!(
            t < 200,
            "overlapped loads should take ~100 cycles, took {t}"
        );
        assert_eq!(core.stats().l1_accesses, 8);
    }

    #[test]
    fn dependent_load_serializes() {
        // load B; load A (depends on B): the second cannot issue until
        // the first completes.
        let ops = vec![load(0x1000), load(0x2000).with_dep(1)];
        let mut core = OooCore::new(0, ops, 32);
        let mut port = FakePort::new(false, 100);
        let t = run_to_done(&mut core, &mut port);
        assert!(t >= 200, "dependent chain must serialize, took {t}");
    }

    #[test]
    fn rob_capacity_limits_overlap() {
        // 64 independent misses with a 4-entry ROB: at most 4 in flight.
        let ops: Vec<Op> = (0..64).map(|i| load(0x1000 + i * 0x1000)).collect();
        let mut small = OooCore::new(0, ops.clone(), 4);
        let mut port = FakePort::new(false, 100);
        let t_small = run_to_done(&mut small, &mut port);

        let mut big = OooCore::new(0, ops, 64);
        let mut port2 = FakePort::new(false, 100);
        let t_big = run_to_done(&mut big, &mut port2);
        assert!(
            t_small > t_big,
            "smaller ROB must be slower: small={t_small} big={t_big}"
        );
    }

    #[test]
    fn all_hits_is_roughly_one_ipc() {
        let ops: Vec<Op> = (0..100).map(|i| load(0x40 * i)).collect();
        let mut core = OooCore::new(0, ops, 32);
        let mut port = FakePort::new(true, 0);
        let t = run_to_done(&mut core, &mut port);
        assert!(t <= 300, "hits should sustain ~1 IPC, took {t}");
        assert_eq!(core.stats().l1_hits, 100);
    }

    #[test]
    fn barrier_drains_rob() {
        let ops = vec![load(0x1000), Op::barrier(), Op::compute(1)];
        let mut core = OooCore::new(0, ops, 32);
        let mut port = FakePort::new(false, 50);
        let mut now = 0;
        // First run blocks on the outstanding load (barrier can't pass).
        assert_eq!(core.run(now, &mut port), CoreBlock::OnMemory);
        let (tok, c) = port.outstanding.remove(0);
        core.mem_complete(tok, c);
        now = c;
        // Now the barrier is reached.
        let b = core.run(now, &mut port);
        assert!(
            matches!(b, CoreBlock::AtBarrier | CoreBlock::UntilTime(_)),
            "{b:?}"
        );
    }
}
