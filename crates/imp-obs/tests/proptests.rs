//! Property tests for the observability primitives: the histogram's
//! buckets partition its samples, and the trace ring's drop counter
//! reconciles with pushes minus capacity.

use imp_obs::{bucket_lower, bucket_of, bucket_upper, Histogram, TraceRing, BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Bucket counts always sum to the sample count — no sample is
    /// lost or double-counted, whatever the magnitudes.
    #[test]
    fn histogram_buckets_sum_to_count(samples in proptest::collection::vec(any::<u64>(), 0..256)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let bucket_total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucket_total, h.count());
        prop_assert_eq!(h.count(), samples.len() as u64);
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        prop_assert_eq!(u128::from(h.sum()), sum.min(u128::from(u64::MAX)));
    }

    /// Every sample lands in the bucket whose [lower, upper) range
    /// contains it.
    #[test]
    fn histogram_bucket_ranges_contain_their_samples(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        prop_assert!(v >= bucket_lower(b));
        prop_assert!(v <= bucket_upper(b));
    }

    /// Merging two histograms is sample-set union: counts and bucket
    /// totals add.
    #[test]
    fn histogram_merge_adds(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &s in &a { ha.record(s); }
        for &s in &b { hb.record(s); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.buckets()[i], ha.buckets()[i] + hb.buckets()[i]);
        }
    }

    /// The ring's dropped counter reconciles exactly:
    /// `dropped == max(0, pushes - capacity)`, and the retained items
    /// are precisely the newest `min(pushes, capacity)` in order.
    #[test]
    fn ring_drops_reconcile(capacity in 1usize..64, pushes in 0usize..256) {
        let mut r = TraceRing::new(capacity);
        for i in 0..pushes {
            r.push(i);
        }
        prop_assert_eq!(r.pushes(), pushes as u64);
        prop_assert_eq!(
            r.dropped(),
            (pushes as u64).saturating_sub(capacity as u64)
        );
        prop_assert_eq!(r.len() as u64 + r.dropped(), r.pushes());
        let kept: Vec<usize> = r.iter().copied().collect();
        let expect: Vec<usize> = (pushes.saturating_sub(capacity)..pushes).collect();
        prop_assert_eq!(kept, expect);
    }
}
