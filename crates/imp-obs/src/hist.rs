//! Log2-bucketed latency histograms: full distribution shape at a fixed
//! 65-counter footprint, alongside the simulator's existing sum/count
//! pairs.

use imp_common::Cycle;

/// Number of buckets: one for zero plus one per power of two of a u64.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of cycle values.
///
/// Bucket 0 holds exact zeros; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. The bucket counts always sum to the sample count
/// (property-tested), and exact `sum`/`min`/`max` ride along so means
/// stay exact even though buckets quantize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: Cycle,
    max: Cycle,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: Cycle::MAX,
            max: 0,
        }
    }
}

/// The bucket index `v` falls in: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: Cycle) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<Cycle> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<Cycle> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts (index by [`bucket_of`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ..= 1.0`), or `None` when empty. Quantiles are bucket-
    /// resolution: the true value lies within a factor of two below the
    /// returned bound (exactly for the min/max buckets).
    pub fn quantile(&self, q: f64) -> Option<Cycle> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty `(bucket_lower, bucket_upper, count)` triples, low to
    /// high — the rendering-friendly view.
    pub fn nonzero(&self) -> impl Iterator<Item = (Cycle, Cycle, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_upper(i), n))
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> Cycle {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> Cycle {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn record_tracks_exact_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [0, 1, 7, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 208);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[bucket_of(100)], 2);
        // p100 clamps to the exact max, not the bucket bound.
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(0.0), Some(0));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(9);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(9));
    }
}
