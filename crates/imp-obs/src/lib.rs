//! Observability for the IMP reproduction: a zero-cost-when-off
//! [`Probe`] the simulator threads through its hot paths, recording
//!
//! * **typed events** into a bounded [`Trace`] ring, stamped in
//!   *simulated* cycles and exportable as Chrome trace-event JSON
//!   ([`Trace::to_chrome_json`], loadable in Perfetto);
//! * **log2-bucketed [`Histogram`]s** of demand-miss latency, page-walk
//!   latency and prefetch-to-use distance — distribution shape, not
//!   just sum/count;
//! * **a prefetch-timeliness [`Ledger`]**: every tracked prefetch
//!   follows issue → fill → exactly one of {used, late,
//!   evicted-unused}, per PC and per [`imp_common::stats::AccessClass`];
//! * **epoch samples** ([`EpochSample`]): per-N-cycle counter deltas
//!   plus per-window latency histograms, the time-resolved view of
//!   phase behavior (what an adaptive prefetcher manager keys on).
//!
//! A disabled probe ([`Probe::disabled`], the default) is a single
//! `Option` check per call site — the simulator's statistics and
//! timing are bit-identical with observation on, off, or absent,
//! because probes only ever *record*.
//!
//! # Example
//!
//! ```
//! use imp_common::stats::AccessClass;
//! use imp_common::{LineAddr, Pc};
//! use imp_obs::{ObsConfig, Probe};
//!
//! let probe = Probe::new(&ObsConfig::metrics().with_epoch(1000));
//! let (core, line, pc) = (0, LineAddr::from_line_number(4), Pc::new(0x40));
//! probe.prefetch_issue(core, line, pc, AccessClass::Indirect, 1, 100);
//! probe.prefetch_fill(core, line, 250);
//! probe.prefetch_first_use(core, line, 300);
//! let report = probe.finish_into_report(5_000).unwrap();
//! assert_eq!(report.ledger_total.used, 1);
//! assert!(report.reconciles());
//! assert_eq!(report.epochs.len(), 5);
//! ```

pub mod epoch;
pub mod hist;
pub mod ledger;
pub mod ring;
pub mod trace;

pub use epoch::{EpochCounters, EpochSample, EpochSampler};
pub use hist::{bucket_lower, bucket_of, bucket_upper, Histogram, BUCKETS};
pub use ledger::{merge_counts, FillOutcome, Ledger, LedgerCounts, MAX_HOPS};
pub use ring::TraceRing;
pub use trace::{EventKind, Trace, TraceEvent, Track};

use imp_common::stats::AccessClass;
use imp_common::{Cycle, LineAddr, Pc};
use std::cell::RefCell;
use std::rc::Rc;

/// What to observe. The default observes nothing and builds a disabled
/// (no-op) probe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Maintain histograms and the timeliness ledger.
    pub metrics: bool,
    /// Record typed events into a ring of this capacity.
    pub trace_capacity: Option<usize>,
    /// Snapshot counter deltas every this many simulated cycles.
    pub epoch: Option<Cycle>,
}

impl ObsConfig {
    /// Observe nothing (the no-op probe).
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// Histograms + timeliness ledger, no trace, no epochs.
    pub fn metrics() -> Self {
        ObsConfig {
            metrics: true,
            ..ObsConfig::default()
        }
    }

    /// Everything on: metrics, a `capacity`-event trace ring, and
    /// `epoch`-cycle sampling.
    pub fn full(capacity: usize, epoch: Cycle) -> Self {
        ObsConfig {
            metrics: true,
            trace_capacity: Some(capacity),
            epoch: Some(epoch),
        }
    }

    /// Adds event tracing with the given ring capacity.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Adds epoch sampling every `cycles` simulated cycles.
    #[must_use]
    pub fn with_epoch(mut self, cycles: Cycle) -> Self {
        self.epoch = Some(cycles);
        self
    }

    /// Whether anything at all is observed.
    pub fn enabled(&self) -> bool {
        self.metrics || self.trace_capacity.is_some() || self.epoch.is_some()
    }
}

/// The recording state behind an enabled probe. Histograms and the
/// ledger are always maintained while enabled (the trace's flight
/// spans and the epochs' deltas are derived from them); the trace ring
/// and epoch sampler follow the config.
#[derive(Debug)]
struct Recorder {
    demand_latency: Histogram,
    walk_latency: Histogram,
    use_distance: Histogram,
    ledger: Ledger,
    trace: Option<Trace>,
    epochs: Option<EpochSampler>,
}

impl Recorder {
    fn new(cfg: &ObsConfig) -> Self {
        Recorder {
            demand_latency: Histogram::new(),
            walk_latency: Histogram::new(),
            use_distance: Histogram::new(),
            ledger: Ledger::default(),
            trace: cfg.trace_capacity.map(Trace::new),
            epochs: cfg.epoch.map(EpochSampler::new),
        }
    }

    fn tick(&mut self, now: Cycle) -> Option<&mut EpochCounters> {
        let e = self.epochs.as_mut()?;
        e.advance(now);
        Some(&mut e.current)
    }

    fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }
}

/// A cloneable observation handle. Disabled probes (the default) are a
/// `None` and every record call returns immediately; enabled probes
/// share one recorder across the simulator's subsystems.
///
/// `Rc`-based by design: a `System` is built and run on one thread
/// (sweep workers build in-thread), and the simulator's hot path must
/// not pay for atomics it never contends on.
#[derive(Clone, Debug, Default)]
pub struct Probe(Option<Rc<RefCell<Recorder>>>);

impl Probe {
    /// The no-op probe.
    pub fn disabled() -> Self {
        Probe(None)
    }

    /// A probe recording per `cfg` (disabled if `cfg` observes
    /// nothing).
    pub fn new(cfg: &ObsConfig) -> Self {
        if cfg.enabled() {
            Probe(Some(Rc::new(RefCell::new(Recorder::new(cfg)))))
        } else {
            Probe(None)
        }
    }

    /// Whether this probe records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// A per-core view for the core engines.
    pub fn for_core(&self, core: u32) -> CoreProbe {
        CoreProbe {
            probe: self.clone(),
            core,
        }
    }

    /// A demand miss issued at `issue` completed at `fill` on `core`
    /// (PC `pc`, line `line`).
    #[inline]
    pub fn demand_complete(&self, core: u32, pc: Pc, line: LineAddr, issue: Cycle, fill: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        let latency = fill.saturating_sub(issue);
        r.demand_latency.record(latency);
        if let Some(e) = r.tick(fill) {
            e.demand_misses += 1;
            e.demand_latency_sum += latency;
            e.demand_latency.record(latency);
        }
        r.emit(TraceEvent {
            kind: EventKind::DemandMiss,
            track: Track::Core(core),
            start: issue,
            dur: latency.max(1),
            addr: line.base().raw(),
            aux: u64::from(pc.raw()),
        });
    }

    /// A prefetch MSHR entry was newly allocated on `core` for `line`;
    /// `hop` is the issuing pattern's chain hop (0 for sequential).
    #[inline]
    pub fn prefetch_issue(
        &self,
        core: u32,
        line: LineAddr,
        pc: Pc,
        class: AccessClass,
        hop: u8,
        now: Cycle,
    ) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        r.ledger.issue(core, line, pc, class, hop, now);
        if let Some(e) = r.tick(now) {
            e.pf_issued += 1;
        }
    }

    /// A demand access merged into `line`'s in-flight prefetch on
    /// `core` — the prefetch is late.
    #[inline]
    pub fn prefetch_demand_merge(&self, core: u32, line: LineAddr, now: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        r.ledger.demand_merge(core, line);
        if let Some(e) = r.tick(now) {
            e.pf_late += 1;
        }
        r.emit(TraceEvent {
            kind: EventKind::PrefetchLate,
            track: Track::Core(core),
            start: now,
            dur: 0,
            addr: line.base().raw(),
            aux: 0,
        });
    }

    /// A prefetch fill reached `core`'s L1 for `line`.
    #[inline]
    pub fn prefetch_fill(&self, core: u32, line: LineAddr, now: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        let outcome = r.ledger.fill(core, line, now);
        if let Some(e) = r.tick(now) {
            e.pf_fills += 1;
        }
        if let FillOutcome::Arrived { issue } | FillOutcome::Late { issue } = outcome {
            r.emit(TraceEvent {
                kind: EventKind::PrefetchFlight,
                track: Track::Core(core),
                start: issue,
                dur: now.saturating_sub(issue).max(1),
                addr: line.base().raw(),
                aux: 0,
            });
        }
    }

    /// First demand touch of a prefetched resident `line` on `core`.
    #[inline]
    pub fn prefetch_first_use(&self, core: u32, line: LineAddr, now: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        let Some(distance) = r.ledger.first_use(core, line, now) else {
            return;
        };
        r.use_distance.record(distance);
        if let Some(e) = r.tick(now) {
            e.pf_used += 1;
        }
        r.emit(TraceEvent {
            kind: EventKind::PrefetchFirstUse,
            track: Track::Core(core),
            start: now,
            dur: 0,
            addr: line.base().raw(),
            aux: distance,
        });
    }

    /// A prefetched `line` left `core`'s L1 without ever being
    /// demand-touched.
    #[inline]
    pub fn prefetch_evicted_unused(&self, core: u32, line: LineAddr, now: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        if !r.ledger.evicted_unused(core, line) {
            return;
        }
        if let Some(e) = r.tick(now) {
            e.pf_evicted_unused += 1;
        }
        r.emit(TraceEvent {
            kind: EventKind::PrefetchEvictedUnused,
            track: Track::Core(core),
            start: now,
            dur: 0,
            addr: line.base().raw(),
            aux: 0,
        });
    }

    /// A demand translation on `core` that left the dTLB: an L2-TLB
    /// hit (`levels == 0`) or a page walk of `levels` radix levels,
    /// costing `cycles` from `start`. dTLB hits (`cycles == 0`) are
    /// not recorded.
    #[inline]
    pub fn translation(&self, core: u32, vaddr: u64, start: Cycle, cycles: Cycle, levels: u32) {
        if cycles == 0 {
            return;
        }
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        let kind = if levels == 0 {
            EventKind::L2TlbHit
        } else {
            r.walk_latency.record(cycles);
            if let Some(e) = r.tick(start + cycles) {
                e.walks += 1;
                e.walk_cycles += cycles;
                e.walk_latency.record(cycles);
            }
            EventKind::TlbWalk
        };
        r.emit(TraceEvent {
            kind,
            track: Track::Core(core),
            start,
            dur: cycles,
            addr: vaddr,
            aux: u64::from(levels),
        });
    }

    /// A coherence message of kind-index `kind` handled at home tile
    /// `home` for `line`.
    #[inline]
    pub fn coh_msg(&self, home: u32, kind: u32, line: LineAddr, now: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        if let Some(e) = r.tick(now) {
            e.coh_msgs += 1;
        }
        r.emit(TraceEvent {
            kind: EventKind::CohMsg,
            track: Track::L2Slice(home),
            start: now,
            dur: 0,
            addr: line.base().raw(),
            aux: u64::from(kind),
        });
    }

    /// A directory invalidation round at slice `home` for `line`:
    /// `targets` precise sharers, or `None` for an ACKwise broadcast.
    #[inline]
    pub fn dir_invalidate(&self, home: u32, line: LineAddr, targets: Option<u32>, now: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        r.tick(now);
        r.emit(TraceEvent {
            kind: EventKind::DirInvalidate,
            track: Track::Dir(home),
            start: now,
            dur: 0,
            addr: line.base().raw(),
            aux: targets.map_or(u64::MAX, u64::from),
        });
    }

    /// Core `core` waited at a barrier from `arrive` to `release`.
    #[inline]
    pub fn barrier_wait(&self, core: u32, arrive: Cycle, release: Cycle) {
        let Some(r) = &self.0 else { return };
        let mut r = r.borrow_mut();
        let wait = release.saturating_sub(arrive);
        if let Some(e) = r.tick(release) {
            e.barrier_cycles += wait;
        }
        r.emit(TraceEvent {
            kind: EventKind::BarrierWait,
            track: Track::Core(core),
            start: arrive,
            dur: wait.max(1),
            addr: 0,
            aux: 0,
        });
    }

    /// Closes the run at `runtime` and extracts the report. Returns
    /// `None` for a disabled probe. Callable on any clone; the report
    /// reflects everything every clone recorded.
    pub fn finish_into_report(&self, runtime: Cycle) -> Option<ObsReport> {
        let r = self.0.as_ref()?;
        let mut r = r.borrow_mut();
        r.ledger.finish();
        if let Some(e) = r.epochs.as_mut() {
            e.finish(runtime);
        }
        Some(ObsReport {
            runtime,
            demand_latency: r.demand_latency.clone(),
            walk_latency: r.walk_latency.clone(),
            use_distance: r.use_distance.clone(),
            ledger_total: *r.ledger.total(),
            ledger_per_pc: r.ledger.per_pc(),
            ledger_per_class: *r.ledger.per_class(),
            ledger_per_hop: *r.ledger.per_hop(),
            untracked_fills: r.ledger.untracked_fills(),
            inflight_at_end: r.ledger.inflight_at_end(),
            epochs: r
                .epochs
                .as_ref()
                .map(|e| e.samples().to_vec())
                .unwrap_or_default(),
            trace: r.trace.clone(),
        })
    }
}

/// A probe pre-bound to one core, handed to the core engines so their
/// completion paths record without knowing the system topology.
#[derive(Clone, Debug, Default)]
pub struct CoreProbe {
    probe: Probe,
    core: u32,
}

impl CoreProbe {
    /// The no-op core probe (what engines hold until attached).
    pub fn disabled() -> Self {
        CoreProbe::default()
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.probe.is_enabled()
    }

    /// This core's demand miss (issued at `issue`, PC `pc`, line
    /// `line`) completed at `fill`.
    #[inline]
    pub fn demand_complete(&self, pc: Pc, line: LineAddr, issue: Cycle, fill: Cycle) {
        self.probe.demand_complete(self.core, pc, line, issue, fill);
    }
}

/// Everything one observed run produced.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// The run's total simulated cycles.
    pub runtime: Cycle,
    /// Demand-miss latency distribution (issue → fill, per miss).
    pub demand_latency: Histogram,
    /// Page-walk latency distribution (walks only, not L2-TLB hits).
    pub walk_latency: Histogram,
    /// Prefetch-to-use distance distribution (fill → first touch).
    pub use_distance: Histogram,
    /// Ledger totals over every tracked prefetch.
    pub ledger_total: LedgerCounts,
    /// Ledger counts per prefetch-triggering PC, sorted by PC.
    pub ledger_per_pc: Vec<(Pc, LedgerCounts)>,
    /// Ledger counts per [`AccessClass`].
    pub ledger_per_class: [LedgerCounts; AccessClass::ALL.len()],
    /// Ledger counts per chain hop (index 0 = sequential prefetches,
    /// index `h` = indirect hop `h`; deeper hops fold into the last
    /// bucket).
    pub ledger_per_hop: [LedgerCounts; MAX_HOPS],
    /// Prefetch fills that merged into demand entries (untracked).
    pub untracked_fills: u64,
    /// Tracked prefetches never filled by run end.
    pub inflight_at_end: u64,
    /// Epoch time series (empty unless epoch sampling was configured).
    pub epochs: Vec<EpochSample>,
    /// The event trace (None unless tracing was configured).
    pub trace: Option<Trace>,
}

impl ObsReport {
    /// The acceptance invariant: every tracked fill has exactly one
    /// outcome — `fills == used + late + evicted_unused`.
    pub fn reconciles(&self) -> bool {
        let t = &self.ledger_total;
        t.fills == t.used + t.late + t.evicted_unused
    }

    /// The per-hop form of the invariant: each hop bucket reconciles on
    /// its own and the buckets sum back to the total.
    pub fn reconciles_per_hop(&self) -> bool {
        self.ledger_per_hop
            .iter()
            .all(|c| c.fills == c.used + c.late + c.evicted_unused)
            && merge_counts(self.ledger_per_hop.iter()) == self.ledger_total
    }

    /// The small, thread-portable summary sweeps attach per cell.
    pub fn summary(&self) -> ObsSummary {
        ObsSummary {
            demand_p50: self.demand_latency.quantile(0.5),
            demand_p99: self.demand_latency.quantile(0.99),
            walk_p99: self.walk_latency.quantile(0.99),
            use_distance_p50: self.use_distance.quantile(0.5),
            ledger: self.ledger_total,
            per_hop: self.ledger_per_hop,
            epochs: self.epochs.len(),
        }
    }
}

/// A compact per-run summary (`Send + Sync`: plain counters only) for
/// sweep cells and service manifests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsSummary {
    /// Median demand-miss latency (bucket upper bound), if any misses.
    pub demand_p50: Option<Cycle>,
    /// p99 demand-miss latency (bucket upper bound), if any misses.
    pub demand_p99: Option<Cycle>,
    /// p99 page-walk latency, if any walks.
    pub walk_p99: Option<Cycle>,
    /// Median prefetch-to-use distance, if any used prefetches.
    pub use_distance_p50: Option<Cycle>,
    /// Ledger totals.
    pub ledger: LedgerCounts,
    /// Ledger counts per chain hop (index 0 = sequential; see
    /// [`MAX_HOPS`]). Per-hop accuracy is `per_hop[h].accuracy()`.
    pub per_hop: [LedgerCounts; MAX_HOPS],
    /// Number of epoch samples taken.
    pub epochs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn disabled_probe_is_inert_and_reportless() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        p.demand_complete(0, Pc::new(1), line(1), 0, 100);
        p.prefetch_issue(0, line(1), Pc::new(1), AccessClass::Stream, 0, 0);
        assert!(p.finish_into_report(1000).is_none());
        assert!(!Probe::new(&ObsConfig::off()).is_enabled());
        assert!(!CoreProbe::disabled().is_enabled());
    }

    #[test]
    fn clones_share_one_recorder() {
        let p = Probe::new(&ObsConfig::metrics());
        let core_view = p.for_core(3);
        core_view.demand_complete(Pc::new(0x8), line(2), 100, 250);
        p.demand_complete(1, Pc::new(0x8), line(3), 10, 20);
        let report = p.finish_into_report(500).unwrap();
        assert_eq!(report.demand_latency.count(), 2);
        assert_eq!(report.demand_latency.sum(), 160);
    }

    #[test]
    fn full_config_records_all_layers() {
        let p = Probe::new(&ObsConfig::full(64, 100));
        let pc = Pc::new(0x40);
        p.prefetch_issue(0, line(1), pc, AccessClass::Indirect, 1, 10);
        p.prefetch_fill(0, line(1), 120);
        p.prefetch_first_use(0, line(1), 150);
        p.prefetch_issue(0, line(2), pc, AccessClass::Indirect, 2, 20);
        p.prefetch_demand_merge(0, line(2), 60);
        p.prefetch_fill(0, line(2), 130);
        p.translation(0, 0x1234, 200, 40, 4);
        p.translation(0, 0x5678, 300, 8, 0); // L2 hit: not a walk
        p.translation(0, 0x9abc, 310, 0, 0); // dTLB hit: unrecorded
        p.barrier_wait(1, 400, 450);
        p.coh_msg(2, 3, line(9), 410);
        p.dir_invalidate(2, line(9), None, 415);
        let report = p.finish_into_report(500).unwrap();
        assert!(report.reconciles());
        assert!(report.reconciles_per_hop());
        assert_eq!(report.ledger_total.fills, 2);
        assert_eq!((report.ledger_total.used, report.ledger_total.late), (1, 1));
        assert_eq!(report.ledger_per_hop[1].used, 1);
        assert_eq!(report.ledger_per_hop[2].late, 1);
        assert_eq!(report.walk_latency.count(), 1);
        assert_eq!(report.use_distance.count(), 1);
        assert_eq!(report.use_distance.sum(), 30);
        assert_eq!(report.epochs.len(), 5);
        let total_fills: u64 = report.epochs.iter().map(|e| e.counters.pf_fills).sum();
        assert_eq!(total_fills, 2);
        let trace = report.trace.as_ref().unwrap();
        assert!(trace.iter().any(|e| e.kind == EventKind::L2TlbHit));
        assert!(trace.iter().any(|e| e.kind == EventKind::DirInvalidate));
        let json = trace.to_chrome_json();
        assert!(json.contains("prefetch_first_use"));
        let s = report.summary();
        assert_eq!(s.ledger.fills, 2);
        assert_eq!(s.per_hop[1].accuracy(), 1.0);
        assert_eq!(s.per_hop[2].accuracy(), 0.0, "hop 2's only fill was late");
        assert_eq!(s.epochs, 5);
        assert!(s.demand_p50.is_none(), "no demand misses recorded");
        assert!(s.use_distance_p50.is_some());
    }
}
