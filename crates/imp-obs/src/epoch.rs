//! The epoch sampler: fixed-length windows of simulated time whose
//! per-window counter deltas form a time series — the phase-behavior
//! view the end-of-run aggregates cannot show.

use crate::hist::Histogram;
use imp_common::Cycle;

/// Counter deltas inside one epoch, plus per-window latency
/// distributions (the counters say *how much*, the histograms say *how
/// it was shaped* — a phase detector needs both).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochCounters {
    /// Demand misses completed.
    pub demand_misses: u64,
    /// Cycles those misses stalled (sum of their latencies).
    pub demand_latency_sum: u64,
    /// Prefetches issued.
    pub pf_issued: u64,
    /// Prefetch fills.
    pub pf_fills: u64,
    /// Prefetched lines first-used.
    pub pf_used: u64,
    /// Late prefetch arrivals.
    pub pf_late: u64,
    /// Prefetched lines evicted unused.
    pub pf_evicted_unused: u64,
    /// Page walks completed.
    pub walks: u64,
    /// Cycles spent in those walks.
    pub walk_cycles: u64,
    /// Coherence messages handled.
    pub coh_msgs: u64,
    /// Core-cycles spent waiting at barriers.
    pub barrier_cycles: u64,
    /// Latency distribution of the demand misses completed this window.
    pub demand_latency: Histogram,
    /// Latency distribution of the page walks completed this window.
    pub walk_latency: Histogram,
}

/// One closed epoch: `[start, end)` plus what happened inside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochSample {
    /// First cycle of the window.
    pub start: Cycle,
    /// One past the last cycle of the window (`start + epoch_len`,
    /// except for the final partial window closed at run end).
    pub end: Cycle,
    /// The deltas.
    pub counters: EpochCounters,
}

/// Accumulates events into fixed-`len` windows. Events arrive in
/// near-monotone simulated time (the event queue's order); a window
/// closes when an event stamps at or past its end.
#[derive(Clone, Debug)]
pub struct EpochSampler {
    len: Cycle,
    start: Cycle,
    pub(crate) current: EpochCounters,
    samples: Vec<EpochSample>,
}

impl EpochSampler {
    /// A sampler with `len`-cycle windows (min 1).
    pub fn new(len: Cycle) -> Self {
        EpochSampler {
            len: len.max(1),
            start: 0,
            current: EpochCounters::default(),
            samples: Vec::new(),
        }
    }

    /// Rolls windows forward so `now` falls inside the current one.
    /// Interior empty windows are emitted too — a flat-lined phase is
    /// data, not absence of data.
    pub fn advance(&mut self, now: Cycle) {
        while now >= self.start + self.len {
            let end = self.start + self.len;
            self.samples.push(EpochSample {
                start: self.start,
                end,
                counters: std::mem::take(&mut self.current),
            });
            self.start = end;
        }
    }

    /// Closes the final (possibly partial) window at `runtime`.
    pub fn finish(&mut self, runtime: Cycle) {
        self.advance(runtime.max(self.start));
        let end = runtime.max(self.start);
        if end > self.start || self.current != EpochCounters::default() {
            self.samples.push(EpochSample {
                start: self.start,
                end: end.max(self.start + 1),
                counters: std::mem::take(&mut self.current),
            });
            self.start = end;
        }
    }

    /// The closed windows, oldest first.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Consumes the sampler, returning the closed windows.
    pub fn into_samples(self) -> Vec<EpochSample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_on_crossing_and_at_finish() {
        let mut s = EpochSampler::new(100);
        s.advance(10);
        s.current.demand_misses += 1;
        s.advance(250); // closes [0,100) and [100,200)
        s.current.demand_misses += 2;
        s.finish(260);
        let w = s.samples();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].start, w[0].end), (0, 100));
        assert_eq!(w[0].counters.demand_misses, 1);
        assert_eq!(w[1].counters.demand_misses, 0, "empty interior window");
        assert_eq!((w[2].start, w[2].end), (200, 260));
        assert_eq!(w[2].counters.demand_misses, 2);
    }

    #[test]
    fn windows_carry_their_own_latency_histograms() {
        let mut s = EpochSampler::new(100);
        s.advance(10);
        s.current.demand_latency.record(40);
        s.current.demand_latency.record(200);
        s.advance(150); // closes [0,100)
        s.current.walk_latency.record(16);
        s.finish(180);
        let w = s.samples();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].counters.demand_latency.count(), 2);
        assert_eq!(w[0].counters.demand_latency.sum(), 240);
        assert_eq!(w[0].counters.walk_latency.count(), 0);
        assert_eq!(w[1].counters.demand_latency.count(), 0, "window reset");
        assert_eq!(w[1].counters.walk_latency.count(), 1);
    }

    #[test]
    fn zero_length_runs_emit_nothing() {
        let mut s = EpochSampler::new(50);
        s.finish(0);
        assert!(s.samples().is_empty());
    }
}
