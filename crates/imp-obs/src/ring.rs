//! The bounded trace ring: a fixed-capacity buffer that keeps the most
//! recent events and counts what it had to drop.

/// A bounded ring buffer over `T` that retains the newest `capacity`
/// items. `dropped()` always reconciles with `pushes() - capacity`
/// (property-tested), so a truncated trace is detectable, never silent.
#[derive(Clone, Debug)]
pub struct TraceRing<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest retained item once the ring has wrapped.
    head: usize,
    pushes: u64,
}

impl<T> TraceRing<T> {
    /// A ring retaining at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            pushes: 0,
        }
    }

    /// Appends an item, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushes += 1;
    }

    /// Total items ever pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Items evicted to stay within capacity:
    /// `max(0, pushes - capacity)`.
    pub fn dropped(&self) -> u64 {
        self.pushes.saturating_sub(self.capacity as u64)
    }

    /// Items currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_in_order() {
        let mut r = TraceRing::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushes(), 5);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut r = TraceRing::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!['a', 'b']);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRing::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(r.dropped(), 1);
    }
}
