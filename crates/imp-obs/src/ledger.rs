//! The prefetch-timeliness ledger: every tracked prefetch follows
//! issue → fill → exactly one of {used, late, evicted-unused}, so
//! coverage, accuracy and timeliness fall out as exact counts — per PC,
//! per [`AccessClass`], and in total.

use imp_common::stats::AccessClass;
use imp_common::{Cycle, FastMap, LineAddr, Pc};

/// Number of per-hop attribution buckets: bucket 0 holds sequential
/// prefetches, bucket `h` holds indirect chain hop `h`, and hops past
/// the range fold into the last bucket.
pub const MAX_HOPS: usize = 8;

/// Outcome counters for a population of prefetches. After
/// [`Ledger::finish`], `fills == used + late + evicted_unused` exactly
/// (the acceptance invariant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerCounts {
    /// Prefetches issued (MSHR newly allocated).
    pub issued: u64,
    /// Tracked prefetch fills that reached the L1.
    pub fills: u64,
    /// Fills whose line was demand-touched after arriving — the
    /// prefetch was timely and useful.
    pub used: u64,
    /// Fills a demand access merged into *before* arrival — useful but
    /// late (the demand still stalled).
    pub late: u64,
    /// Fills evicted (or still resident at run end) without any demand
    /// touch — wasted traffic.
    pub evicted_unused: u64,
}

impl LedgerCounts {
    fn add(&mut self, other: &LedgerCounts) {
        self.issued += other.issued;
        self.fills += other.fills;
        self.used += other.used;
        self.late += other.late;
        self.evicted_unused += other.evicted_unused;
    }

    /// Fraction of fills that were used timely (`used / fills`).
    pub fn accuracy(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.used as f64 / self.fills as f64
        }
    }

    /// Fraction of *useful* fills that arrived in time
    /// (`used / (used + late)`).
    pub fn timeliness(&self) -> f64 {
        let useful = self.used + self.late;
        if useful == 0 {
            0.0
        } else {
            self.used as f64 / useful as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum State {
    /// Issued, data not yet in the L1; `late` marks a demand merge.
    InFlight { late: bool },
    /// Filled at `fill`, awaiting its first demand touch.
    Resident { fill: Cycle },
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    pc: Pc,
    class: AccessClass,
    /// Chain hop of the issuing pattern (0 = sequential).
    hop: u8,
    issue: Cycle,
    state: State,
}

/// What a [`Ledger::fill`] closed or opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// The tracked prefetch arrived before any demand: now resident,
    /// awaiting first use. Carries the issue cycle (for flight spans).
    Arrived {
        /// Cycle the prefetch was issued.
        issue: Cycle,
    },
    /// A demand had merged in flight: the fill closes the entry as
    /// late.
    Late {
        /// Cycle the prefetch was issued.
        issue: Cycle,
    },
    /// No tracked entry (the prefetch merged into a demand MSHR entry
    /// at issue, or a second fill of a resident line).
    Untracked,
}

/// The in-flight tracking structure. Keyed by `(core, line)`: one
/// tracked prefetch per line per core at a time (a re-issue to a line
/// whose earlier prefetch was never used supersedes it, counting the
/// old one evicted-unused).
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    entries: FastMap<(u32, LineAddr), Entry>,
    total: LedgerCounts,
    per_pc: FastMap<Pc, LedgerCounts>,
    per_class: [LedgerCounts; AccessClass::ALL.len()],
    per_hop: [LedgerCounts; MAX_HOPS],
    /// Prefetch-waiter fills with no tracked issue (the prefetch merged
    /// into an existing demand MSHR entry) — excluded from the
    /// invariant by construction.
    untracked_fills: u64,
    /// Tracked prefetches still in flight at run end (never filled).
    inflight_at_end: u64,
    finished: bool,
}

impl Ledger {
    fn bump(&mut self, pc: Pc, class: AccessClass, hop: u8, f: impl Fn(&mut LedgerCounts)) {
        f(&mut self.total);
        f(self.per_pc.entry(pc).or_default());
        f(&mut self.per_class[class.index()]);
        f(&mut self.per_hop[(hop as usize).min(MAX_HOPS - 1)]);
    }

    /// A prefetch MSHR entry was newly allocated at cycle `now`; `hop`
    /// is the issuing pattern's chain hop (0 for sequential).
    /// An issue displacing an unused resident entry for the same line
    /// counts the old one evicted-unused (superseded).
    pub fn issue(
        &mut self,
        core: u32,
        line: LineAddr,
        pc: Pc,
        class: AccessClass,
        hop: u8,
        now: Cycle,
    ) {
        if let Some(old) = self.entries.insert(
            (core, line),
            Entry {
                pc,
                class,
                hop,
                issue: now,
                state: State::InFlight { late: false },
            },
        ) {
            // A re-issue over an unused resident (or doubly-issued)
            // prefetch: close the old one out so the invariant holds.
            match old.state {
                State::Resident { .. } => {
                    self.bump(old.pc, old.class, old.hop, |c| c.evicted_unused += 1);
                }
                State::InFlight { .. } => self.inflight_at_end += 1,
            }
        }
        self.bump(pc, class, hop, |c| c.issued += 1);
    }

    /// A demand access merged into this line's in-flight prefetch: the
    /// prefetch is late.
    pub fn demand_merge(&mut self, core: u32, line: LineAddr) {
        if let Some(e) = self.entries.get_mut(&(core, line)) {
            if let State::InFlight { late } = &mut e.state {
                *late = true;
            }
        }
    }

    /// A prefetch fill reached core `core`'s L1.
    pub fn fill(&mut self, core: u32, line: LineAddr, now: Cycle) -> FillOutcome {
        match self.entries.get_mut(&(core, line)) {
            Some(e) => match e.state {
                State::InFlight { late } => {
                    let (pc, class, hop, issue) = (e.pc, e.class, e.hop, e.issue);
                    if late {
                        self.entries.remove(&(core, line));
                        self.bump(pc, class, hop, |c| {
                            c.fills += 1;
                            c.late += 1;
                        });
                        FillOutcome::Late { issue }
                    } else {
                        e.state = State::Resident { fill: now };
                        self.bump(pc, class, hop, |c| c.fills += 1);
                        FillOutcome::Arrived { issue }
                    }
                }
                // A second fill of an already-resident entry (partial
                // sectors): not a new tracked prefetch.
                State::Resident { .. } => {
                    self.untracked_fills += 1;
                    FillOutcome::Untracked
                }
            },
            None => {
                self.untracked_fills += 1;
                FillOutcome::Untracked
            }
        }
    }

    /// First demand touch of a resident prefetched line. Returns the
    /// prefetch-to-use distance in cycles when this closed a tracked
    /// entry.
    pub fn first_use(&mut self, core: u32, line: LineAddr, now: Cycle) -> Option<Cycle> {
        let e = self.entries.get(&(core, line)).copied()?;
        let State::Resident { fill } = e.state else {
            return None;
        };
        self.entries.remove(&(core, line));
        self.bump(e.pc, e.class, e.hop, |c| c.used += 1);
        Some(now.saturating_sub(fill))
    }

    /// A prefetched line left the L1 untouched (eviction, invalidation
    /// or fill-displacement). Returns true when it closed a tracked
    /// entry.
    pub fn evicted_unused(&mut self, core: u32, line: LineAddr) -> bool {
        let Some(e) = self.entries.get(&(core, line)).copied() else {
            return false;
        };
        let State::Resident { .. } = e.state else {
            return false;
        };
        self.entries.remove(&(core, line));
        self.bump(e.pc, e.class, e.hop, |c| c.evicted_unused += 1);
        true
    }

    /// Closes the run: resident entries never touched count
    /// evicted-unused (mirroring the simulator's end-of-run unused
    /// sweep); entries still in flight are dropped from the invariant.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let remaining: Vec<Entry> = self.entries.values().copied().collect();
        self.entries.clear();
        for e in remaining {
            match e.state {
                State::Resident { .. } => {
                    self.bump(e.pc, e.class, e.hop, |c| c.evicted_unused += 1);
                }
                State::InFlight { .. } => self.inflight_at_end += 1,
            }
        }
    }

    /// Aggregate counts over every tracked prefetch.
    pub fn total(&self) -> &LedgerCounts {
        &self.total
    }

    /// Counts per prefetch-triggering PC, sorted by PC for
    /// deterministic iteration.
    pub fn per_pc(&self) -> Vec<(Pc, LedgerCounts)> {
        let mut v: Vec<(Pc, LedgerCounts)> = self.per_pc.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by_key(|(pc, _)| pc.raw());
        v
    }

    /// Counts per [`AccessClass`] (indexed by `AccessClass::index()`).
    pub fn per_class(&self) -> &[LedgerCounts; AccessClass::ALL.len()] {
        &self.per_class
    }

    /// Counts per chain hop (index 0 = sequential, index `h` =
    /// indirect hop `h`; hops past the range fold into the last
    /// bucket).
    pub fn per_hop(&self) -> &[LedgerCounts; MAX_HOPS] {
        &self.per_hop
    }

    /// Prefetch-waiter fills that were never tracked (merged into a
    /// demand entry at issue).
    pub fn untracked_fills(&self) -> u64 {
        self.untracked_fills
    }

    /// Tracked prefetches that never filled (still in flight at run
    /// end or superseded mid-flight).
    pub fn inflight_at_end(&self) -> u64 {
        self.inflight_at_end
    }

    /// The acceptance invariant: after [`Ledger::finish`], every
    /// tracked fill has exactly one outcome.
    pub fn reconciles(&self) -> bool {
        self.total.fills == self.total.used + self.total.late + self.total.evicted_unused
    }

    /// The per-hop form of the acceptance invariant: every hop bucket
    /// reconciles on its own (a hop never inherits another hop's
    /// outcome), and the buckets sum back to the total.
    pub fn reconciles_per_hop(&self) -> bool {
        let sum = merge_counts(self.per_hop.iter());
        self.per_hop
            .iter()
            .all(|c| c.fills == c.used + c.late + c.evicted_unused)
            && sum == self.total
    }
}

/// Folds a set of per-core or per-run ledgers into one summary count.
pub fn merge_counts<'a>(counts: impl Iterator<Item = &'a LedgerCounts>) -> LedgerCounts {
    let mut out = LedgerCounts::default();
    for c in counts {
        out.add(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn used_late_and_unused_partition_fills() {
        let mut l = Ledger::default();
        let pc = Pc::new(0x10);
        // Timely + used (chain hop 1).
        l.issue(0, line(1), pc, AccessClass::Indirect, 1, 70);
        assert_eq!(l.fill(0, line(1), 100), FillOutcome::Arrived { issue: 70 });
        assert_eq!(l.first_use(0, line(1), 130), Some(30));
        // Late (chain hop 2).
        l.issue(0, line(2), pc, AccessClass::Indirect, 2, 150);
        l.demand_merge(0, line(2));
        assert_eq!(l.fill(0, line(2), 200), FillOutcome::Late { issue: 150 });
        // Evicted unused.
        l.issue(0, line(3), pc, AccessClass::Stream, 0, 250);
        l.fill(0, line(3), 300);
        assert!(l.evicted_unused(0, line(3)));
        // Resident at end, untouched.
        l.issue(0, line(4), pc, AccessClass::Stream, 0, 350);
        l.fill(0, line(4), 400);
        // Never filled.
        l.issue(0, line(5), pc, AccessClass::Stream, 0, 450);
        l.finish();
        let t = *l.total();
        assert_eq!(t.issued, 5);
        assert_eq!(t.fills, 4);
        assert_eq!((t.used, t.late, t.evicted_unused), (1, 1, 2));
        assert!(l.reconciles());
        assert!(l.reconciles_per_hop());
        assert_eq!(l.inflight_at_end(), 1);
        assert_eq!(l.per_pc().len(), 1);
        let by_class = l.per_class();
        assert_eq!(by_class[AccessClass::Indirect.index()].used, 1);
        assert_eq!(by_class[AccessClass::Stream.index()].evicted_unused, 2);
        let by_hop = l.per_hop();
        assert_eq!(by_hop[0].issued, 3);
        assert_eq!((by_hop[1].issued, by_hop[1].used), (1, 1));
        assert_eq!((by_hop[2].issued, by_hop[2].late), (1, 1));
    }

    #[test]
    fn out_of_range_hops_fold_into_the_last_bucket() {
        let mut l = Ledger::default();
        let pc = Pc::new(0x30);
        l.issue(0, line(1), pc, AccessClass::Indirect, 200, 10);
        l.fill(0, line(1), 20);
        l.finish();
        assert_eq!(l.per_hop()[MAX_HOPS - 1].issued, 1);
        assert!(l.reconciles_per_hop());
    }

    #[test]
    fn untracked_fills_do_not_enter_the_invariant() {
        let mut l = Ledger::default();
        assert_eq!(l.fill(0, line(9), 50), FillOutcome::Untracked);
        l.finish();
        assert_eq!(l.untracked_fills(), 1);
        assert_eq!(l.total().fills, 0);
        assert!(l.reconciles());
    }

    #[test]
    fn reissue_supersedes_an_unused_resident() {
        let mut l = Ledger::default();
        let pc = Pc::new(0x20);
        l.issue(0, line(7), pc, AccessClass::Stream, 0, 5);
        l.fill(0, line(7), 10);
        l.issue(0, line(7), pc, AccessClass::Stream, 0, 30); // partial re-issue
        l.fill(0, line(7), 40);
        assert_eq!(l.first_use(0, line(7), 60), Some(20));
        l.finish();
        let t = *l.total();
        assert_eq!(t.fills, 2);
        assert_eq!((t.used, t.evicted_unused), (1, 1));
        assert!(l.reconciles());
    }

    #[test]
    fn rates_follow_the_counts() {
        let c = LedgerCounts {
            issued: 10,
            fills: 8,
            used: 4,
            late: 2,
            evicted_unused: 2,
        };
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
        assert!((c.timeliness() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(LedgerCounts::default().accuracy(), 0.0);
        assert_eq!(LedgerCounts::default().timeliness(), 0.0);
    }
}
