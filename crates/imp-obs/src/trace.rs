//! Typed simulator events and their Chrome trace-event JSON export
//! (the format Perfetto and `chrome://tracing` load directly).

use crate::ring::TraceRing;
use imp_common::Cycle;
use std::fmt::Write as _;

/// Which timeline an event belongs to. Tracks render as one named
/// thread per core / L2 slice / directory slice (plus one for the VM
/// walkers' shared structures).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Track {
    /// A core's pipeline-facing events (demand misses, prefetches,
    /// TLB walks, barrier waits).
    Core(u32),
    /// An L2 slice / home tile (coherence traffic it handles).
    L2Slice(u32),
    /// A directory slice (invalidation fan-out).
    Dir(u32),
}

impl Track {
    /// A stable thread id for the Chrome export: cores first, then L2
    /// slices, then directory slices, in disjoint banks.
    fn tid(self) -> u64 {
        match self {
            Track::Core(c) => u64::from(c),
            Track::L2Slice(s) => 100_000 + u64::from(s),
            Track::Dir(d) => 200_000 + u64::from(d),
        }
    }

    fn name(self) -> String {
        match self {
            Track::Core(c) => format!("core {c}"),
            Track::L2Slice(s) => format!("l2 slice {s}"),
            Track::Dir(d) => format!("dir {d}"),
        }
    }
}

/// What happened. Span kinds carry a non-zero duration; the rest are
/// instants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A demand miss in flight: issue → fill (span; `aux` = PC).
    DemandMiss,
    /// A prefetch in flight: issue → fill (span; `aux` = PC).
    PrefetchFlight,
    /// First demand touch of a prefetched line (`aux` = cycles since
    /// fill).
    PrefetchFirstUse,
    /// A demand merged into a still-in-flight prefetch — the prefetch
    /// was late.
    PrefetchLate,
    /// A prefetched line evicted without ever being touched.
    PrefetchEvictedUnused,
    /// A page-table walk (span; `aux` = radix levels walked).
    TlbWalk,
    /// A dTLB miss served by the shared L2 TLB (span of the L2 probe).
    L2TlbHit,
    /// A core waiting at a barrier: arrival → release (span).
    BarrierWait,
    /// A coherence message handled at a home tile (`aux` = message
    /// kind index, see the simulator's `Msg`).
    CohMsg,
    /// A directory invalidation round (`aux` = targets; `u64::MAX`
    /// encodes an ACKwise broadcast).
    DirInvalidate,
}

impl EventKind {
    fn name(self) -> &'static str {
        match self {
            EventKind::DemandMiss => "demand_miss",
            EventKind::PrefetchFlight => "prefetch",
            EventKind::PrefetchFirstUse => "prefetch_first_use",
            EventKind::PrefetchLate => "prefetch_late",
            EventKind::PrefetchEvictedUnused => "prefetch_evicted_unused",
            EventKind::TlbWalk => "tlb_walk",
            EventKind::L2TlbHit => "l2_tlb_hit",
            EventKind::BarrierWait => "barrier_wait",
            EventKind::CohMsg => "coh_msg",
            EventKind::DirInvalidate => "dir_invalidate",
        }
    }
}

/// One recorded event, stamped in *simulated* cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Whose timeline it happened on.
    pub track: Track,
    /// Start cycle (simulated).
    pub start: Cycle,
    /// Duration in cycles; 0 renders as an instant.
    pub dur: Cycle,
    /// The address involved (line base or virtual address), 0 if none.
    pub addr: u64,
    /// Kind-specific payload (PC, levels, message kind, distance).
    pub aux: u64,
}

/// The recorded trace: a bounded ring of [`TraceEvent`]s plus drop
/// accounting.
#[derive(Clone, Debug)]
pub struct Trace {
    ring: TraceRing<TraceEvent>,
}

impl Trace {
    /// An empty trace retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            ring: TraceRing::new(capacity),
        }
    }

    /// Records one event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }

    /// Total events ever recorded (including dropped).
    pub fn pushes(&self) -> u64 {
        self.ring.pushes()
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Exports the retained events as Chrome trace-event JSON (the
    /// object form: `{"traceEvents": [...], ...}`), loadable in
    /// Perfetto. One named thread per track; spans are "X" complete
    /// events, instants are "i"; timestamps are simulated cycles
    /// reported as microseconds (1 cycle = 1 µs of trace time).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + 128 * self.ring.len());
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut named: Vec<Track> = Vec::new();
        for ev in self.ring.iter() {
            if !named.contains(&ev.track) {
                named.push(ev.track);
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    ev.track.tid(),
                    ev.track.name()
                );
            }
            if !first {
                out.push(',');
            }
            first = false;
            let ph = if ev.dur > 0 { "X" } else { "i" };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
                ev.kind.name(),
                ph,
                ev.track.tid(),
                ev.start
            );
            if ev.dur > 0 {
                let _ = write!(out, ",\"dur\":{}", ev.dur);
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(
                out,
                ",\"args\":{{\"addr\":\"0x{:x}\",\"aux\":{}}}}}",
                ev.addr, ev.aux
            );
        }
        let _ = write!(
            out,
            "],\"otherData\":{{\"pushes\":{},\"dropped\":{}}}}}",
            self.ring.pushes(),
            self.ring.dropped()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, track: Track, start: Cycle, dur: Cycle) -> TraceEvent {
        TraceEvent {
            kind,
            track,
            start,
            dur,
            addr: 0x40,
            aux: 7,
        }
    }

    #[test]
    fn export_names_tracks_once_and_marks_spans() {
        let mut t = Trace::new(16);
        t.push(ev(EventKind::DemandMiss, Track::Core(3), 10, 90));
        t.push(ev(EventKind::CohMsg, Track::L2Slice(1), 15, 0));
        t.push(ev(EventKind::DemandMiss, Track::Core(3), 200, 50));
        let json = t.to_chrome_json();
        assert_eq!(json.matches("thread_name").count(), 2, "{json}");
        assert!(json.contains("\"name\":\"core 3\""));
        assert!(json.contains("\"name\":\"l2 slice 1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"dur\":90"));
        assert!(json.contains("\"dropped\":0"));
        // Balanced braces/brackets — the cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn drops_are_reported_in_other_data() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(ev(EventKind::TlbWalk, Track::Core(0), i, 4));
        }
        assert_eq!(t.dropped(), 3);
        assert!(t.to_chrome_json().contains("\"pushes\":5,\"dropped\":3"));
    }
}
