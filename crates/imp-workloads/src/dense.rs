//! A dense, regular control workload (standing in for the SPLASH-2 check
//! of Section 6.1): a 5-point Jacobi relaxation over a 2-D grid. No
//! indirection anywhere — IMP must neither trigger nor hurt.

use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::Pc;
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_N: Pc = Pc::new(80);
const PC_S: Pc = Pc::new(81);
const PC_W: Pc = Pc::new(82);
const PC_E: Pc = Pc::new(83);
const PC_C: Pc = Pc::new(84);
const PC_OUT: Pc = Pc::new(85);

/// The dense regular control workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dense;

fn side(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 64,
        Scale::Small => 384,
        Scale::Large => 1024,
    }
}

impl Workload for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let n = side(params.scale);
        let mut space = AddressSpace::new();
        let mem = FunctionalMemory::new();
        let a = space.alloc_array::<f64>("a", n * n);
        let bb = space.alloc_array::<f64>("b", n * n);

        // Host relaxation for the functional result.
        let mut grid: Vec<f64> = (0..n * n).map(|i| ((i % 11) as f64) * 0.1).collect();
        let mut out = vec![0.0f64; (n * n) as usize];
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = (y * n + x) as usize;
                out[i] = 0.25
                    * (grid[i - 1] + grid[i + 1] + grid[i - n as usize] + grid[i + n as usize]);
            }
        }
        std::mem::swap(&mut grid, &mut out);

        let mut program = Program::new("dense", params.cores);
        let parts = partition(n - 2, params.cores);
        for (c, range) in parts.iter().enumerate() {
            let ops = program.core_mut(c);
            for yy in range.clone() {
                let y = yy + 1;
                for x in 1..n - 1 {
                    let i = y * n + x;
                    ops.push(Op::load(a.addr_of(i - n), 8, PC_N, AccessClass::Stream));
                    ops.push(Op::load(a.addr_of(i - 1), 8, PC_W, AccessClass::Stream));
                    ops.push(Op::load(a.addr_of(i), 8, PC_C, AccessClass::Stream));
                    ops.push(Op::load(a.addr_of(i + 1), 8, PC_E, AccessClass::Stream));
                    ops.push(Op::load(a.addr_of(i + n), 8, PC_S, AccessClass::Stream));
                    ops.push(Op::compute(4));
                    ops.push(Op::store(bb.addr_of(i), 8, PC_OUT, AccessClass::Stream));
                }
            }
        }
        program.barrier();

        let result = grid.iter().sum::<f64>();
        Built {
            program,
            mem,
            result,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_indirect_accesses_at_all() {
        let built = Dense.build(&WorkloadParams::new(4, Scale::Tiny));
        for c in 0..4 {
            assert!(built
                .program
                .ops(c)
                .iter()
                .all(|o| o.class != AccessClass::Indirect));
        }
    }

    #[test]
    fn relaxation_smooths_the_grid() {
        let built = Dense.build(&WorkloadParams::new(2, Scale::Tiny));
        assert!(built.result.is_finite());
        assert!(built.result > 0.0);
    }
}
