//! Triangle Counting (Section 5.3): for each vertex the local
//! neighborhood is converted to a *bit vector*, which is then probed
//! indirectly while scanning the two-hop neighborhood. The bit probes
//! `bitvec[adj[e] >> 3]` are the paper's coefficient-1/8 pattern
//! (shift -3).

use crate::gen::CsrGraph;
use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::{Pc, SplitMix64};
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_ADJ_SET: Pc = Pc::new(40);
const PC_BIT_SET: Pc = Pc::new(41);
const PC_ADJ_MID: Pc = Pc::new(42);
const PC_XADJ_W: Pc = Pc::new(43);
const PC_ADJ_IN: Pc = Pc::new(44);
const PC_BIT_TEST: Pc = Pc::new(45);
const PC_BIT_CLR: Pc = Pc::new(46);
const PC_SW_IDX: Pc = Pc::new(47);
const PC_SW_PF: Pc = Pc::new(48);

/// The Triangle Counting workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriCount;

fn sizes(scale: Scale) -> (u64, u64) {
    // (vertices, edges) of the uniform random DAG.
    match scale {
        Scale::Tiny => (1 << 10, 1 << 12),
        Scale::Small => (1 << 17, 1 << 18),
        Scale::Large => (1 << 19, 1 << 21),
    }
}

/// A uniform random graph oriented low-id -> high-id (acyclic, as the
/// paper's workload requires).
pub(crate) fn input_graph(scale: Scale, seed: u64) -> CsrGraph {
    let (n, m) = sizes(scale);
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let a = rng.next_below(n) as u32;
        let b = rng.next_below(n) as u32;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if lo != hi {
            edges.push((lo, hi));
        }
    }
    CsrGraph::from_edges(n, edges)
}

/// Brute-force reference count (test use; O(sum deg^2)).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn count_reference(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for u in 0..g.vertices() {
        let nu = g.row(u);
        for &w in nu {
            for &x in g.row(u64::from(w)) {
                if nu.binary_search(&x).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

impl Workload for TriCount {
    fn name(&self) -> &'static str {
        "tri_count"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let g = input_graph(params.scale, params.seed);
        let n = g.vertices();

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_xadj = space.alloc_array::<u32>("xadj", n + 1);
        let a_adj = space.alloc_array::<u32>("adj", g.edges().max(1));
        for (i, &x) in g.xadj.iter().enumerate() {
            a_xadj.write(&mut mem, i as u64, x);
        }
        for (i, &x) in g.adj.iter().enumerate() {
            a_adj.write(&mut mem, i as u64, x);
        }
        // One private neighborhood bit vector per core.
        let bitvecs: Vec<_> = (0..params.cores)
            .map(|c| space.alloc_bitvec(&format!("bits{c}"), n))
            .collect();

        let mut program = Program::new("tri_count", params.cores);
        let parts = partition(n, params.cores);
        let mut total = 0u64;

        for (c, range) in parts.iter().enumerate() {
            let bv = bitvecs[c];
            let ops = program.core_mut(c);
            for u in range.clone() {
                let nu = g.row(u);
                if nu.is_empty() {
                    continue;
                }
                let (lo, hi) = (g.xadj[u as usize] as u64, g.xadj[u as usize + 1] as u64);
                // Phase 1: mark N(u) in the bit vector.
                for e in lo..hi {
                    let w = g.adj[e as usize];
                    ops.push(Op::load(
                        a_adj.addr_of(e),
                        4,
                        PC_ADJ_SET,
                        AccessClass::Stream,
                    ));
                    ops.push(
                        Op::store(
                            bv.addr_of_bit(u64::from(w)),
                            1,
                            PC_BIT_SET,
                            AccessClass::Indirect,
                        )
                        .with_dep(1),
                    );
                    ops.push(Op::compute(1));
                }
                // Phase 2: for each neighbor w, probe N(w) against the bits.
                for e in lo..hi {
                    let w = g.adj[e as usize];
                    ops.push(Op::load(
                        a_adj.addr_of(e),
                        4,
                        PC_ADJ_MID,
                        AccessClass::Stream,
                    ));
                    ops.push(
                        Op::load(
                            a_xadj.addr_of(u64::from(w)),
                            4,
                            PC_XADJ_W,
                            AccessClass::Indirect,
                        )
                        .with_dep(1),
                    );
                    let (wlo, whi) = (g.xadj[w as usize] as u64, g.xadj[w as usize + 1] as u64);
                    for k in wlo..whi {
                        if params.software_prefetch && k + params.sw_distance < whi {
                            let fx = g.adj[(k + params.sw_distance) as usize];
                            ops.push(Op::load(
                                a_adj.addr_of(k + params.sw_distance),
                                4,
                                PC_SW_IDX,
                                AccessClass::Stream,
                            ));
                            ops.push(Op::compute(1));
                            ops.push(Op::sw_prefetch(bv.addr_of_bit(u64::from(fx)), PC_SW_PF));
                        }
                        let x = g.adj[k as usize];
                        ops.push(Op::load(
                            a_adj.addr_of(k),
                            4,
                            PC_ADJ_IN,
                            AccessClass::Stream,
                        ));
                        ops.push(
                            Op::load(
                                bv.addr_of_bit(u64::from(x)),
                                1,
                                PC_BIT_TEST,
                                AccessClass::Indirect,
                            )
                            .with_dep(1),
                        );
                        ops.push(Op::compute(1));
                        if nu.binary_search(&x).is_ok() {
                            total += 1;
                            ops.push(Op::compute(1));
                        }
                    }
                }
                // Phase 3: clear the marks.
                for e in lo..hi {
                    let w = g.adj[e as usize];
                    ops.push(Op::load(
                        a_adj.addr_of(e),
                        4,
                        PC_ADJ_SET,
                        AccessClass::Stream,
                    ));
                    ops.push(
                        Op::store(
                            bv.addr_of_bit(u64::from(w)),
                            1,
                            PC_BIT_CLR,
                            AccessClass::Indirect,
                        )
                        .with_dep(1),
                    );
                }
            }
        }
        program.barrier();

        Built {
            program,
            mem,
            result: total as f64,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_brute_force() {
        let built = TriCount.build(&WorkloadParams::new(4, Scale::Tiny));
        let g = input_graph(Scale::Tiny, 42);
        let expected = count_reference(&g);
        assert_eq!(built.result as u64, expected);
        assert!(expected > 0, "test graph should contain triangles");
    }

    #[test]
    fn bit_probes_use_one_eighth_coefficient() {
        let built = TriCount.build(&WorkloadParams::new(2, Scale::Tiny));
        let g = input_graph(Scale::Tiny, 42);
        // All bit-test addresses for core 0 must fall within its private
        // bit vector span (n/8 bytes, line-rounded).
        let probes: Vec<u64> = built
            .program
            .ops(0)
            .iter()
            .filter(|o| o.pc == PC_BIT_TEST)
            .map(|o| o.addr)
            .collect();
        assert!(!probes.is_empty());
        let lo = probes.iter().min().unwrap();
        let hi = probes.iter().max().unwrap();
        assert!(
            hi - lo <= g.vertices() / 8,
            "probe span {} fits the bitvec",
            hi - lo
        );
    }

    #[test]
    fn marks_are_set_and_cleared_symmetrically() {
        let built = TriCount.build(&WorkloadParams::new(2, Scale::Tiny));
        for c in 0..2 {
            let sets = built
                .program
                .ops(c)
                .iter()
                .filter(|o| o.pc == PC_BIT_SET)
                .count();
            let clears = built
                .program
                .ops(c)
                .iter()
                .filter(|o| o.pc == PC_BIT_CLR)
                .count();
            assert_eq!(sets, clears, "core {c}");
        }
    }
}
