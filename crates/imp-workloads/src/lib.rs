//! The paper's evaluation workloads (Section 5.3), re-implemented over
//! synthetic inputs.
//!
//! Each workload runs its *real algorithm* on host data structures while
//! emitting, per core, the instrumented op stream the simulator executes.
//! Index arrays (and any array whose values act as indices) are also
//! written into the simulated [`FunctionalMemory`] so IMP reads genuine
//! index values when it prefetches `B[i + delta]`.
//!
//! | Workload  | Indirect pattern | Coefficient (shift) |
//! |-----------|------------------|---------------------|
//! | PageRank  | `pr[adj[e]]`, `deg[adj[e]]` (multi-way) | 8 (3), 4 (2) |
//! | TriCount  | `bitvec[adj[e] >> 3]` | 1/8 (-3) |
//! | Graph500  | `xadj[frontier[i]]` then `adj[...]`, `parent[adj[e]]` (multi-level) | 4 (2) |
//! | SGD       | `U[ru[k] * 2]`, `V[ri[k] * 2]` (16-byte rows) | 16 (4) |
//! | LSH       | `data[cand[i] * 2]` (16-byte rows) | 16 (4) |
//! | SpMV      | `x[col[k]]` | 8 (3) |
//! | SymGS     | `x[col[k]]` with in-place writes, fwd + bwd sweeps | 8 (3) |
//! | Dense     | none (SPLASH-2-like no-harm control) | — |
//!
//! # Example
//!
//! ```
//! use imp_workloads::{by_name, Scale, WorkloadParams};
//!
//! let params = WorkloadParams::new(16, Scale::Tiny);
//! let built = by_name("spmv").unwrap().build(&params);
//! assert_eq!(built.program.cores(), 16);
//! assert!(built.program.total_memory_ops() > 0);
//! ```

mod artifact;
mod dense;
mod gen;
mod graph500;
mod lsh;
mod pagerank;
pub mod pattern;
mod sgd;
mod spmv;
mod symgs;
mod tricount;

pub use artifact::{ArtifactError, BuiltArtifact, TraceWorkload, WorkloadError};
pub use dense::Dense;
pub use gen::{CsrGraph, CsrMatrix};
pub use graph500::Graph500;
pub use lsh::Lsh;
pub use pagerank::Pagerank;
pub use pattern::{gather, AccessPattern, Chain, ChainSpec};
pub use sgd::Sgd;
pub use spmv::Spmv;
pub use symgs::Symgs;
pub use tricount::TriCount;

use imp_mem::FunctionalMemory;
use imp_trace::Program;

/// Input sizing presets. `Tiny` keeps unit tests fast; `Small` is the
/// default for benchmark harnesses (working sets exceed the aggregate L1
/// but simulate in seconds); `Large` approaches the paper's pressure on
/// the L2/DRAM at the cost of longer runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smallest inputs (unit tests).
    Tiny,
    /// Bench default.
    Small,
    /// Higher-fidelity runs.
    Large,
}

/// Parameters shared by all workload builders.
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Number of cores to partition work across.
    pub cores: usize,
    /// Input sizing.
    pub scale: Scale,
    /// Insert Mowry-style software prefetches (Section 5.4's *Software
    /// Prefetching* configuration).
    pub software_prefetch: bool,
    /// Software prefetch distance (elements ahead).
    pub sw_distance: u64,
    /// RNG seed for input generation.
    pub seed: u64,
}

impl WorkloadParams {
    /// Default parameters for `cores` at `scale`.
    pub fn new(cores: usize, scale: Scale) -> Self {
        WorkloadParams {
            cores,
            scale,
            software_prefetch: false,
            sw_distance: 16,
            seed: 42,
        }
    }

    /// Returns a copy with software prefetching enabled at `distance`.
    #[must_use]
    pub fn with_software_prefetch(mut self, distance: u64) -> Self {
        self.software_prefetch = true;
        self.sw_distance = distance;
        self
    }
}

/// A generated workload: the multicore program, the functional memory
/// holding its arrays, and the algorithm's result for verification.
///
/// Cloning is cheap once the program is frozen (the streams and memory
/// pages are `Arc`-backed); [`BuiltArtifact`] is the explicitly shared
/// form most callers want.
#[derive(Clone, Debug)]
pub struct Built {
    /// Per-core op streams.
    pub program: Program,
    /// Simulated memory contents (index arrays etc.).
    pub mem: FunctionalMemory,
    /// Functional result of the algorithm (workload-specific meaning;
    /// e.g. triangle count, PageRank mass, BFS vertices reached). Used
    /// by tests to check the generator really ran the algorithm.
    pub result: f64,
    /// The generator's region/placement layer: one record per
    /// allocated array, each with the [`imp_common::PagePolicy`] it
    /// declared (all `Base4K` for the stock generators, so default
    /// runs stay bit-identical; `Sim::page_policy` overrides move hot
    /// arrays to 2 MB pages at run time). Serialized through
    /// `.imptrace`, so replays preserve placement.
    pub regions: Vec<imp_common::MemRegion>,
}

impl Built {
    /// The regions this program's indirect accesses actually scatter
    /// across — the arrays worth `madvise(MADV_HUGEPAGE)` when TLB
    /// reach binds, derived from the op stream instead of the
    /// hand-maintained [`hot_regions`] table. Names come back in
    /// allocation order, deduplicated, and feed `Sim::page_policy`
    /// directly.
    pub fn hot_regions(&self) -> Vec<String> {
        let mut by_base: Vec<(u64, u64, usize)> = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.base, r.end(), i))
            .collect();
        by_base.sort_unstable();
        let mut hot = vec![false; self.regions.len()];
        for core in 0..self.program.cores() {
            for op in self.program.ops(core) {
                if op.class != imp_common::stats::AccessClass::Indirect || !op.is_demand() {
                    continue;
                }
                let slot = by_base.partition_point(|&(base, _, _)| base <= op.addr);
                if let Some(&(_, end, i)) = slot.checked_sub(1).and_then(|s| by_base.get(s)) {
                    if op.addr < end {
                        hot[i] = true;
                    }
                }
            }
        }
        self.regions
            .iter()
            .zip(&hot)
            .filter(|(_, &h)| h)
            .map(|(r, _)| r.name.clone())
            .collect()
    }
}

/// A workload generator.
pub trait Workload {
    /// Short name (matches the paper's figures).
    fn name(&self) -> &'static str;

    /// Builds the program for the given parameters.
    fn build(&self, params: &WorkloadParams) -> Built;

    /// Fallible form of [`Workload::build`]. The stock generators never
    /// fail; the `trace:<path>` replayer overrides this to surface
    /// missing or mismatched recordings as a [`WorkloadError`].
    ///
    /// # Errors
    ///
    /// See [`WorkloadError`].
    fn try_build(&self, params: &WorkloadParams) -> Result<Built, WorkloadError> {
        Ok(self.build(params))
    }
}

/// All seven paper workloads, in the paper's figure order.
pub fn paper_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Pagerank),
        Box::new(TriCount),
        Box::new(Graph500),
        Box::new(Sgd),
        Box::new(Lsh),
        Box::new(Spmv),
        Box::new(Symgs),
    ]
}

/// Looks a workload up by name (including the `dense` control).
///
/// Four name forms resolve:
///
/// * the stock generators — `pagerank`, `tri_count`, `graph500`, `sgd`,
///   `lsh`, `spmv`, `symgs`, `dense`;
/// * the pointer-chasing kernels — `gather2`, `hashjoin`, `skiplist`,
///   `btree` (see the [`pattern`] module);
/// * `chain:<spec>` — an ad-hoc chained gather described by the
///   [`ChainSpec`] grammar (e.g. `chain:depth=3,entries=4096`); a
///   malformed spec resolves to no workload;
/// * `trace:<path>` — replays a recorded `.imptrace` artifact (see
///   [`BuiltArtifact`]); the path is validated when the workload builds,
///   not here.
///
/// Workloads resolved through this registry count their builds (see
/// [`build_count`]), which is how tests assert that artifact-sharing
/// paths really run a generator only once.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    if let Some(path) = name.strip_prefix("trace:") {
        return Some(Box::new(Counted(TraceWorkload::new(path))));
    }
    if let Some(spec) = name.strip_prefix("chain:") {
        let spec = ChainSpec::parse(spec).ok()?;
        return Some(Box::new(Counted(Chain::from_spec(spec))));
    }
    match name {
        "pagerank" => Some(Box::new(Counted(Pagerank))),
        "tri_count" => Some(Box::new(Counted(TriCount))),
        "graph500" => Some(Box::new(Counted(Graph500))),
        "sgd" => Some(Box::new(Counted(Sgd))),
        "lsh" => Some(Box::new(Counted(Lsh))),
        "spmv" => Some(Box::new(Counted(Spmv))),
        "symgs" => Some(Box::new(Counted(Symgs))),
        "dense" => Some(Box::new(Counted(Dense))),
        "gather2" => Some(Box::new(Counted(pattern::gather2()))),
        "hashjoin" => Some(Box::new(Counted(pattern::hashjoin()))),
        "skiplist" => Some(Box::new(Counted(pattern::skiplist()))),
        "btree" => Some(Box::new(Counted(pattern::btree()))),
        _ => None,
    }
}

/// The arrays IMP's value-derived prefetches scatter across — the ones
/// worth `madvise(MADV_HUGEPAGE)` when TLB reach binds. Names match
/// the workload's [`Built::regions`] records; a trailing `*` matches a
/// per-core family of arrays (`Sim::page_policy` understands the same
/// glob). Unknown workloads have no hot arrays.
///
/// Deprecated: this hand-maintained table only knows the stock
/// generators — a `chain:` workload or a plugin workload comes back
/// empty. Build the workload and ask [`Built::hot_regions`] instead,
/// which derives the list from the ops that actually chase indirect
/// addresses:
///
/// ```
/// # use imp_workloads::{by_name, Scale, WorkloadParams};
/// let built = by_name("spmv").unwrap().build(&WorkloadParams::new(2, Scale::Tiny));
/// assert_eq!(built.hot_regions(), vec!["x"]);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "build the workload and use `Built::hot_regions()`, which is \
            derived from the real indirect access stream"
)]
pub fn hot_regions(workload: &str) -> &'static [&'static str] {
    match workload {
        "pagerank" => &["pr0", "pr1", "deg"],
        "tri_count" => &["bits*"],
        "graph500" => &["xadj", "parent", "adj"],
        "sgd" => &["U", "V"],
        "lsh" => &["data"],
        "spmv" | "symgs" => &["x"],
        _ => &[],
    }
}

/// How many times a registry-resolved workload named `name` has run its
/// generator in this process. Replays of `trace:` workloads count under
/// `"trace"`. Diagnostics: tests use the delta across an experiment to
/// assert build-once artifact sharing.
pub fn build_count(name: &str) -> u64 {
    build_counts()
        .lock()
        .expect("build counter")
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn build_counts() -> &'static std::sync::Mutex<std::collections::HashMap<String, u64>> {
    static COUNTS: std::sync::OnceLock<std::sync::Mutex<std::collections::HashMap<String, u64>>> =
        std::sync::OnceLock::new();
    COUNTS.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// Registry wrapper that bumps the per-name build counter around the
/// wrapped generator.
struct Counted<W>(W);

impl<W: Workload> Counted<W> {
    fn record(&self) {
        *build_counts()
            .lock()
            .expect("build counter")
            .entry(self.0.name().to_string())
            .or_insert(0) += 1;
    }
}

impl<W: Workload> Workload for Counted<W> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    // Record only after a successful build: a failed trace replay is
    // not a generator run, and delta-based build-once assertions must
    // not see it.
    fn build(&self, params: &WorkloadParams) -> Built {
        let built = self.0.build(params);
        self.record();
        built
    }

    fn try_build(&self, params: &WorkloadParams) -> Result<Built, WorkloadError> {
        let built = self.0.try_build(params)?;
        self.record();
        Ok(built)
    }
}

/// Splits `0..n` into `parts` contiguous ranges of near-equal size.
pub(crate) fn partition(n: u64, parts: usize) -> Vec<std::ops::Range<u64>> {
    let parts = parts.max(1) as u64;
    (0..parts)
        .map(|p| {
            let lo = n * p / parts;
            let hi = n * (p + 1) / parts;
            lo..hi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_exactly_once() {
        for n in [0u64, 1, 7, 64, 1000] {
            for parts in [1usize, 3, 16, 64] {
                let ranges = partition(n, parts);
                assert_eq!(ranges.len(), parts);
                let total: u64 = ranges.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn registry_has_all_paper_workloads() {
        let names: Vec<&str> = paper_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "pagerank",
                "tri_count",
                "graph500",
                "sgd",
                "lsh",
                "spmv",
                "symgs"
            ]
        );
        for n in names {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("dense").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_builds_and_balances_barriers() {
        let p = WorkloadParams::new(4, Scale::Tiny);
        for w in paper_workloads() {
            let b = w.build(&p);
            assert_eq!(b.program.cores(), 4, "{}", w.name());
            b.program.validate_barriers().unwrap();
            assert!(b.program.total_memory_ops() > 0, "{}", w.name());
            assert!(b.result.is_finite(), "{}", w.name());
        }
    }

    #[test]
    fn chain_names_and_grammar_resolve() {
        for n in [
            "gather2",
            "hashjoin",
            "skiplist",
            "btree",
            "chain:depth=2",
            "chain:depth=3,entries=256,iters=64",
            "chain:depth=4,tables=heads+next+next+next+next",
        ] {
            assert!(by_name(n).is_some(), "{n} should resolve");
        }
        for bad in ["chain:depth=0", "chain:depth=2,tables=a", "chain:speed=3"] {
            assert!(by_name(bad).is_none(), "{bad} should not resolve");
        }
    }

    #[test]
    fn built_hot_regions_are_derived_from_the_access_stream() {
        let p = WorkloadParams::new(2, Scale::Tiny);
        // Agreement with the legacy static table on a stock kernel.
        let spmv = by_name("spmv").unwrap().build(&p);
        assert_eq!(spmv.hot_regions(), vec!["x"]);
        #[allow(deprecated)]
        {
            assert_eq!(hot_regions("spmv"), &["x"]);
        }
        // Chain kernels name every chased hop table, no static entry
        // needed.
        let join = by_name("hashjoin").unwrap().build(&p);
        assert_eq!(join.hot_regions(), vec!["bucket", "entry", "payload"]);
        // Per-core families come back as concrete region names instead
        // of the static table's `bits*` glob — and the derived list
        // also catches indirect arrays the static table understated
        // (tri_count's xadj loads are Indirect-class too).
        let tc = by_name("tri_count").unwrap().build(&p);
        let tc_hot = tc.hot_regions();
        assert!(tc_hot.contains(&"bits0".to_string()), "{tc_hot:?}");
        assert!(tc_hot.contains(&"bits1".to_string()), "{tc_hot:?}");
    }

    #[test]
    fn builds_are_deterministic() {
        let p = WorkloadParams::new(4, Scale::Tiny);
        for w in paper_workloads() {
            let a = w.build(&p);
            let b = w.build(&p);
            assert_eq!(a.result, b.result, "{}", w.name());
            assert_eq!(
                a.program.total_instructions(),
                b.program.total_instructions()
            );
        }
    }
}
