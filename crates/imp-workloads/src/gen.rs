//! Synthetic input generators: R-MAT power-law graphs (Graph500-style)
//! and 27-point-stencil sparse matrices (HPCG-style), both in CSR form.

use imp_common::SplitMix64;

/// A directed graph in Compressed Sparse Row form.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// Row offsets, `vertices + 1` entries.
    pub xadj: Vec<u32>,
    /// Column indices (out-neighbors), sorted within each row.
    pub adj: Vec<u32>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn vertices(&self) -> u64 {
        (self.xadj.len() - 1) as u64
    }

    /// Number of edges.
    pub fn edges(&self) -> u64 {
        self.adj.len() as u64
    }

    /// Out-neighbors of `v`.
    pub fn row(&self, v: u64) -> &[u32] {
        let lo = self.xadj[v as usize] as usize;
        let hi = self.xadj[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u64) -> u32 {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Builds a graph from an edge list (self-loops and duplicates are
    /// removed; `vertices` fixes the vertex-id space).
    pub fn from_edges(vertices: u64, mut edges: Vec<(u32, u32)>) -> Self {
        edges.retain(|&(s, d)| s != d);
        edges.sort_unstable();
        edges.dedup();
        let mut xadj = vec![0u32; vertices as usize + 1];
        for &(s, _) in &edges {
            xadj[s as usize + 1] += 1;
        }
        for i in 1..xadj.len() {
            xadj[i] += xadj[i - 1];
        }
        let adj = edges.into_iter().map(|(_, d)| d).collect();
        CsrGraph { xadj, adj }
    }

    /// Generates an R-MAT graph (the Graph500 generator family) with
    /// `2^scale` vertices and roughly `edge_factor` edges per vertex.
    /// Skew parameters (a, b, c) = (0.57, 0.19, 0.19) per the Graph500
    /// specification; vertex ids are scrambled so high-degree vertices
    /// are spread over the id space.
    pub fn rmat(scale: u32, edge_factor: u64, seed: u64) -> Self {
        let n = 1u64 << scale;
        let m = n * edge_factor;
        let mut rng = SplitMix64::new(seed);
        let (a, b, c) = (0.57, 0.19, 0.19);
        let mut edges = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let (mut x, mut y) = (0u64, 0u64);
            for level in (0..scale).rev() {
                let r = rng.next_f64();
                let (dx, dy) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                x |= dx << level;
                y |= dy << level;
            }
            // Scramble ids (multiplicative hash) to avoid locality by id.
            let sx = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n;
            let sy = y.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) % n;
            edges.push((sx as u32, sy as u32));
        }
        Self::from_edges(n, edges)
    }

    /// Restricts edges to `u -> v` with `u < v` (an acyclic orientation,
    /// as Triangle Counting requires).
    #[must_use]
    pub fn oriented(&self) -> CsrGraph {
        let mut edges = Vec::new();
        for v in 0..self.vertices() {
            for &w in self.row(v) {
                if (v as u32) < w {
                    edges.push((v as u32, w));
                }
            }
        }
        CsrGraph::from_edges(self.vertices(), edges)
    }
}

/// A square sparse matrix in CSR form with explicit values.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    /// Row offsets.
    pub xadj: Vec<u32>,
    /// Column indices, sorted within each row.
    pub col: Vec<u32>,
    /// Nonzero values.
    pub val: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> u64 {
        (self.xadj.len() - 1) as u64
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> u64 {
        self.col.len() as u64
    }

    /// Nonzeros of row `r` as (column, value) pairs.
    pub fn row(&self, r: u64) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.xadj[r as usize] as usize;
        let hi = self.xadj[r as usize + 1] as usize;
        self.col[lo..hi]
            .iter()
            .copied()
            .zip(self.val[lo..hi].iter().copied())
    }

    /// The HPCG problem: a 27-point stencil on an `n x n x n` grid
    /// (diagonal 26, off-diagonals -1), symmetric positive definite.
    pub fn stencil27(n: u64) -> Self {
        let rows = n * n * n;
        let mut xadj = Vec::with_capacity(rows as usize + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        xadj.push(0u32);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let r = (z * n + y) * n + x;
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                let (nx, ny, nz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                                if nx < 0
                                    || ny < 0
                                    || nz < 0
                                    || nx >= n as i64
                                    || ny >= n as i64
                                    || nz >= n as i64
                                {
                                    continue;
                                }
                                let c = ((nz as u64 * n + ny as u64) * n + nx as u64) as u32;
                                col.push(c);
                                val.push(if c as u64 == r { 26.0 } else { -1.0 });
                            }
                        }
                    }
                    xadj.push(col.len() as u32);
                }
            }
        }
        CsrMatrix { xadj, col, val }
    }

    /// Symmetrically permutes the matrix: `A' = P A P^T` (rows and
    /// columns relabelled by the same random permutation). Models the
    /// row-reordered matrices of optimized HPCG implementations: SPD-ness
    /// and the stencil's value structure are preserved, but indirect
    /// accesses to the vector scatter instead of forming near-streams.
    #[must_use]
    pub fn symmetric_permutation(&self, seed: u64) -> CsrMatrix {
        let n = self.rows();
        // perm[old] = new label.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = SplitMix64::new(seed);
        for i in (1..perm.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut inv = vec![0u32; n as usize];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        let mut xadj = Vec::with_capacity(n as usize + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        xadj.push(0u32);
        for new_r in 0..n {
            let old_r = inv[new_r as usize];
            let mut entries: Vec<(u32, f64)> = self
                .row(u64::from(old_r))
                .map(|(c, v)| (perm[c as usize], v))
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in entries {
                col.push(c);
                val.push(v);
            }
            xadj.push(col.len() as u32);
        }
        CsrMatrix { xadj, col, val }
    }

    /// Dense matrix-vector product reference: `y = A * x`.
    pub fn spmv_reference(&self, x: &[f64]) -> Vec<f64> {
        (0..self.rows())
            .map(|r| self.row(r).map(|(c, v)| v * x[c as usize]).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_is_sorted_and_deduped() {
        let g = CsrGraph::from_edges(4, vec![(1, 2), (0, 3), (0, 1), (0, 1), (2, 2), (3, 0)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4); // (0,1) deduped, (2,2) self-loop dropped
        assert_eq!(g.row(0), &[1, 3]);
        assert_eq!(g.row(1), &[2]);
        assert_eq!(g.row(2), &[] as &[u32]);
        assert_eq!(g.row(3), &[0]);
    }

    #[test]
    fn rmat_has_power_law_skew() {
        let g = CsrGraph::rmat(10, 8, 7);
        assert_eq!(g.vertices(), 1024);
        assert!(g.edges() > 4000, "{} edges", g.edges());
        // Skew: the top 10% of vertices own well over 10% of edges.
        let mut degs: Vec<u32> = (0..g.vertices()).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = degs[..102].iter().map(|&d| u64::from(d)).sum();
        assert!(
            top * 100 / g.edges() > 25,
            "top-10% share {}%",
            top * 100 / g.edges()
        );
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = CsrGraph::rmat(8, 4, 1);
        let b = CsrGraph::rmat(8, 4, 1);
        let c = CsrGraph::rmat(8, 4, 2);
        assert_eq!(a.adj, b.adj);
        assert_ne!(a.adj, c.adj);
    }

    #[test]
    fn oriented_graph_is_acyclic_by_construction() {
        let g = CsrGraph::rmat(8, 4, 3).oriented();
        for v in 0..g.vertices() {
            for &w in g.row(v) {
                assert!((v as u32) < w);
            }
        }
    }

    #[test]
    fn stencil_interior_row_has_27_points() {
        let m = CsrMatrix::stencil27(4);
        assert_eq!(m.rows(), 64);
        // Interior point (1,1,1) has the full 27-point stencil.
        let interior = (4 + 1) * 4 + 1;
        assert_eq!(m.row(interior).count(), 27);
        // Corner (0,0,0) sees only 8 neighbors.
        assert_eq!(m.row(0).count(), 8);
    }

    #[test]
    fn stencil_row_sums_are_diagonally_dominant() {
        let m = CsrMatrix::stencil27(3);
        for r in 0..m.rows() {
            let diag: f64 = m
                .row(r)
                .filter(|&(c, _)| u64::from(c) == r)
                .map(|(_, v)| v)
                .sum();
            let off: f64 = m
                .row(r)
                .filter(|&(c, _)| u64::from(c) != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag >= off, "row {r}: diag {diag} vs off {off}");
        }
    }

    #[test]
    fn spmv_reference_on_identity_like_vector() {
        let m = CsrMatrix::stencil27(3);
        let x = vec![1.0; m.rows() as usize];
        let y = m.spmv_reference(&x);
        // Interior row: 26 - 26 = 0.
        let interior = ((3 + 1) * 3 + 1) as usize;
        assert!((y[interior] - 0.0).abs() < 1e-12);
    }
}
