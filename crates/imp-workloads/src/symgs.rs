//! Symmetric Gauss-Seidel smoother (Section 5.3), from HPCG's multigrid:
//! a forward then a backward triangular sweep over the 27-point stencil
//! matrix. Like SpMV the `x[col[k]]` accesses are indirect (coefficient
//! 8), but the sweep also *writes* `x` in place — exercising IMP's
//! read/write predictor — and the backward sweep scans rows (and the
//! index stream) with a negative stride.
//!
//! Parallelization follows the block decomposition of the paper's [33]:
//! each core smooths its contiguous block of rows using current values of
//! other blocks (block-Jacobi between cores, Gauss-Seidel within).

use crate::gen::CsrMatrix;
use crate::pattern::hop_load;
use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::Pc;
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_XADJ_F: Pc = Pc::new(30);
const PC_XADJ_B: Pc = Pc::new(31);
const PC_COL_F: Pc = Pc::new(32);
const PC_COL_B: Pc = Pc::new(33);
const PC_VAL_F: Pc = Pc::new(34);
const PC_VAL_B: Pc = Pc::new(35);
const PC_X_F: Pc = Pc::new(36);
const PC_X_B: Pc = Pc::new(37);
const PC_XW: Pc = Pc::new(38);
const PC_B: Pc = Pc::new(39);
const PC_SW_IDX: Pc = Pc::new(28);
const PC_SW_PF: Pc = Pc::new(29);

/// The SymGS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Symgs;

fn grid(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 22,
        Scale::Large => 36,
    }
}

/// Row schedule within a block: rows are visited in 8 interleaved
/// phases (stride 8), mirroring the reordered schedules parallel SymGS
/// implementations use to balance parallelism — and, as in the paper's
/// workload, destroying the dense stencil locality of the natural order.
pub(crate) fn row_order(range: &std::ops::Range<u64>, forward: bool) -> Vec<u64> {
    const PHASES: u64 = 8;
    let mut rows = Vec::with_capacity((range.end - range.start) as usize);
    for phase in 0..PHASES {
        let mut r = range.start + phase;
        while r < range.end {
            rows.push(r);
            r += PHASES;
        }
    }
    if !forward {
        rows.reverse();
    }
    rows
}

/// Host-side block SymGS: one forward then one backward sweep; each
/// core's block uses in-place updates internally and the pre-sweep values
/// of other blocks (so the emitted trace matches the math exactly
/// regardless of simulated timing).
pub(crate) fn host_symgs(m: &CsrMatrix, x: &mut [f64], b: &[f64], blocks: &[std::ops::Range<u64>]) {
    for forward in [true, false] {
        let snapshot = x.to_vec();
        for range in blocks {
            for r in row_order(range, forward) {
                let mut sum = b[r as usize];
                let mut diag = 1.0;
                for (c, v) in m.row(r) {
                    if u64::from(c) == r {
                        diag = v;
                    } else if range.contains(&u64::from(c)) {
                        sum -= v * x[c as usize];
                    } else {
                        sum -= v * snapshot[c as usize];
                    }
                }
                x[r as usize] = sum / diag;
            }
        }
    }
}

impl Workload for Symgs {
    fn name(&self) -> &'static str {
        "symgs"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let m = CsrMatrix::stencil27(grid(params.scale)).symmetric_permutation(params.seed ^ 0x51D);
        let rows = m.rows();
        let b: Vec<f64> = (0..rows).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
        let mut x = vec![0.0f64; rows as usize];

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_xadj = space.alloc_array::<u32>("xadj", rows + 1);
        let a_col = space.alloc_array::<u32>("col", m.nnz());
        let a_val = space.alloc_array::<f64>("val", m.nnz());
        let a_x = space.alloc_array::<f64>("x", rows);
        let a_b = space.alloc_array::<f64>("b", rows);
        for (i, &v) in m.xadj.iter().enumerate() {
            a_xadj.write(&mut mem, i as u64, v);
        }
        for (i, &v) in m.col.iter().enumerate() {
            a_col.write(&mut mem, i as u64, v);
        }

        let mut program = Program::new("symgs", params.cores);
        let parts = partition(rows, params.cores);

        for forward in [true, false] {
            let (pc_xadj, pc_col, pc_val, pc_x) = if forward {
                (PC_XADJ_F, PC_COL_F, PC_VAL_F, PC_X_F)
            } else {
                (PC_XADJ_B, PC_COL_B, PC_VAL_B, PC_X_B)
            };
            for (c, range) in parts.iter().enumerate() {
                let ops = program.core_mut(c);
                for r in row_order(range, forward) {
                    ops.push(Op::load(
                        a_xadj.addr_of(r + 1),
                        4,
                        pc_xadj,
                        AccessClass::Stream,
                    ));
                    ops.push(Op::load(a_b.addr_of(r), 8, PC_B, AccessClass::Stream));
                    let (lo, hi) = (m.xadj[r as usize] as u64, m.xadj[r as usize + 1] as u64);
                    // The column scan direction follows the sweep.
                    let ks: Vec<u64> = if forward {
                        (lo..hi).collect()
                    } else {
                        (lo..hi).rev().collect()
                    };
                    for (ki, k) in ks.iter().copied().enumerate() {
                        if params.software_prefetch {
                            let d = params.sw_distance as usize;
                            if let Some(&fk) = ks.get(ki + d) {
                                let fc = m.col[fk as usize] as u64;
                                ops.push(Op::load(
                                    a_col.addr_of(fk),
                                    4,
                                    PC_SW_IDX,
                                    AccessClass::Stream,
                                ));
                                ops.push(Op::compute(1));
                                ops.push(Op::sw_prefetch(a_x.addr_of(fc), PC_SW_PF));
                            }
                        }
                        let cidx = m.col[k as usize] as u64;
                        ops.push(Op::load(a_col.addr_of(k), 4, pc_col, AccessClass::Stream));
                        ops.push(Op::load(a_val.addr_of(k), 8, pc_val, AccessClass::Stream));
                        ops.push(hop_load(&a_x, cidx, pc_x).with_dep(2));
                        ops.push(Op::compute(2));
                    }
                    ops.push(Op::compute(2));
                    // In-place update of x[r]: a store to the same array
                    // the indirect loads read.
                    ops.push(Op::store(a_x.addr_of(r), 8, PC_XW, AccessClass::Stream));
                }
            }
            program.barrier();
        }

        host_symgs(&m, &mut x, &b, &parts);
        let result = x.iter().sum::<f64>();
        Built {
            program,
            mem,
            result,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_matches_independent_host_sweep() {
        let params = WorkloadParams::new(4, Scale::Tiny);
        let built = Symgs.build(&params);
        let m = CsrMatrix::stencil27(grid(Scale::Tiny)).symmetric_permutation(42 ^ 0x51D);
        let b: Vec<f64> = (0..m.rows()).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
        let mut x = vec![0.0; m.rows() as usize];
        host_symgs(&m, &mut x, &b, &partition(m.rows(), 4));
        let expected: f64 = x.iter().sum();
        assert!((built.result - expected).abs() < 1e-9);
        assert!(expected.is_finite() && expected != 0.0);
    }

    #[test]
    fn symgs_reduces_residual() {
        // One SymGS sweep must shrink ||b - Ax|| for an SPD matrix.
        let m = CsrMatrix::stencil27(6);
        let b: Vec<f64> = (0..m.rows()).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
        let mut x = vec![0.0; m.rows() as usize];
        let res0: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        host_symgs(&m, &mut x, &b, &partition(m.rows(), 4));
        let ax = m.spmv_reference(&x);
        let res1: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(bi, yi)| (bi - yi) * (bi - yi))
            .sum::<f64>()
            .sqrt();
        assert!(res1 < res0 * 0.5, "residual {res0} -> {res1}");
    }

    #[test]
    fn backward_sweep_reverses_forward_order() {
        let built = Symgs.build(&WorkloadParams::new(2, Scale::Tiny));
        let ops = built.program.ops(0);
        let fwd: Vec<u64> = ops
            .iter()
            .filter(|o| o.pc == PC_XADJ_F)
            .map(|o| o.addr)
            .collect();
        let mut bwd: Vec<u64> = ops
            .iter()
            .filter(|o| o.pc == PC_XADJ_B)
            .map(|o| o.addr)
            .collect();
        bwd.reverse();
        assert!(fwd.len() > 2);
        assert_eq!(fwd, bwd, "backward sweep visits rows in exact reverse");
        // Within a phase the backward stream descends (negative stride).
        let raw: Vec<u64> = ops
            .iter()
            .filter(|o| o.pc == PC_XADJ_B)
            .map(|o| o.addr)
            .collect();
        assert!(raw.windows(2).filter(|w| w[0] > w[1]).count() > raw.len() / 2);
    }

    #[test]
    fn writes_x_in_place() {
        let built = Symgs.build(&WorkloadParams::new(2, Scale::Tiny));
        let stores = built
            .program
            .ops(1)
            .iter()
            .filter(|o| o.pc == PC_XW)
            .count();
        assert!(stores > 0);
    }
}
