//! Stochastic Gradient Descent for collaborative filtering (Section
//! 5.3): factorizes a sparse ratings matrix into user and item factor
//! matrices. The rating triples `(ru[k], ri[k], rv[k])` are streamed; the
//! factor-row accesses `U[ru[k]]` / `V[ri[k]]` are indirect with 16-byte
//! rows (two f64 features — the paper's coefficient-16 "small
//! structures"), read *and written* each update.

use crate::pattern::{hop_load, hop_store};
use crate::{Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::{Pc, SplitMix64};
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_RU: Pc = Pc::new(60);
const PC_RI: Pc = Pc::new(61);
const PC_RV: Pc = Pc::new(62);
const PC_U0: Pc = Pc::new(63);
const PC_U1: Pc = Pc::new(64);
const PC_V0: Pc = Pc::new(65);
const PC_V1: Pc = Pc::new(66);
const PC_UW: Pc = Pc::new(67);
const PC_VW: Pc = Pc::new(68);
const PC_SW_IDX: Pc = Pc::new(69);
const PC_SW_PF: Pc = Pc::new(59);

/// Latent feature dimension: 2 f64s = 16-byte rows (shift 4).
pub(crate) const FEATURES: usize = 2;
const LEARNING_RATE: f64 = 0.02;
const REGULARIZATION: f64 = 0.05;

/// The SGD collaborative-filtering workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sgd;

fn sizes(scale: Scale) -> (u64, u64, u64) {
    // (users, items, ratings)
    match scale {
        Scale::Tiny => (512, 512, 4_000),
        Scale::Small => (8192, 8192, 150_000),
        Scale::Large => (32768, 32768, 600_000),
    }
}

/// Synthetic ratings: uniformly random (user, item, rating in 1..=5).
pub(crate) fn ratings(scale: Scale, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let (users, items, nnz) = sizes(scale);
    let mut rng = SplitMix64::new(seed);
    let mut ru = Vec::with_capacity(nnz as usize);
    let mut ri = Vec::with_capacity(nnz as usize);
    let mut rv = Vec::with_capacity(nnz as usize);
    for _ in 0..nnz {
        ru.push(rng.next_below(users) as u32);
        ri.push(rng.next_below(items) as u32);
        rv.push((1 + rng.next_below(5)) as f32);
    }
    (ru, ri, rv)
}

/// One host epoch over an explicit rating order.
pub(crate) fn host_epoch_order(
    ru: &[u32],
    ri: &[u32],
    rv: &[f32],
    u: &mut [f64],
    v: &mut [f64],
    order: &[u64],
) -> f64 {
    let mut sse = 0.0;
    for &k in order {
        sse += host_epoch(ru, ri, rv, u, v, k..k + 1);
    }
    sse
}

/// One host epoch of SGD; returns the sum of squared errors observed.
pub(crate) fn host_epoch(
    ru: &[u32],
    ri: &[u32],
    rv: &[f32],
    u: &mut [f64],
    v: &mut [f64],
    chunk: std::ops::Range<u64>,
) -> f64 {
    let mut sse = 0.0;
    for k in chunk {
        let (uu, ii, r) = (
            ru[k as usize] as usize,
            ri[k as usize] as usize,
            f64::from(rv[k as usize]),
        );
        let urow = uu * FEATURES;
        let vrow = ii * FEATURES;
        let pred: f64 = (0..FEATURES).map(|f| u[urow + f] * v[vrow + f]).sum();
        let err = r - pred;
        sse += err * err;
        for f in 0..FEATURES {
            let (uf, vf) = (u[urow + f], v[vrow + f]);
            u[urow + f] = uf + LEARNING_RATE * (err * vf - REGULARIZATION * uf);
            v[vrow + f] = vf + LEARNING_RATE * (err * uf - REGULARIZATION * vf);
        }
    }
    sse
}

impl Workload for Sgd {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let (users, items, nnz) = sizes(params.scale);
        let (ru, ri, rv) = ratings(params.scale, params.seed);

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_u = space.alloc_array::<f64>("U", users * FEATURES as u64);
        let a_v = space.alloc_array::<f64>("V", items * FEATURES as u64);

        // Deterministic initialization of the factor matrices.
        let mut init = SplitMix64::new(params.seed ^ 0xF00D);
        let mut u: Vec<f64> = (0..users * FEATURES as u64)
            .map(|_| init.next_f64() * 0.5)
            .collect();
        let mut v: Vec<f64> = (0..items * FEATURES as u64)
            .map(|_| init.next_f64() * 0.5)
            .collect();

        let mut program = Program::new("sgd", params.cores);
        // Shard ratings by user (as distributed matrix-factorization
        // codes do): each core owns a contiguous user range, so U rows
        // are core-private while V rows stay shared. Within a shard the
        // processing order is shuffled — preserving the indirect access
        // pattern on both factor matrices.
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); params.cores];
        for k in 0..nnz {
            let c = (u64::from(ru[k as usize]) as usize * params.cores) / users as usize;
            shards[c].push(k);
        }
        let mut shuf = SplitMix64::new(params.seed ^ 0xBEEF);
        for shard in &mut shards {
            for i in (1..shard.len()).rev() {
                let j = shuf.next_below(i as u64 + 1) as usize;
                shard.swap(i, j);
            }
        }
        let mut sse = 0.0;
        for (c, shard) in shards.iter().enumerate() {
            // Each core's shard is stored contiguously (in its shuffled
            // processing order) and streamed sequentially — the layout a
            // sharded matrix-factorization code would build at setup.
            let len = shard.len().max(1) as u64;
            let a_ru = space.alloc_array::<u32>(&format!("ru{c}"), len);
            let a_ri = space.alloc_array::<u32>(&format!("ri{c}"), len);
            let a_rv = space.alloc_array::<f32>(&format!("rv{c}"), len);
            for (j, &k) in shard.iter().enumerate() {
                a_ru.write(&mut mem, j as u64, ru[k as usize]);
                a_ri.write(&mut mem, j as u64, ri[k as usize]);
                a_rv.write(&mut mem, j as u64, rv[k as usize]);
            }
            let ops = program.core_mut(c);
            for (j, &k) in shard.iter().enumerate() {
                if params.software_prefetch {
                    let d = params.sw_distance as usize;
                    if let Some(&fk) = shard.get(j + d) {
                        let fu = u64::from(ru[fk as usize]) * FEATURES as u64;
                        let fi = u64::from(ri[fk as usize]) * FEATURES as u64;
                        ops.push(Op::load(
                            a_ru.addr_of((j + d) as u64),
                            4,
                            PC_SW_IDX,
                            AccessClass::Stream,
                        ));
                        ops.push(Op::load(
                            a_ri.addr_of((j + d) as u64),
                            4,
                            PC_SW_IDX,
                            AccessClass::Stream,
                        ));
                        ops.push(Op::compute(2));
                        ops.push(Op::sw_prefetch(a_u.addr_of(fu), PC_SW_PF));
                        ops.push(Op::sw_prefetch(a_v.addr_of(fi), PC_SW_PF));
                    }
                }
                let j = j as u64;
                let uu = u64::from(ru[k as usize]) * FEATURES as u64;
                let ii = u64::from(ri[k as usize]) * FEATURES as u64;
                ops.push(Op::load(a_ru.addr_of(j), 4, PC_RU, AccessClass::Stream));
                ops.push(Op::load(a_ri.addr_of(j), 4, PC_RI, AccessClass::Stream));
                ops.push(Op::load(a_rv.addr_of(j), 4, PC_RV, AccessClass::Stream));
                // Loads back: rv=1, ri=2, ru=3.
                ops.push(hop_load(&a_u, uu, PC_U0).with_dep(3));
                ops.push(hop_load(&a_u, uu + 1, PC_U1).with_dep(4));
                ops.push(hop_load(&a_v, ii, PC_V0).with_dep(4));
                ops.push(hop_load(&a_v, ii + 1, PC_V1).with_dep(5));
                ops.push(Op::compute(24)); // dot product, error, update math
                ops.push(hop_store(&a_u, uu, PC_UW));
                ops.push(hop_store(&a_u, uu + 1, PC_UW));
                ops.push(hop_store(&a_v, ii, PC_VW));
                ops.push(hop_store(&a_v, ii + 1, PC_VW));
            }
        }
        for shard in &shards {
            sse += host_epoch_order(&ru, &ri, &rv, &mut u, &mut v, shard);
        }
        program.barrier();

        Built {
            program,
            mem,
            result: sse,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_reduces_error_across_epochs() {
        let (ru, ri, rv) = ratings(Scale::Tiny, 1);
        let (users, items, nnz) = sizes(Scale::Tiny);
        let mut init = SplitMix64::new(1 ^ 0xF00D);
        let mut u: Vec<f64> = (0..users * FEATURES as u64)
            .map(|_| init.next_f64() * 0.5)
            .collect();
        let mut v: Vec<f64> = (0..items * FEATURES as u64)
            .map(|_| init.next_f64() * 0.5)
            .collect();
        let e1 = host_epoch(&ru, &ri, &rv, &mut u, &mut v, 0..nnz);
        let e2 = host_epoch(&ru, &ri, &rv, &mut u, &mut v, 0..nnz);
        let e3 = host_epoch(&ru, &ri, &rv, &mut u, &mut v, 0..nnz);
        assert!(e2 < e1, "epoch error must fall: {e1} -> {e2}");
        assert!(e3 < e2, "epoch error must keep falling: {e2} -> {e3}");
    }

    #[test]
    fn factor_rows_are_sixteen_bytes_apart() {
        let built = Sgd.build(&WorkloadParams::new(2, Scale::Tiny));
        // Consecutive distinct U-row accesses must be multiples of 16 B
        // from each other (coefficient 16 = shift 4).
        let addrs: Vec<u64> = built
            .program
            .ops(0)
            .iter()
            .filter(|o| o.pc == PC_U0)
            .map(|o| o.addr)
            .collect();
        assert!(addrs.len() > 2);
        let base = addrs.iter().min().unwrap();
        for a in &addrs {
            assert_eq!((a - base) % 16, 0);
        }
    }

    #[test]
    fn updates_write_both_factor_rows() {
        let built = Sgd.build(&WorkloadParams::new(2, Scale::Tiny));
        let ops = built.program.ops(1);
        let uw = ops.iter().filter(|o| o.pc == PC_UW).count();
        let vw = ops.iter().filter(|o| o.pc == PC_VW).count();
        assert!(uw > 0);
        assert_eq!(uw, vw);
    }
}
