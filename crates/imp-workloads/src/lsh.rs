//! Locality Sensitive Hashing (Section 5.3): nearest-neighbor queries.
//! Hash tables map each query to candidate buckets; the concatenated
//! candidate list is the index stream, and the expensive *filtering*
//! phase reads each candidate's data row indirectly (16-byte rows,
//! coefficient 16) to compute true distances.

use crate::pattern::hop_load;
use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::{Pc, SplitMix64};
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_CAND: Pc = Pc::new(70);
const PC_D0: Pc = Pc::new(71);
const PC_D1: Pc = Pc::new(72);
const PC_SW_IDX: Pc = Pc::new(73);
const PC_SW_PF: Pc = Pc::new(74);

/// Data dimensionality: 2 f64 coordinates = 16-byte rows.
const DIM: usize = 2;
/// Number of hash tables whose buckets are unioned per query.
const TABLES: usize = 4;

/// The LSH workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lsh;

fn sizes(scale: Scale) -> (u64, u64, u64) {
    // (points, queries, bucket size)
    match scale {
        Scale::Tiny => (2_048, 32, 16),
        Scale::Small => (65_536, 512, 32),
        Scale::Large => (262_144, 2_048, 48),
    }
}

/// Host-side inputs: the dataset and, per query, the candidate list
/// produced by unioning one bucket from each hash table.
pub(crate) struct LshInput {
    pub points: Vec<[f64; DIM]>,
    pub queries: Vec<[f64; DIM]>,
    pub candidates: Vec<Vec<u32>>,
}

pub(crate) fn build_input(scale: Scale, seed: u64) -> LshInput {
    let (n, q, bucket) = sizes(scale);
    let mut rng = SplitMix64::new(seed);
    let points: Vec<[f64; DIM]> = (0..n)
        .map(|_| [rng.next_f64() * 100.0, rng.next_f64() * 100.0])
        .collect();
    let queries: Vec<[f64; DIM]> = (0..q)
        .map(|_| [rng.next_f64() * 100.0, rng.next_f64() * 100.0])
        .collect();
    // A simple grid LSH: each table hashes a random projection of the
    // space into buckets; a query's candidates are the points sharing a
    // bucket in any table. We emulate bucket membership by seeded
    // sampling biased toward near points, which preserves the access
    // pattern (scattered reads over the whole dataset).
    let candidates = queries
        .iter()
        .enumerate()
        .map(|(qi, _)| {
            let mut c = Vec::with_capacity((bucket as usize) * TABLES);
            let mut h = SplitMix64::new(seed ^ (qi as u64).wrapping_mul(0x9E37));
            for _ in 0..TABLES {
                for _ in 0..bucket {
                    c.push(h.next_below(n) as u32);
                }
            }
            c.sort_unstable();
            c.dedup();
            // Shuffle back to bucket order (hash order, not sorted).
            let mut shuffled = c.clone();
            for i in (1..shuffled.len()).rev() {
                let j = h.next_below(i as u64 + 1) as usize;
                shuffled.swap(i, j);
            }
            shuffled
        })
        .collect();
    LshInput {
        points,
        queries,
        candidates,
    }
}

fn dist2(a: &[f64; DIM], b: &[f64; DIM]) -> f64 {
    (0..DIM).map(|i| (a[i] - b[i]) * (a[i] - b[i])).sum()
}

impl Workload for Lsh {
    fn name(&self) -> &'static str {
        "lsh"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let input = build_input(params.scale, params.seed);
        let n = input.points.len() as u64;

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_data = space.alloc_array::<f64>("data", n * DIM as u64);
        // Candidate lists are materialized per query (as the real code
        // concatenates matching buckets into a list before filtering).
        let a_cands: Vec<_> = input
            .candidates
            .iter()
            .enumerate()
            .map(|(qi, c)| {
                let arr = space.alloc_array::<u32>(&format!("cand{qi}"), c.len().max(1) as u64);
                arr.fill_from(&mut mem, c);
                arr
            })
            .collect();

        let mut program = Program::new("lsh", params.cores);
        let chunks = partition(input.queries.len() as u64, params.cores);
        let threshold = 50.0; // squared distance for a "match"
        let mut matches = 0u64;
        for (c, range) in chunks.iter().enumerate() {
            let ops = program.core_mut(c);
            for qi in range.clone() {
                let cand = &input.candidates[qi as usize];
                let arr = a_cands[qi as usize];
                for (i, &p) in cand.iter().enumerate() {
                    if params.software_prefetch {
                        let d = params.sw_distance as usize;
                        if let Some(&fp) = cand.get(i + d) {
                            ops.push(Op::load(
                                arr.addr_of((i + d) as u64),
                                4,
                                PC_SW_IDX,
                                AccessClass::Stream,
                            ));
                            ops.push(Op::compute(1));
                            ops.push(Op::sw_prefetch(
                                a_data.addr_of(u64::from(fp) * DIM as u64),
                                PC_SW_PF,
                            ));
                        }
                    }
                    ops.push(Op::load(
                        arr.addr_of(i as u64),
                        4,
                        PC_CAND,
                        AccessClass::Stream,
                    ));
                    let row = u64::from(p) * DIM as u64;
                    ops.push(hop_load(&a_data, row, PC_D0).with_dep(1));
                    ops.push(hop_load(&a_data, row + 1, PC_D1).with_dep(2));
                    ops.push(Op::compute(4)); // distance + compare
                    if dist2(&input.points[p as usize], &input.queries[qi as usize]) < threshold {
                        matches += 1;
                        ops.push(Op::compute(1));
                    }
                }
            }
        }
        program.barrier();

        Built {
            program,
            mem,
            result: matches as f64,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_count_equals_reference_filter() {
        let built = Lsh.build(&WorkloadParams::new(4, Scale::Tiny));
        let input = build_input(Scale::Tiny, 42);
        let mut expected = 0u64;
        for (qi, cand) in input.candidates.iter().enumerate() {
            for &p in cand {
                if dist2(&input.points[p as usize], &input.queries[qi]) < 50.0 {
                    expected += 1;
                }
            }
        }
        assert_eq!(built.result as u64, expected);
    }

    #[test]
    fn candidates_are_deduplicated() {
        let input = build_input(Scale::Tiny, 42);
        for cand in &input.candidates {
            let mut sorted = cand.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cand.len());
        }
    }

    #[test]
    fn data_rows_are_indirect_sixteen_byte_records() {
        let built = Lsh.build(&WorkloadParams::new(2, Scale::Tiny));
        let addrs: Vec<u64> = built
            .program
            .ops(0)
            .iter()
            .filter(|o| o.pc == PC_D0)
            .map(|o| o.addr)
            .collect();
        assert!(!addrs.is_empty());
        let base = addrs.iter().min().unwrap();
        for a in &addrs {
            assert_eq!((a - base) % 16, 0);
        }
    }
}
