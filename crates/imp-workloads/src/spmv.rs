//! Sparse matrix-vector multiplication (Section 5.3), from the HPCG
//! benchmark: a 27-point stencil matrix in CSR, dense vector. The column
//! scan `col[k]` is the index stream; `x[col[k]]` is the indirect pattern
//! (coefficient 8).

use crate::gen::CsrMatrix;
use crate::pattern::hop_load;
use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::Pc;
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_XADJ: Pc = Pc::new(20);
const PC_COL: Pc = Pc::new(21);
const PC_VAL: Pc = Pc::new(22);
const PC_X: Pc = Pc::new(23);
const PC_Y: Pc = Pc::new(24);
const PC_SW_IDX: Pc = Pc::new(25);
const PC_SW_PF: Pc = Pc::new(26);

/// The SpMV workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spmv;

fn grid(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 32,
        Scale::Large => 48,
    }
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let m = CsrMatrix::stencil27(grid(params.scale)).symmetric_permutation(params.seed ^ 0x51D);
        let rows = m.rows();
        let x: Vec<f64> = (0..rows).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_xadj = space.alloc_array::<u32>("xadj", rows + 1);
        let a_col = space.alloc_array::<u32>("col", m.nnz());
        let a_val = space.alloc_array::<f64>("val", m.nnz());
        let a_x = space.alloc_array::<f64>("x", rows);
        let a_y = space.alloc_array::<f64>("y", rows);
        for (i, &v) in m.xadj.iter().enumerate() {
            a_xadj.write(&mut mem, i as u64, v);
        }
        for (i, &v) in m.col.iter().enumerate() {
            a_col.write(&mut mem, i as u64, v);
        }

        let mut program = Program::new("spmv", params.cores);
        let parts = partition(rows, params.cores);
        let d = params.sw_distance;
        for (c, range) in parts.iter().enumerate() {
            let ops = program.core_mut(c);
            for r in range.clone() {
                ops.push(Op::load(
                    a_xadj.addr_of(r + 1),
                    4,
                    PC_XADJ,
                    AccessClass::Stream,
                ));
                let (lo, hi) = (m.xadj[r as usize] as u64, m.xadj[r as usize + 1] as u64);
                for k in lo..hi {
                    if params.software_prefetch && k + d < hi {
                        let fc = m.col[(k + d) as usize] as u64;
                        ops.push(Op::load(
                            a_col.addr_of(k + d),
                            4,
                            PC_SW_IDX,
                            AccessClass::Stream,
                        ));
                        ops.push(Op::compute(1));
                        ops.push(Op::sw_prefetch(a_x.addr_of(fc), PC_SW_PF));
                    }
                    let cidx = m.col[k as usize] as u64;
                    ops.push(Op::load(a_col.addr_of(k), 4, PC_COL, AccessClass::Stream));
                    ops.push(Op::load(a_val.addr_of(k), 8, PC_VAL, AccessClass::Stream));
                    ops.push(hop_load(&a_x, cidx, PC_X).with_dep(2));
                    ops.push(Op::compute(2));
                }
                ops.push(Op::store(a_y.addr_of(r), 8, PC_Y, AccessClass::Stream));
            }
        }
        program.barrier();

        let y = m.spmv_reference(&x);
        let result = y.iter().sum::<f64>();
        Built {
            program,
            mem,
            result,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_is_the_reference_spmv() {
        let built = Spmv.build(&WorkloadParams::new(4, Scale::Tiny));
        let m = CsrMatrix::stencil27(grid(Scale::Tiny)).symmetric_permutation(42 ^ 0x51D);
        let x: Vec<f64> = (0..m.rows()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let expected: f64 = m.spmv_reference(&x).iter().sum();
        assert!((built.result - expected).abs() < 1e-9);
    }

    #[test]
    fn one_indirect_load_per_nonzero() {
        let built = Spmv.build(&WorkloadParams::new(1, Scale::Tiny));
        let m = CsrMatrix::stencil27(grid(Scale::Tiny)).symmetric_permutation(42 ^ 0x51D);
        let ind = built
            .program
            .ops(0)
            .iter()
            .filter(|o| o.class == AccessClass::Indirect)
            .count() as u64;
        assert_eq!(ind, m.nnz());
    }

    #[test]
    fn column_indices_in_memory_match_matrix() {
        let built = Spmv.build(&WorkloadParams::new(2, Scale::Tiny));
        let m = CsrMatrix::stencil27(grid(Scale::Tiny)).symmetric_permutation(42 ^ 0x51D);
        let col_op = built
            .program
            .ops(0)
            .iter()
            .find(|o| o.pc == PC_COL)
            .expect("col load");
        assert_eq!(built.mem.read_u32(col_op.mem_addr()), m.col[0]);
    }
}
