//! Graph500 (Section 5.3): level-synchronized breadth-first search over
//! an R-MAT graph. The frontier is the index stream; `xadj[frontier[i]]`
//! is a first-level indirect pattern whose *loaded value* indexes the
//! adjacency array — the paper's multi-level indirection (Listing 3) —
//! and `parent[adj[e]]` is a further indirect pattern on the edge stream.

use crate::gen::CsrGraph;
use crate::pattern::{hop_load, hop_store};
use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::Pc;
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_FRONT: Pc = Pc::new(50);
const PC_XADJ1: Pc = Pc::new(51);
const PC_XADJ2: Pc = Pc::new(52);
const PC_ADJ: Pc = Pc::new(53);
const PC_PARENT_R: Pc = Pc::new(54);
const PC_PARENT_W: Pc = Pc::new(55);
const PC_NEXT: Pc = Pc::new(56);
const PC_SW_IDX: Pc = Pc::new(57);
const PC_SW_PF: Pc = Pc::new(58);

/// The Graph500 BFS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Graph500;

fn sizes(scale: Scale) -> (u32, u64) {
    match scale {
        Scale::Tiny => (9, 8),
        Scale::Small => (15, 8),
        Scale::Large => (17, 16),
    }
}

/// Host BFS returning the parent array (reference used by tests) (-1 = unreached); root's parent is
/// itself. Deterministic: neighbors are visited in CSR order.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn host_bfs(g: &CsrGraph, root: u32) -> Vec<i32> {
    let mut parent = vec![-1i32; g.vertices() as usize];
    parent[root as usize] = root as i32;
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in g.row(u64::from(u)) {
                if parent[w as usize] == -1 {
                    parent[w as usize] = u as i32;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    parent
}

impl Workload for Graph500 {
    fn name(&self) -> &'static str {
        "graph500"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let (gs, ef) = sizes(params.scale);
        let g = CsrGraph::rmat(gs, ef, params.seed);
        let n = g.vertices();
        // Root: the first vertex with outgoing edges.
        let root = (0..n).find(|&v| g.degree(v) > 0).unwrap_or(0) as u32;

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_xadj = space.alloc_array::<u32>("xadj", n + 1);
        let a_adj = space.alloc_array::<u32>("adj", g.edges().max(1));
        let a_parent = space.alloc_array::<i32>("parent", n);
        for (i, &x) in g.xadj.iter().enumerate() {
            a_xadj.write(&mut mem, i as u64, x);
        }
        for (i, &x) in g.adj.iter().enumerate() {
            a_adj.write(&mut mem, i as u64, x);
        }

        let mut program = Program::new("graph500", params.cores);
        let mut parent = vec![-1i32; n as usize];
        parent[root as usize] = root as i32;
        let mut frontier = vec![root];
        let mut level = 0u32;

        while !frontier.is_empty() {
            // Each level's frontier lives in its own array, freshly
            // written so IMP reads true index values.
            let a_front =
                space.alloc_array::<u32>(&format!("frontier{level}"), frontier.len() as u64);
            a_front.fill_from(&mut mem, &frontier);
            // Per-core output buffers for the next frontier (sized for
            // the worst case: every vertex discovered by one core).
            let a_next: Vec<_> = (0..params.cores)
                .map(|c| space.alloc_array::<u32>(&format!("next{level}c{c}"), n))
                .collect();

            let chunks = partition(frontier.len() as u64, params.cores);
            let mut next_per_core: Vec<Vec<u32>> = vec![Vec::new(); params.cores];
            for (c, range) in chunks.iter().enumerate() {
                let ops = program.core_mut(c);
                for i in range.clone() {
                    if params.software_prefetch {
                        let d = params.sw_distance;
                        if i + d < range.end {
                            let fu = frontier[(i + d) as usize];
                            ops.push(Op::load(
                                a_front.addr_of(i + d),
                                4,
                                PC_SW_IDX,
                                AccessClass::Stream,
                            ));
                            ops.push(Op::compute(1));
                            ops.push(Op::sw_prefetch(a_xadj.addr_of(u64::from(fu)), PC_SW_PF));
                        }
                    }
                    let u = frontier[i as usize];
                    ops.push(Op::load(
                        a_front.addr_of(i),
                        4,
                        PC_FRONT,
                        AccessClass::Stream,
                    ));
                    // xadj[u] and xadj[u+1]: level-1 indirection off the
                    // frontier stream.
                    ops.push(hop_load(&a_xadj, u64::from(u), PC_XADJ1).with_dep(1));
                    ops.push(hop_load(&a_xadj, u64::from(u) + 1, PC_XADJ2).with_dep(2));
                    let (lo, hi) = (g.xadj[u as usize] as u64, g.xadj[u as usize + 1] as u64);
                    for e in lo..hi {
                        if params.software_prefetch && e + params.sw_distance < hi {
                            let fw = g.adj[(e + params.sw_distance) as usize];
                            ops.push(Op::load(
                                a_adj.addr_of(e + params.sw_distance),
                                4,
                                PC_SW_IDX,
                                AccessClass::Stream,
                            ));
                            ops.push(Op::compute(1));
                            ops.push(Op::sw_prefetch(a_parent.addr_of(u64::from(fw)), PC_SW_PF));
                        }
                        let w = g.adj[e as usize];
                        // First edge of the row is reached through the
                        // xadj value: the second level of indirection.
                        let class = if e == lo {
                            AccessClass::Indirect
                        } else {
                            AccessClass::Stream
                        };
                        let dep = if e == lo { 2 } else { 0 };
                        ops.push(Op::load(a_adj.addr_of(e), 4, PC_ADJ, class).with_dep(dep));
                        ops.push(hop_load(&a_parent, u64::from(w), PC_PARENT_R).with_dep(1));
                        ops.push(Op::compute(1));
                        if parent[w as usize] == -1 {
                            parent[w as usize] = u as i32;
                            next_per_core[c].push(w);
                            ops.push(hop_store(&a_parent, u64::from(w), PC_PARENT_W).with_dep(2));
                            ops.push(Op::store(
                                a_next[c].addr_of(next_per_core[c].len() as u64 - 1),
                                4,
                                PC_NEXT,
                                AccessClass::Stream,
                            ));
                        }
                    }
                }
            }
            program.barrier();
            frontier = next_per_core.into_iter().flatten().collect();
            level += 1;
        }

        let reached = parent.iter().filter(|&&p| p != -1).count();
        Built {
            program,
            mem,
            result: reached as f64,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_the_same_set_as_reference_bfs() {
        let built = Graph500.build(&WorkloadParams::new(4, Scale::Tiny));
        let (gs, ef) = sizes(Scale::Tiny);
        let g = CsrGraph::rmat(gs, ef, 42);
        let root = (0..g.vertices()).find(|&v| g.degree(v) > 0).unwrap() as u32;
        let parent = host_bfs(&g, root);
        let reached = parent.iter().filter(|&&p| p != -1).count();
        assert_eq!(built.result as usize, reached);
        assert!(reached > 10, "BFS reaches a meaningful set: {reached}");
    }

    #[test]
    fn parent_edges_exist_in_graph() {
        let (gs, ef) = sizes(Scale::Tiny);
        let g = CsrGraph::rmat(gs, ef, 42);
        let root = (0..g.vertices()).find(|&v| g.degree(v) > 0).unwrap() as u32;
        let parent = host_bfs(&g, root);
        for (w, &p) in parent.iter().enumerate() {
            if p >= 0 && w != p as usize {
                assert!(
                    g.row(p as u64).contains(&(w as u32)),
                    "parent {p} -> {w} must be a real edge"
                );
            }
        }
    }

    #[test]
    fn one_barrier_per_bfs_level() {
        let built = Graph500.build(&WorkloadParams::new(4, Scale::Tiny));
        let levels = built.program.validate_barriers().unwrap();
        assert!(
            levels >= 2,
            "expected a multi-level BFS, got {levels} levels"
        );
    }

    #[test]
    fn frontier_values_live_in_functional_memory() {
        let built = Graph500.build(&WorkloadParams::new(2, Scale::Tiny));
        let (gs, ef) = sizes(Scale::Tiny);
        let g = CsrGraph::rmat(gs, ef, 42);
        // Every frontier load must read back a valid vertex id from the
        // simulated memory (the values IMP uses for indirect prefetching).
        let mut checked = 0;
        for c in 0..2 {
            for op in built
                .program
                .ops(c)
                .iter()
                .filter(|o| o.pc == PC_FRONT)
                .take(50)
            {
                let v = built.mem.read_u32(op.mem_addr());
                assert!(u64::from(v) < g.vertices(), "frontier value {v}");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }
}
