//! The composable access-pattern builder: depth-k chained gathers.
//!
//! Every kernel in this crate walks some variant of the same loop: a
//! sequential index stream feeds one or more *tables* whose loaded
//! values are themselves indices into the next table. Instead of
//! copy-pasting that loop per kernel, [`gather`] builds it
//! declaratively:
//!
//! ```
//! use imp_workloads::pattern::gather;
//! use imp_workloads::{Scale, Workload, WorkloadParams};
//!
//! // A hash-join probe: keys -> bucket heads -> entries -> payload.
//! let join = gather(3)
//!     .over(["probe", "bucket", "entry", "payload"])
//!     .stride(1)
//!     .workload("hashjoin");
//! let built = join.build(&WorkloadParams::new(4, Scale::Tiny));
//! assert!(built.program.total_memory_ops() > 0);
//! ```
//!
//! The resulting [`ChainSpec`] describes `depth` chained hops: per
//! lookup `i`, the index array is read at `stride * i` (a sequential
//! stream the IMP detector locks onto), then each hop table is read at
//! the previous load's value (`T1[idx[i]]`, `T2[T1[idx[i]]]`, …).
//! Repeating a table name chases through the *same* array — a skip-list
//! `next`-pointer walk is `gather(4).over(["heads", "next", "next",
//! "next", "next"])`.
//!
//! Chained hops are exactly what `imp:depth=k` prefetches: hops 1 and 2
//! are covered by the stock detector, hops 3 and beyond only when the
//! chained detector is allowed to walk ahead (`depth >= 2`).
//!
//! [`ChainSpec`] also has a textual form (`depth=3,tables=a+b+c+d`)
//! used by [`by_name`](crate::by_name)'s `chain:<spec>` grammar, so
//! sweeps can name ad-hoc chain shapes without code changes.

use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::{Pc, SplitMix64};
use imp_mem::{AddressSpace, ArrayRef, FunctionalMemory, MemScalar};
use imp_trace::{Op, Program};

/// One chased hop of an access pattern: an indirect-class load of
/// `table[index]`, sized by the table's element type. This is the
/// primitive every kernel's value-dependent read goes through —
/// `x[col[k]]` in SpMV, `data[cand[i]*2]` in LSH, each link of a
/// [`gather`] chain. Chain `.with_dep(n)` to mark the producing load
/// `n` ops back.
pub fn hop_load<T: MemScalar>(table: &ArrayRef<T>, index: u64, pc: Pc) -> Op {
    Op::load(
        table.addr_of(index),
        T::SIZE_BYTES as u8,
        pc,
        AccessClass::Indirect,
    )
}

/// The store counterpart of [`hop_load`], for in-place kernels that
/// write back through a chased index (SymGS sweeps, SGD row updates).
pub fn hop_store<T: MemScalar>(table: &ArrayRef<T>, index: u64, pc: Pc) -> Op {
    Op::store(
        table.addr_of(index),
        T::SIZE_BYTES as u8,
        pc,
        AccessClass::Indirect,
    )
}

/// Chain PCs live in the 90+ block (each workload uses its own range).
const PC_IDX: Pc = Pc::new(90);
const PC_HOP_BASE: u32 = 91;

/// Deepest chain the builder accepts: one hop per tracked ledger bucket
/// minus the sequential bucket (`imp_obs::MAX_HOPS` tracks 8).
pub const MAX_CHAIN_DEPTH: u8 = 6;

/// Starts building a depth-`depth` chained gather (see the module
/// docs). `depth` is clamped to `1..=`[`MAX_CHAIN_DEPTH`].
pub fn gather(depth: u8) -> AccessPattern {
    AccessPattern {
        spec: ChainSpec::new(depth),
    }
}

/// Builder for a [`ChainSpec`]; made by [`gather`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessPattern {
    spec: ChainSpec,
}

impl AccessPattern {
    /// Names the index array and the hop tables, in chase order. Must
    /// be exactly `depth + 1` names; repeated names share one
    /// allocation (self-referential chase).
    ///
    /// # Panics
    ///
    /// Panics when the name count does not match `depth + 1` — a
    /// mis-declared chain is a programming error, not an input error.
    #[must_use]
    pub fn over<I, S>(mut self, tables: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spec.tables = tables.into_iter().map(Into::into).collect();
        assert_eq!(
            self.spec.tables.len(),
            self.spec.depth as usize + 1,
            "gather({}) chases through {} tables (index + one per hop)",
            self.spec.depth,
            self.spec.depth + 1,
        );
        self
    }

    /// Index-stream stride in elements (default 1).
    #[must_use]
    pub fn stride(mut self, elems: u64) -> Self {
        self.spec.stride = elems.max(1);
        self
    }

    /// Overrides the hop-table entry count (default chosen by
    /// [`Scale`]).
    #[must_use]
    pub fn entries(mut self, n: u64) -> Self {
        self.spec.entries = Some(n.max(2));
        self
    }

    /// Overrides the lookup count (default chosen by [`Scale`]).
    #[must_use]
    pub fn iters(mut self, n: u64) -> Self {
        self.spec.iters = Some(n.max(1));
        self
    }

    /// Finishes the builder, returning the declarative spec.
    #[must_use]
    pub fn spec(self) -> ChainSpec {
        self.spec
    }

    /// Finishes the builder as a runnable [`Workload`] under `name`.
    #[must_use]
    pub fn workload(self, name: &'static str) -> Chain {
        Chain {
            name,
            spec: self.spec,
        }
    }
}

/// A declarative depth-k chained gather. Build one with [`gather`] or
/// parse the `chain:<spec>` grammar with [`ChainSpec::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSpec {
    /// Chained hops (tables chased after the index array), `1..=6`.
    pub depth: u8,
    /// Index-stream stride in elements.
    pub stride: u64,
    /// Hop-table entries (`None` = pick by [`Scale`]).
    pub entries: Option<u64>,
    /// Lookup count (`None` = pick by [`Scale`]).
    pub iters: Option<u64>,
    /// Region names: index array first, then one per hop. Repeats
    /// alias the same allocation.
    pub tables: Vec<String>,
}

impl ChainSpec {
    /// A depth-`depth` chain with default names (`idx`, `t1`, …).
    pub fn new(depth: u8) -> Self {
        let depth = depth.clamp(1, MAX_CHAIN_DEPTH);
        let mut tables = vec!["idx".to_string()];
        tables.extend((1..=depth).map(|k| format!("t{k}")));
        ChainSpec {
            depth,
            stride: 1,
            entries: None,
            iters: None,
            tables,
        }
    }

    /// Parses the `chain:` grammar: comma-separated `key=value` pairs
    /// among `depth` (1–6), `stride`, `entries`, `iters`, and `tables`
    /// (plus-separated names, exactly `depth + 1` of them). `depth`
    /// defaults to 2; table names default to `idx`, `t1`, ….
    ///
    /// ```
    /// use imp_workloads::pattern::ChainSpec;
    ///
    /// let s = ChainSpec::parse("depth=3,tables=probe+bucket+entry+payload").unwrap();
    /// assert_eq!(s.depth, 3);
    /// assert_eq!(s.tables.len(), 4);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, malformed
    /// numbers, out-of-range depths, or a table list whose length does
    /// not match the depth.
    pub fn parse(s: &str) -> Result<ChainSpec, String> {
        let mut depth: u8 = 2;
        let mut stride: Option<u64> = None;
        let mut entries: Option<u64> = None;
        let mut iters: Option<u64> = None;
        let mut tables: Option<Vec<String>> = None;
        for pair in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{pair}`"))?;
            match key {
                "depth" => {
                    depth = value.parse().map_err(|_| format!("bad depth `{value}`"))?;
                    if depth == 0 || depth > MAX_CHAIN_DEPTH {
                        return Err(format!("depth must be 1..={MAX_CHAIN_DEPTH}, got {depth}"));
                    }
                }
                "stride" => {
                    let v: u64 = value.parse().map_err(|_| format!("bad stride `{value}`"))?;
                    if v == 0 {
                        return Err("stride must be nonzero".to_string());
                    }
                    stride = Some(v);
                }
                "entries" => {
                    let v: u64 = value
                        .parse()
                        .map_err(|_| format!("bad entries `{value}`"))?;
                    if v < 2 {
                        return Err("entries must be at least 2".to_string());
                    }
                    entries = Some(v);
                }
                "iters" => {
                    let v: u64 = value.parse().map_err(|_| format!("bad iters `{value}`"))?;
                    if v == 0 {
                        return Err("iters must be nonzero".to_string());
                    }
                    iters = Some(v);
                }
                "tables" => {
                    let names: Vec<String> = value
                        .split('+')
                        .filter(|t| !t.is_empty())
                        .map(str::to_string)
                        .collect();
                    if names.is_empty() {
                        return Err("tables must name at least the index array".to_string());
                    }
                    tables = Some(names);
                }
                other => {
                    return Err(format!(
                        "unknown chain key `{other}` (depth, stride, entries, iters, tables)"
                    ))
                }
            }
        }
        let mut spec = ChainSpec::new(depth);
        if let Some(s) = stride {
            spec.stride = s;
        }
        spec.entries = entries;
        spec.iters = iters;
        if let Some(t) = tables {
            if t.len() != depth as usize + 1 {
                return Err(format!(
                    "depth={depth} needs {} tables (index + one per hop), got {}",
                    depth + 1,
                    t.len()
                ));
            }
            spec.tables = t;
        }
        Ok(spec)
    }

    /// Hop-table entries for `scale`, honoring an override.
    pub fn entries_for(&self, scale: Scale) -> u64 {
        self.entries.unwrap_or(match scale {
            // Tiny still has to spill the caches: a chain whose tables
            // fit in L2 gives deep chasing nothing to hide.
            Scale::Tiny => 4_096,
            Scale::Small => 32_768,
            Scale::Large => 131_072,
        })
    }

    /// Lookup count for `scale`, honoring an override.
    pub fn iters_for(&self, scale: Scale) -> u64 {
        self.iters.unwrap_or(match scale {
            Scale::Tiny => 2_000,
            Scale::Small => 16_000,
            Scale::Large => 65_536,
        })
    }

    /// Builds the chain under `label`: allocates the tables, fills them
    /// with seeded in-range values, emits the per-core lookup streams,
    /// and records the host-side chain sum as the functional result.
    pub fn build_named(&self, label: &str, params: &WorkloadParams) -> Built {
        let entries = self.entries_for(params.scale);
        let iters = self.iters_for(params.scale);
        let index_len = iters * self.stride;

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();

        // Host mirrors, keyed by unique table name (repeats alias).
        let a_idx = space.alloc_array::<u32>(&self.tables[0], index_len.max(1));
        let mut rng = SplitMix64::new(params.seed ^ 0xC4A1);
        let idx: Vec<u32> = (0..index_len)
            .map(|_| rng.next_below(entries) as u32)
            .collect();
        a_idx.fill_from(&mut mem, &idx);

        let mut names: Vec<&str> = Vec::new();
        let mut hop_data: Vec<Vec<u64>> = Vec::new();
        let mut hop_arrays = Vec::new();
        let mut hop_of: Vec<usize> = Vec::new(); // hop k -> unique table index
        for name in &self.tables[1..] {
            let uniq = match names.iter().position(|n| n == name) {
                Some(i) => i,
                None => {
                    let arr = space.alloc_array::<u64>(name, entries);
                    let mut trng = SplitMix64::new(params.seed ^ 0xD1CE ^ mix_name(name));
                    let data: Vec<u64> = (0..entries).map(|_| trng.next_below(entries)).collect();
                    arr.fill_from(&mut mem, &data);
                    names.push(name);
                    hop_data.push(data);
                    hop_arrays.push(arr);
                    names.len() - 1
                }
            };
            hop_of.push(uniq);
        }

        let mut program = Program::new(label, params.cores);
        let parts = partition(iters, params.cores);
        let mut sum = 0u64;
        for (c, range) in parts.iter().enumerate() {
            let ops = program.core_mut(c);
            for i in range.clone() {
                let j = i * self.stride;
                ops.push(Op::load(a_idx.addr_of(j), 4, PC_IDX, AccessClass::Stream));
                let mut v = u64::from(idx[j as usize]);
                for (k, &u) in hop_of.iter().enumerate() {
                    ops.push(
                        hop_load(&hop_arrays[u], v, Pc::new(PC_HOP_BASE + k as u32)).with_dep(1),
                    );
                    v = hop_data[u][v as usize];
                }
                sum = sum.wrapping_add(v);
                ops.push(Op::compute(1));
            }
        }
        program.barrier();

        Built {
            program,
            mem,
            result: sum as f64,
            regions: space.regions(),
        }
    }
}

/// Stable per-table seed salt derived from the region name.
fn mix_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
    })
}

impl std::fmt::Display for ChainSpec {
    /// The canonical `chain:` body: always `depth=`, then any
    /// non-default fields. Round-trips through [`ChainSpec::parse`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "depth={}", self.depth)?;
        if self.stride != 1 {
            write!(f, ",stride={}", self.stride)?;
        }
        if let Some(e) = self.entries {
            write!(f, ",entries={e}")?;
        }
        if let Some(i) = self.iters {
            write!(f, ",iters={i}")?;
        }
        if self.tables != ChainSpec::new(self.depth).tables {
            write!(f, ",tables={}", self.tables.join("+"))?;
        }
        Ok(())
    }
}

/// A [`ChainSpec`] bound to a workload name — what
/// [`AccessPattern::workload`] returns and the `chain:<spec>` grammar
/// resolves to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    name: &'static str,
    /// The declarative pattern this workload runs.
    pub spec: ChainSpec,
}

impl Chain {
    /// Wraps a parsed spec under the generic `chain` name.
    pub fn from_spec(spec: ChainSpec) -> Self {
        Chain {
            name: "chain",
            spec,
        }
    }
}

impl Workload for Chain {
    fn name(&self) -> &'static str {
        self.name
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        self.spec.build_named(self.name, params)
    }
}

/// Two-level gather `A[B[idx[i]]]` — the shallowest chain, fully
/// covered by the stock detector (hops 1 and 2).
pub fn gather2() -> Chain {
    gather(2).over(["g_idx", "g_a", "g_b"]).workload("gather2")
}

/// Hash-join probe chain: probe keys → bucket heads → entry slots →
/// payload rows. Three hops; the payload hop needs `imp:depth>=2`.
pub fn hashjoin() -> Chain {
    gather(3)
        .over(["probe", "bucket", "entry", "payload"])
        .workload("hashjoin")
}

/// Skip-list search: per-lookup head, then four `next`-pointer chases
/// through the same node array. Hops 3–4 need `imp:depth>=2..3`.
pub fn skiplist() -> Chain {
    gather(4)
        .over(["heads", "next", "next", "next", "next"])
        .workload("skiplist")
}

/// B+-tree descent: key → inner node → leaf node → record. Three
/// value-dependent hops, like a three-level tree probe.
pub fn btree() -> Chain {
    gather(3)
        .over(["keys", "inner", "leaves", "recs"])
        .workload("btree")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_defaults_and_overrides() {
        let s = gather(3).stride(2).entries(4096).iters(500).spec();
        assert_eq!(s.depth, 3);
        assert_eq!(s.stride, 2);
        assert_eq!(s.entries_for(Scale::Tiny), 4096);
        assert_eq!(s.iters_for(Scale::Large), 500);
        assert_eq!(s.tables, vec!["idx", "t1", "t2", "t3"]);
        let d = gather(1).spec();
        assert_eq!(d.entries_for(Scale::Tiny), 4096);
        assert!(d.iters_for(Scale::Small) > d.iters_for(Scale::Tiny));
    }

    #[test]
    #[should_panic(expected = "chases through")]
    fn builder_rejects_mismatched_table_count() {
        let _ = gather(2).over(["only", "two"]);
    }

    #[test]
    fn spec_grammar_round_trips() {
        for src in [
            "depth=2",
            "depth=3,tables=probe+bucket+entry+payload",
            "depth=1,stride=4,entries=4096,iters=100",
            "depth=4,tables=heads+next+next+next+next",
        ] {
            let spec = ChainSpec::parse(src).unwrap();
            assert_eq!(spec.to_string(), src, "canonical form");
            assert_eq!(ChainSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Defaults: empty body is a depth-2 chain.
        assert_eq!(ChainSpec::parse("").unwrap(), ChainSpec::new(2));
    }

    #[test]
    fn spec_grammar_rejects_malformed_input() {
        for bad in [
            "depth=0",
            "depth=9",
            "depth",
            "depth=x",
            "stride=0",
            "entries=1",
            "iters=0",
            "speed=3",
            "depth=2,tables=a+b",
            "tables=",
        ] {
            assert!(ChainSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn chain_values_stay_in_range_and_feed_the_next_hop() {
        let built = hashjoin().build(&WorkloadParams::new(2, Scale::Tiny));
        let spec = &hashjoin().spec;
        let entries = spec.entries_for(Scale::Tiny);
        // Every hop address lands inside its declared region.
        let by_name: Vec<_> = built.regions.iter().collect();
        for core in 0..built.program.cores() {
            for op in built.program.ops(core) {
                if op.class == AccessClass::Indirect {
                    let r = by_name
                        .iter()
                        .find(|r| op.addr >= r.base && op.addr < r.end())
                        .unwrap_or_else(|| panic!("op {:#x} outside all regions", op.addr));
                    assert!(spec.tables[1..].contains(&r.name));
                    assert_eq!((op.addr - r.base) % 8, 0, "8-byte hop elements");
                    assert!((op.addr - r.base) / 8 < entries);
                }
            }
        }
        // The simulated memory agrees with the host-side chase: replay
        // the first core's first lookup from FunctionalMemory alone.
        let ops = built.program.ops(0);
        let idx_op = ops.iter().find(|o| o.pc == PC_IDX).unwrap();
        let v = u64::from(built.mem.read_u32(idx_op.mem_addr()));
        let hop1 = ops
            .iter()
            .find(|o| o.class == AccessClass::Indirect)
            .unwrap();
        let bucket = built.regions.iter().find(|r| r.name == "bucket").unwrap();
        assert_eq!(hop1.addr, bucket.base + 8 * v);
    }

    #[test]
    fn shared_tables_allocate_once() {
        let built = skiplist().build(&WorkloadParams::new(1, Scale::Tiny));
        let next: Vec<_> = built.regions.iter().filter(|r| r.name == "next").collect();
        assert_eq!(next.len(), 1, "repeated names alias one allocation");
        // Four hops per lookup, all through heads-then-next.
        let spec = &skiplist().spec;
        let iters = spec.iters_for(Scale::Tiny);
        let ind = built
            .program
            .ops(0)
            .iter()
            .filter(|o| o.class == AccessClass::Indirect)
            .count() as u64;
        assert_eq!(ind, iters * 4);
    }

    #[test]
    fn builds_are_deterministic_across_calls() {
        let p = WorkloadParams::new(4, Scale::Tiny);
        for w in [gather2(), hashjoin(), skiplist(), btree()] {
            let a = w.build(&p);
            let b = w.build(&p);
            assert_eq!(a.result, b.result, "{}", w.name());
            assert_eq!(
                a.program.total_instructions(),
                b.program.total_instructions()
            );
            a.program.validate_barriers().unwrap();
            assert_eq!(a.program.cores(), 4);
        }
    }
}
