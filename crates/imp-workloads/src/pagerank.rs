//! PageRank (Section 5.3): pull-based iterations over a CSR graph.
//! The neighbor scan `adj[e]` is the index stream; `pr[adj[e]]` and
//! `deg[adj[e]]` are a *multi-way* indirect pattern (Listing 2) with
//! coefficients 8 and 4.

use crate::gen::CsrGraph;
use crate::pattern::hop_load;
use crate::{partition, Built, Scale, Workload, WorkloadParams};
use imp_common::stats::AccessClass;
use imp_common::Pc;
use imp_mem::{AddressSpace, FunctionalMemory};
use imp_trace::{Op, Program};

const PC_XADJ: Pc = Pc::new(10);
const PC_ADJ: Pc = Pc::new(11);
const PC_PR: Pc = Pc::new(12);
const PC_DEG: Pc = Pc::new(13);
const PC_OUT: Pc = Pc::new(14);
const PC_SW_IDX: Pc = Pc::new(15);
const PC_SW_PF: Pc = Pc::new(16);

const DAMPING: f64 = 0.85;

/// The PageRank workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pagerank;

fn sizes(scale: Scale) -> (u32, u64, usize) {
    // (rmat scale, edge factor, iterations)
    match scale {
        Scale::Tiny => (9, 8, 2),
        Scale::Small => (14, 8, 2),
        Scale::Large => (16, 12, 2),
    }
}

/// One host-side PageRank iteration (the reference semantics the op
/// stream mirrors). `deg` is the out-degree used as the damping divisor.
pub(crate) fn host_iteration(g: &CsrGraph, pr: &[f64], deg: &[u32]) -> Vec<f64> {
    let n = g.vertices() as usize;
    (0..n)
        .map(|v| {
            let sum: f64 = g
                .row(v as u64)
                .iter()
                .map(|&u| pr[u as usize] / f64::from(deg[u as usize].max(1)))
                .sum();
            (1.0 - DAMPING) / n as f64 + DAMPING * sum
        })
        .collect()
}

impl Workload for Pagerank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn build(&self, params: &WorkloadParams) -> Built {
        let (gs, ef, iters) = sizes(params.scale);
        let g = CsrGraph::rmat(gs, ef, params.seed);
        let n = g.vertices();
        // In-degree-as-out-degree of the *source*: pull formulation reads
        // the rank and degree of each in-neighbor. We use g as the
        // transposed graph directly: row(v) holds the vertices v pulls
        // from, and `deg` is their fan-out in the same structure.
        let deg: Vec<u32> = (0..n).map(|v| g.degree(v).max(1)).collect();

        let mut space = AddressSpace::new();
        let mut mem = FunctionalMemory::new();
        let a_xadj = space.alloc_array::<u32>("xadj", n + 1);
        let a_adj = space.alloc_array::<u32>("adj", g.edges().max(1));
        let a_deg = space.alloc_array::<u32>("deg", n);
        let a_pr = [
            space.alloc_array::<f64>("pr0", n),
            space.alloc_array::<f64>("pr1", n),
        ];
        // Index arrays must hold real values for IMP.
        for (i, &x) in g.xadj.iter().enumerate() {
            a_xadj.write(&mut mem, i as u64, x);
        }
        for (i, &x) in g.adj.iter().enumerate() {
            a_adj.write(&mut mem, i as u64, x);
        }

        let mut pr = vec![1.0 / n as f64; n as usize];
        let mut program = Program::new("pagerank", params.cores);
        let parts = partition(n, params.cores);
        let d = params.sw_distance;

        for it in 0..iters {
            let (src, _dst) = (a_pr[it % 2], a_pr[(it + 1) % 2]);
            for (c, range) in parts.iter().enumerate() {
                let ops = program.core_mut(c);
                for v in range.clone() {
                    // Row bounds: xadj[v] is the previous bound; load
                    // xadj[v + 1] (a unit-stride stream).
                    ops.push(Op::load(
                        a_xadj.addr_of(v + 1),
                        4,
                        PC_XADJ,
                        AccessClass::Stream,
                    ));
                    let (lo, hi) = (g.xadj[v as usize] as u64, g.xadj[v as usize + 1] as u64);
                    for e in lo..hi {
                        if params.software_prefetch && e + d < hi {
                            // Mowry-style indirect prefetch: load the
                            // future index, compute the address, prefetch.
                            let fu = g.adj[(e + d) as usize] as u64;
                            ops.push(Op::load(
                                a_adj.addr_of(e + d),
                                4,
                                PC_SW_IDX,
                                AccessClass::Stream,
                            ));
                            ops.push(Op::compute(1));
                            ops.push(Op::sw_prefetch(src.addr_of(fu), PC_SW_PF));
                            ops.push(Op::sw_prefetch(a_deg.addr_of(fu), PC_SW_PF));
                        }
                        let u = g.adj[e as usize] as u64;
                        ops.push(Op::load(a_adj.addr_of(e), 4, PC_ADJ, AccessClass::Stream));
                        ops.push(hop_load(&src, u, PC_PR).with_dep(1));
                        ops.push(hop_load(&a_deg, u, PC_DEG).with_dep(2));
                        ops.push(Op::compute(3));
                    }
                    ops.push(Op::compute(3));
                    ops.push(Op::store(
                        a_pr[(it + 1) % 2].addr_of(v),
                        8,
                        PC_OUT,
                        AccessClass::Stream,
                    ));
                }
            }
            program.barrier();
            pr = host_iteration(&g, &pr, &deg);
        }

        let result = pr.iter().sum::<f64>();
        Built {
            program,
            mem,
            result,
            regions: space.regions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_trace::OpKind;

    #[test]
    fn result_matches_independent_reference() {
        let params = WorkloadParams::new(4, Scale::Tiny);
        let built = Pagerank.build(&params);
        // Recompute with the same inputs, independently of op emission.
        let (gs, ef, iters) = sizes(Scale::Tiny);
        let g = CsrGraph::rmat(gs, ef, params.seed);
        let deg: Vec<u32> = (0..g.vertices()).map(|v| g.degree(v).max(1)).collect();
        let mut pr = vec![1.0 / g.vertices() as f64; g.vertices() as usize];
        for _ in 0..iters {
            pr = host_iteration(&g, &pr, &deg);
        }
        let expected: f64 = pr.iter().sum();
        assert!((built.result - expected).abs() < 1e-12);
        // Sanity: mass stays bounded (directed R-MAT graphs do not
        // conserve rank exactly — dangling vertices leak mass).
        assert!(expected > 0.05 && expected < 10.0, "rank mass {expected}");
    }

    #[test]
    fn emits_multiway_indirect_pattern() {
        let built = Pagerank.build(&WorkloadParams::new(2, Scale::Tiny));
        let ops = built.program.ops(0);
        let ind_pr = ops
            .iter()
            .filter(|o| o.pc == PC_PR && o.class == AccessClass::Indirect)
            .count();
        let ind_deg = ops
            .iter()
            .filter(|o| o.pc == PC_DEG && o.class == AccessClass::Indirect)
            .count();
        assert!(ind_pr > 0 && ind_pr == ind_deg, "pr {ind_pr} deg {ind_deg}");
    }

    #[test]
    fn index_array_contents_are_in_functional_memory() {
        let built = Pagerank.build(&WorkloadParams::new(2, Scale::Tiny));
        // Find an adj stream load and check the stored value matches a
        // legal vertex id.
        let (gs, ef, _) = sizes(Scale::Tiny);
        let g = CsrGraph::rmat(gs, ef, 42);
        let op = built
            .program
            .ops(0)
            .iter()
            .find(|o| o.pc == PC_ADJ)
            .expect("adj load");
        let v = built.mem.read_u32(op.mem_addr());
        assert!((v as u64) < g.vertices());
    }

    #[test]
    fn software_prefetch_adds_instructions() {
        let base = Pagerank.build(&WorkloadParams::new(2, Scale::Tiny));
        let sw = Pagerank.build(&WorkloadParams::new(2, Scale::Tiny).with_software_prefetch(8));
        assert!(sw.program.total_instructions() > base.program.total_instructions());
        let prefetches = sw
            .program
            .ops(0)
            .iter()
            .filter(|o| o.kind == OpKind::SwPrefetch)
            .count();
        assert!(prefetches > 0);
        assert_eq!(
            sw.result, base.result,
            "prefetching must not change the math"
        );
    }
}
