//! Shareable, serializable workload artifacts: record a generated
//! workload once, replay it everywhere.
//!
//! A [`BuiltArtifact`] wraps a [`Built`] in an `Arc` so one generated
//! workload (op streams + functional-memory image + algorithm result)
//! can back any number of simulator configurations without re-running
//! the generator — the build-once path `Sweep` uses, and the unit a
//! `.imptrace` file persists.
//!
//! On disk the artifact is a standard `imp_trace::file` container whose
//! payload section carries the algorithm result (8 bytes, `f64` LE)
//! followed by the [`FunctionalMemory::snapshot`] image, so a saved
//! trace replays with the genuine index-array contents IMP reads.
//!
//! ```no_run
//! use imp_workloads::{by_name, BuiltArtifact, Scale, WorkloadParams};
//!
//! let params = WorkloadParams::new(16, Scale::Tiny);
//! let built = by_name("spmv").unwrap().build(&params);
//! let artifact = BuiltArtifact::from(built);
//! artifact.save("spmv.imptrace").unwrap();
//!
//! // Later (any process): replay through the registry.
//! let replayed = by_name("trace:spmv.imptrace").unwrap();
//! let again = replayed.try_build(&params).unwrap();
//! assert_eq!(again.result, artifact.result());
//! ```

use crate::{Built, Workload, WorkloadParams};
use imp_mem::{FunctionalMemory, SnapshotError};
use imp_trace::{Program, TraceError, TraceFile};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An immutable, cheaply cloneable handle to one generated workload.
///
/// Cloning bumps one reference count; the program streams and memory
/// pages inside are themselves `Arc`-backed, so feeding the artifact to
/// a simulator (`program().clone()` + `mem().clone()`) copies nothing.
#[derive(Clone, Debug)]
pub struct BuiltArtifact {
    inner: Arc<Built>,
}

impl From<Built> for BuiltArtifact {
    fn from(mut built: Built) -> Self {
        built.program.freeze();
        BuiltArtifact {
            inner: Arc::new(built),
        }
    }
}

impl BuiltArtifact {
    /// The multicore op streams (frozen; clones share them).
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// The functional-memory image (copy-on-write; clones share pages).
    pub fn mem(&self) -> &FunctionalMemory {
        &self.inner.mem
    }

    /// The algorithm's functional result (see [`Built::result`]).
    pub fn result(&self) -> f64 {
        self.inner.result
    }

    /// Materializes an owned [`Built`] sharing this artifact's storage.
    pub fn to_built(&self) -> Built {
        Built {
            program: self.inner.program.clone(),
            mem: self.inner.mem.clone(),
            result: self.inner.result,
        }
    }

    /// Writes the artifact as an `.imptrace` file: program streams plus
    /// a payload carrying the result and the memory image.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as
    /// [`ArtifactError::Trace`]`(`[`TraceError::Io`]`)`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let mut payload = self.inner.result.to_le_bytes().to_vec();
        payload.extend_from_slice(&self.inner.mem.snapshot());
        TraceFile::with_payload(self.inner.program.clone(), payload).save(path)?;
        Ok(())
    }

    /// Reads an artifact back from an `.imptrace` file.
    ///
    /// A program-only trace (empty payload — what `Program::save` and
    /// external recorders produce) loads with an empty memory image and
    /// a `NaN` result: the op streams replay, IMP's speculative index
    /// reads see zeroes, and no algorithm result is claimed.
    ///
    /// # Errors
    ///
    /// Malformed containers surface as [`ArtifactError::Trace`]; a
    /// well-formed container whose non-empty payload is not an artifact
    /// payload (too short, or a corrupt memory image) as the other
    /// variants.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let tf = TraceFile::load(path)?;
        let (result, mem) = if tf.payload.is_empty() {
            (f64::NAN, FunctionalMemory::new())
        } else {
            if tf.payload.len() < 8 {
                return Err(ArtifactError::ShortPayload(tf.payload.len()));
            }
            let (result_bytes, image) = tf.payload.split_at(8);
            let result = f64::from_le_bytes(result_bytes.try_into().expect("8 bytes"));
            (result, FunctionalMemory::restore(image)?)
        };
        Ok(BuiltArtifact::from(Built {
            program: tf.program,
            mem,
            result,
        }))
    }
}

/// Why an artifact could not be saved or loaded.
#[derive(Debug)]
pub enum ArtifactError {
    /// The `.imptrace` container itself failed (I/O, corruption, ...).
    Trace(TraceError),
    /// The container's payload ends before the 8-byte result field.
    ShortPayload(usize),
    /// The memory image inside the payload is malformed.
    Memory(SnapshotError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Trace(e) => write!(f, "{e}"),
            ArtifactError::ShortPayload(n) => write!(
                f,
                "artifact payload is {n} bytes; needs at least the 8-byte result"
            ),
            ArtifactError::Memory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Trace(e) => Some(e),
            ArtifactError::Memory(e) => Some(e),
            ArtifactError::ShortPayload(_) => None,
        }
    }
}

impl From<TraceError> for ArtifactError {
    fn from(e: TraceError) -> Self {
        ArtifactError::Trace(e)
    }
}

impl From<SnapshotError> for ArtifactError {
    fn from(e: SnapshotError) -> Self {
        ArtifactError::Memory(e)
    }
}

/// Why a workload generator could not produce a [`Built`].
///
/// The stock generators are infallible; replaying a recorded trace is
/// not (the file may be missing, corrupt, or recorded for a different
/// core count).
#[derive(Debug)]
pub enum WorkloadError {
    /// The `.imptrace` artifact could not be loaded.
    Artifact(ArtifactError),
    /// The trace was recorded for a different core count than requested.
    CoreCountMismatch {
        /// Cores the trace was recorded with.
        trace: usize,
        /// Cores the caller asked for.
        requested: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Artifact(e) => write!(f, "{e}"),
            WorkloadError::CoreCountMismatch { trace, requested } => write!(
                f,
                "trace was recorded for {trace} cores but {requested} were requested"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Artifact(e) => Some(e),
            WorkloadError::CoreCountMismatch { .. } => None,
        }
    }
}

impl From<ArtifactError> for WorkloadError {
    fn from(e: ArtifactError) -> Self {
        WorkloadError::Artifact(e)
    }
}

/// The `trace:<path>` pseudo-workload: replays a recorded `.imptrace`
/// artifact instead of running a generator.
///
/// Scale, seed and software-prefetch parameters are properties of the
/// recording and are ignored at replay; the requested core count must
/// match the recording.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    path: PathBuf,
}

impl TraceWorkload {
    /// A replayer for the artifact at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TraceWorkload { path: path.into() }
    }

    /// The file this workload replays.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        "trace"
    }

    /// # Panics
    ///
    /// Panics when the artifact cannot be loaded or does not match the
    /// requested core count; use [`Workload::try_build`] for the
    /// fallible form.
    fn build(&self, params: &WorkloadParams) -> Built {
        self.try_build(params).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_build(&self, params: &WorkloadParams) -> Result<Built, WorkloadError> {
        let artifact = BuiltArtifact::load(&self.path)?;
        if artifact.program().cores() != params.cores {
            return Err(WorkloadError::CoreCountMismatch {
                trace: artifact.program().cores(),
                requested: params.cores,
            });
        }
        Ok(artifact.to_built())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, Scale};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "imp-artifact-{tag}-{}.imptrace",
            std::process::id()
        ))
    }

    #[test]
    fn artifact_roundtrips_program_memory_and_result() {
        let params = WorkloadParams::new(4, Scale::Tiny);
        let built = by_name("spmv").unwrap().build(&params);
        let reference = by_name("spmv").unwrap().build(&params);
        let artifact = BuiltArtifact::from(built);

        let path = temp_path("roundtrip");
        artifact.save(&path).unwrap();
        let loaded = BuiltArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.result(), reference.result);
        assert_eq!(loaded.program().cores(), 4);
        assert_eq!(loaded.mem().mapped_pages(), reference.mem.mapped_pages());
        for c in 0..4 {
            assert_eq!(
                loaded.program().ops(c),
                reference.program.ops(c),
                "core {c}"
            );
        }
    }

    #[test]
    fn trace_workload_replays_through_the_registry() {
        let params = WorkloadParams::new(4, Scale::Tiny);
        let artifact = BuiltArtifact::from(by_name("sgd").unwrap().build(&params));
        let path = temp_path("registry");
        artifact.save(&path).unwrap();

        let name = format!("trace:{}", path.display());
        let replayed = by_name(&name).expect("trace: names resolve");
        let built = replayed.try_build(&params).unwrap();
        assert_eq!(built.result, artifact.result());
        assert_eq!(
            built.program.total_instructions(),
            artifact.program().total_instructions()
        );

        // Wrong core count is a typed error, not a deadlocked sim.
        let wrong = WorkloadParams::new(16, Scale::Tiny);
        assert!(matches!(
            replayed.try_build(&wrong),
            Err(WorkloadError::CoreCountMismatch {
                trace: 4,
                requested: 16
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn program_only_traces_replay_with_empty_memory() {
        // External recorders (and `Program::save`) write the container
        // with no payload; that must still replay.
        let params = WorkloadParams::new(2, Scale::Tiny);
        let built = by_name("spmv").unwrap().build(&params);
        let path = temp_path("program-only");
        built.program.save(&path).unwrap();

        let loaded = BuiltArtifact::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.result().is_nan(), "no result was recorded");
        assert_eq!(loaded.mem().mapped_pages(), 0, "no memory was recorded");
        assert_eq!(loaded.program().ops(0), built.program.ops(0));

        // And through the registry name, with matching cores.
        let path2 = temp_path("program-only-2");
        built.program.save(&path2).unwrap();
        let replayed = by_name(&format!("trace:{}", path2.display())).unwrap();
        let again = replayed.try_build(&params).unwrap();
        std::fs::remove_file(&path2).ok();
        assert_eq!(
            again.program.total_instructions(),
            built.program.total_instructions()
        );
    }

    #[test]
    fn missing_trace_file_is_a_typed_error() {
        let replayed = by_name("trace:/no/such/file.imptrace").unwrap();
        let params = WorkloadParams::new(4, Scale::Tiny);
        assert!(matches!(
            replayed.try_build(&params),
            Err(WorkloadError::Artifact(ArtifactError::Trace(
                TraceError::Io(_)
            )))
        ));
    }
}
